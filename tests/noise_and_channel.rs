//! Integration tests for the noisy-channel path: empirical packet
//! statistics against the analytical model, and end-to-end encrypted FL
//! convergence under noise (paper §V-E).

use rhychee_fl::channel::crc::Detector;
use rhychee_fl::channel::failure::ChannelModel;
use rhychee_fl::channel::packet::{BitFlipChannel, PacketLink, PACKET_BITS};
use rhychee_fl::core::{FlConfig, NoisyChannelConfig, NoisyFederation};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;

use rand::{rngs::StdRng, SeedableRng};

#[test]
fn empirical_retransmissions_match_analytical_model() {
    // Push 300 packets through BER 1e-3 and compare the measured
    // retransmission factor to 1/(1 - p_pkt) with the tag bits included.
    let ber = 1e-3;
    let link = PacketLink::new(BitFlipChannel::new(ber), Detector::Crc32, PACKET_BITS);
    let payload = vec![0x3Cu8; 175 * 300];
    let mut rng = StdRng::seed_from_u64(1);
    let (_, stats) = link.transfer(&payload, &mut rng);
    let measured = stats.transmissions as f64 / stats.packets as f64;
    let p = 1.0 - (1.0 - ber).powi(1400 + 32);
    let theory = 1.0 / (1.0 - p);
    assert!(
        (measured - theory).abs() / theory < 0.12,
        "measured {measured:.3} vs theory {theory:.3}"
    );
}

#[test]
fn paper_operating_point_constants() {
    let model = ChannelModel::default();
    // E[T] = 1 / (1400 * 1e-3 * 2^-32) ≈ 3.07e9 (paper: 3.039e9).
    let et = model.expected_transmissions_to_failure();
    assert!((et - 3.068e9).abs() / et < 0.01, "E[T] = {et:.3e}");
    // E[R] at the HDC/CKKS-4 point, 10 clients ≈ 43k rounds (paper Fig 5b).
    let er = model.expected_rounds_to_failure(10, 5 * 2 * 8192 * 61);
    assert!((er - 42_970.0).abs() < 500.0, "E[R] = {er}");
}

#[test]
fn encrypted_fl_converges_through_noise_with_crc() {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 300, test_samples: 120 }
        .generate(31)
        .expect("dataset generation");
    let config =
        FlConfig::builder().clients(3).rounds(3).hd_dim(256).seed(2).build().expect("valid");

    // Reference: clean channel.
    let clean_cfg = NoisyChannelConfig { ber: 0.0, ..Default::default() };
    let mut clean =
        NoisyFederation::new(config.clone(), &data, CkksParams::toy(), clean_cfg).expect("build");
    let (clean_report, _) = clean.run().expect("run");

    // Paper operating point: BER 1e-3 with CRC-32.
    let noisy_cfg = NoisyChannelConfig::default();
    let mut noisy =
        NoisyFederation::new(config, &data, CkksParams::toy(), noisy_cfg).expect("build");
    let (noisy_report, stats) = noisy.run().expect("run");

    assert!(stats.retransmissions > 0, "BER 1e-3 must trigger retransmissions");
    assert_eq!(stats.undetected_errors, 0, "CRC-32 must catch every corruption at this scale");
    assert!(
        (clean_report.final_accuracy - noisy_report.final_accuracy).abs() < 0.08,
        "noise behind CRC must not affect convergence: clean {} vs noisy {}",
        clean_report.final_accuracy,
        noisy_report.final_accuracy
    );
}

#[test]
fn detector_strength_ordering_checksum_vs_crc() {
    // The analytical failure chain must make CRC-32 survive ~2^16 times
    // longer than the 16-bit checksum at equal traffic.
    let crc = ChannelModel::default();
    let checksum = ChannelModel { detector: Detector::Checksum16, ..crc };
    let bits = 5 * 2 * 8192 * 61u64;
    let ratio =
        crc.expected_rounds_to_failure(10, bits) / checksum.expected_rounds_to_failure(10, bits);
    assert!((ratio - 65_536.0).abs() / 65_536.0 < 1e-6, "ratio {ratio}");
}
