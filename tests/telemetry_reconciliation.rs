//! Telemetry end-to-end: running the encrypted FL pipeline with
//! recording enabled must produce a span trace whose per-round totals
//! reconcile exactly with the `RoundReport` wall times, and a valid
//! JSONL export.
//!
//! This file deliberately holds a single #[test]: it flips the global
//! telemetry switch and drains the global trace buffer, so it must not
//! share a process with tests that do the same.

use std::time::Duration;

use rhychee_fl::core::{FlConfig, Framework};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::telemetry;

#[test]
fn encrypted_round_trace_reconciles_with_round_reports() {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 240, test_samples: 80 }
        .generate(21)
        .expect("dataset generation");
    let config = FlConfig::builder()
        .clients(3)
        .rounds(2)
        .hd_dim(128)
        .seed(13)
        .build()
        .expect("valid config");
    let rounds = 2;

    telemetry::set_enabled(true);
    let mut federation = Framework::hdc_encrypted(config, &data, CkksParams::toy()).expect("build");
    let report = federation.run().expect("run");
    telemetry::set_enabled(false);

    let events = telemetry::trace::drain_events();

    // One `round` span per round, each a root enclosing its phases.
    let round_events: Vec<_> = events.iter().filter(|e| e.name == "round").collect();
    assert_eq!(round_events.len(), rounds);
    for e in &round_events {
        assert_eq!(e.path, "round");
        assert_eq!(e.depth, 0);
    }
    for phase in ["local_train", "encrypt", "aggregate", "decrypt"] {
        let phase_events: Vec<_> = events.iter().filter(|e| e.name == phase).collect();
        assert_eq!(phase_events.len(), rounds, "one {phase} span per round");
        for e in &phase_events {
            assert_eq!(e.path, format!("round/{phase}"), "phases nest under round");
            assert_eq!(e.depth, 1);
        }
    }

    // Span durations and RoundReport fields come from the same
    // measurement, so their totals must agree to the nanosecond.
    let span_total = |name: &str| -> u128 {
        events.iter().filter(|e| e.name == name).map(|e| u128::from(e.dur_ns)).sum()
    };
    let report_total = |field: fn(&rhychee_fl::core::RoundReport) -> Duration| -> u128 {
        report.rounds.iter().map(|r| field(r).as_nanos()).sum()
    };
    assert_eq!(span_total("local_train"), report_total(|r| r.train_time));
    assert_eq!(span_total("encrypt"), report_total(|r| r.encrypt_time));
    assert_eq!(span_total("aggregate"), report_total(|r| r.aggregate_time));
    assert_eq!(span_total("decrypt"), report_total(|r| r.decrypt_time));

    // Each round span encloses its phases.
    for round in round_events {
        let children: u64 = events
            .iter()
            .filter(|e| e.depth == 1 && e.start_ns >= round.start_ns)
            .filter(|e| e.start_ns + e.dur_ns <= round.start_ns + round.dur_ns)
            .map(|e| e.dur_ns)
            .sum();
        assert!(round.dur_ns >= children, "round span covers its phases");
    }

    // The FHE hot paths recorded into the registry underneath the spans.
    let snap = telemetry::metrics::global().snapshot();
    let counter =
        |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
    let hist_count =
        |name: &str| snap.histograms.iter().find(|h| h.name == name).map(|h| h.count).unwrap_or(0);
    // The 128 x 6 = 768-parameter model packs into ceil(768/slots)
    // ciphertexts; each client encrypts that many per round and the
    // server decrypts one set per round.
    let cts_per_model = (128usize * 6).div_ceil(CkksParams::toy().slot_count()) as u64;
    assert_eq!(counter("fhe.ckks.encrypt.count"), 3 * 2 * cts_per_model);
    assert_eq!(counter("fhe.ckks.decrypt.count"), 2 * cts_per_model);
    assert!(counter("fhe.ckks.add") > 0, "aggregation adds ciphertexts");
    assert!(hist_count("fhe.ckks.ntt.forward") > 0, "NTTs were timed");
    assert_eq!(hist_count("fhe.ckks.encrypt"), 3 * 2 * cts_per_model);

    // JSONL export: every line is one self-describing object.
    let path = std::path::Path::new("target/test_metrics/reconciliation.jsonl");
    let mut writer = telemetry::TraceWriter::new(Vec::new());
    writer.write_events(&events).expect("serialize events");
    writer.write_snapshot(&snap).expect("serialize snapshot");
    let bytes = writer.into_inner().expect("flush");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(path, &bytes).expect("write trace");
    let text = String::from_utf8(bytes).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= events.len() + snap.counters.len() + snap.histograms.len());
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "JSONL shape: {line}");
    }
    assert!(text.contains(r#""type":"span""#));
    assert!(text.contains(r#""name":"round""#));
    assert!(text.contains(r#""name":"fhe.ckks.ntt.forward""#));
}
