//! Loopback integration tests for the networked runtime: a real
//! [`FlServer`] plus client threads over TCP must reproduce the
//! in-process [`Framework`] bit for bit, survive a mid-round dropout
//! via quorum aggregation, NACK late uploads, and report measured
//! byte counts that reconcile with the analytical upload model.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rhychee_fl::core::packing;
use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::{FlConfig, Framework, RoundHooks};
use rhychee_fl::data::{DatasetKind, SyntheticConfig, TrainTest};
use rhychee_fl::fhe::ckks::CkksContext;
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::net::{
    codec, wire, ClientConfig, ClientPipeline, ClientReport, FlClient, FlServer, Message,
    SeededCodec, ServerConfig, ServerPipeline, ServerReport, DEFAULT_MAX_PAYLOAD,
};

fn har_data() -> TrainTest {
    SyntheticConfig { kind: DatasetKind::Har, train_samples: 360, test_samples: 120 }
        .generate(77)
        .expect("dataset generation")
}

fn config(clients: usize, rounds: usize, seed: u64) -> FlConfig {
    FlConfig::builder()
        .clients(clients)
        .rounds(rounds)
        .hd_dim(256)
        .seed(seed)
        .build()
        .expect("valid config")
}

/// Spawns a server and one [`FlClient`] thread per shard over loopback,
/// runs the full federation, and returns both sides' reports (clients
/// ordered by id; client 0 evaluates on the test split).
fn run_networked(
    fl: &FlConfig,
    data: &TrainTest,
    ckks: Option<CkksParams>,
) -> (ServerReport, Vec<ClientReport>) {
    run_networked_seeded(fl, data, ckks, false)
}

/// [`run_networked`] with a switch for the seed-compressed CKKS wire
/// codec (symmetric encryptions whose `c1` ships as a 32-byte seed),
/// selected through the redesigned codec API on both endpoints.
fn run_networked_seeded(
    fl: &FlConfig,
    data: &TrainTest,
    ckks: Option<CkksParams>,
    seeded: bool,
) -> (ServerReport, Vec<ClientReport>) {
    let FedSetup { shards, test, classes } = round::prepare(fl, data).expect("prepare");
    let num_params = classes * fl.hd_dim;
    let server_pipeline = match &ckks {
        Some(p) => ServerPipeline::Ckks(p.clone()),
        None => ServerPipeline::Plaintext,
    };
    let mut builder =
        ServerConfig::builder().clients(fl.clients).rounds(fl.rounds).model_params(num_params);
    if seeded {
        builder = builder.codec(SeededCodec);
    }
    let server =
        FlServer::bind("127.0.0.1:0", builder.build().expect("server config"), server_pipeline)
            .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server = thread::spawn(move || server.run());

    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let local = ClientLocal::new(id, shard, classes, fl);
        let eval = if id == 0 { Some(test.clone()) } else { None };
        let pipeline = match &ckks {
            Some(p) => ClientPipeline::Ckks(p.clone()),
            None => ClientPipeline::Plaintext,
        };
        let mut client_config = ClientConfig::new(addr);
        if seeded {
            client_config.codec = Arc::new(SeededCodec);
        }
        let client = FlClient::new(client_config, fl.clone(), local, classes, eval, pipeline)
            .expect("client build");
        joins.push(thread::spawn(move || client.run()));
    }
    let clients: Vec<ClientReport> =
        joins.into_iter().map(|j| j.join().expect("join").expect("client run")).collect();
    let server = server.join().expect("join").expect("server run");
    (server, clients)
}

#[test]
fn networked_plaintext_matches_in_process_framework() {
    let data = har_data();
    let fl = config(4, 2, 5);
    let (server, clients) = run_networked(&fl, &data, None);

    let mut fw = Framework::hdc_plaintext(fl, &data).expect("framework");
    fw.run().expect("framework run");
    let expected = fw.global_model().flatten();

    assert_eq!(server.final_plain_model.as_deref(), Some(expected.as_slice()));
    for c in &clients {
        assert_eq!(c.final_model, expected, "client {} diverged", c.client_id);
        assert_eq!(c.rounds_participated, 2);
    }
}

#[test]
fn networked_ckks_matches_in_process_framework_bit_for_bit() {
    // The acceptance bar: 1 server, 4 client threads, 3 encrypted
    // rounds over loopback reach exactly the global model the
    // in-process Framework computes under the same seed.
    let data = har_data();
    let fl = config(4, 3, 7);
    let (server, clients) = run_networked(&fl, &data, Some(CkksParams::toy()));

    let mut fw = Framework::hdc_encrypted(fl.clone(), &data, CkksParams::toy()).expect("framework");
    fw.run().expect("framework run");
    let expected = fw.global_model().flatten();

    // The server only ever held ciphertexts: it cannot report a
    // plaintext model, and every client decrypted the same aggregate.
    assert!(server.final_plain_model.is_none());
    assert_eq!(server.rounds.len(), 3);
    assert!(server.rounds.iter().all(|r| r.received == 4 && r.rejected == 0));
    assert_eq!(server.dropped_clients, 0);
    for c in &clients {
        assert_eq!(c.final_model, expected, "client {} diverged", c.client_id);
        assert_eq!(c.rounds_participated, 3);
    }
    // Client 0 evaluated each aggregate; its last measurement must equal
    // the Framework's final accuracy exactly (same model bits).
    let accs = &clients[0].accuracies;
    assert_eq!(accs.len(), 3);
    assert_eq!(accs.last().expect("final accuracy").1, fw.global_accuracy());
}

#[test]
fn dropout_mid_round_is_survived_by_quorum_aggregation() {
    // 5 clients, quorum 4: client 4 participates in round 0 with real
    // training + encryption, then vanishes mid-round-1. The server must
    // finish all 3 rounds, reweighting rounds 1-2 over the 4 survivors.
    // Telemetry stays on so the frame-level counters are live (other
    // tests in this binary tolerate the +24-byte trace context within
    // their framing slack).
    rhychee_fl::telemetry::set_enabled(true);
    let data = har_data();
    let fl = config(5, 3, 13);
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let cfg = ServerConfig::builder()
        .clients(fl.clients)
        .rounds(fl.rounds)
        .model_params(num_params)
        .quorum(4)
        .round_timeout(Duration::from_secs(10))
        .build()
        .expect("server config");
    let server =
        FlServer::bind("127.0.0.1:0", cfg, ServerPipeline::Ckks(CkksParams::toy())).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server = thread::spawn(move || server.run());

    let mut shards = shards;
    let dropout_shard = shards.pop().expect("5 shards");
    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let local = ClientLocal::new(id, shard, classes, &fl);
        let client = FlClient::new(
            ClientConfig::new(addr),
            fl.clone(),
            local,
            classes,
            None,
            ClientPipeline::Ckks(CkksParams::toy()),
        )
        .expect("client build");
        joins.push(thread::spawn(move || client.run()));
    }

    // Client 4, hand-rolled on the raw wire so we control the dropout.
    let fl_dropout = fl.clone();
    let dropout = thread::spawn(move || {
        let mut local = ClientLocal::new(4, dropout_shard, classes, &fl_dropout);
        let ctx = CkksContext::new(CkksParams::toy()).expect("ctx");
        let (_sk, pk) = round::derive_ckks_keys(&ctx, fl_dropout.seed);
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_message(&mut stream, &Message::Hello { client_id: 4 }).expect("hello");
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("welcome");
        assert!(matches!(msg, Message::Welcome { client_id: 4, .. }), "got {}", msg.name());

        // Round 0: honest participation.
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("global 0");
        let model = match msg {
            Message::Global { round: 0, last: false, model } => model,
            other => panic!("expected Global 0, got {}", other.name()),
        };
        let global = codec::decode_plain(&model, num_params).expect("round-0 plaintext zeros");
        let flat = local.train(&global, &fl_dropout);
        let cts = local.encrypt_update(&ctx, &pk, &flat).expect("encrypt");
        let update = Message::Update {
            round: 0,
            client_id: 4,
            steps: local.last_steps(),
            model: codec::encode_ckks(&ctx, &cts),
        };
        wire::write_message(&mut stream, &update).expect("upload");
        let (ack, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("ack");
        assert!(matches!(ack, Message::UpdateAck { accepted: true, .. }), "got {}", ack.name());

        // Read the round-1 broadcast, then drop dead mid-round.
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("global 1");
        assert!(matches!(msg, Message::Global { round: 1, .. }), "got {}", msg.name());
        drop(stream);
    });

    dropout.join().expect("dropout client");
    let finals: Vec<Vec<f32>> = joins
        .into_iter()
        .map(|j| j.join().expect("join").expect("client run").final_model)
        .collect();
    let server = server.join().expect("join").expect("server run");

    assert_eq!(server.rounds.len(), 3);
    assert_eq!(server.rounds[0].received, 5);
    assert_eq!(server.rounds[1].received, 4, "round 1 must close on the quorum of survivors");
    assert_eq!(server.rounds[2].received, 4);
    assert_eq!(server.dropped_clients, 1);
    // A dropout is neither a NACK nor a CRC failure: this run rejected
    // nothing, and no frame in this binary may ever fail its checksum.
    assert!(server.rounds.iter().all(|r| r.rejected == 0), "dropout must not NACK");
    let reg = rhychee_fl::telemetry::metrics::global();
    assert_eq!(reg.counter("net.frame.crc_fail").get(), 0, "no torn frames on loopback");
    // Survivors still agree on one final model.
    assert!(finals.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn rejoined_client_is_not_double_counted_and_matches_framework() {
    // Quorum-reweighting regression for churn: client 4 participates in
    // round 0, departs during round 1, reconnects with the same id, and
    // rejoins for round 2. It must count exactly once in every round it
    // attends — received = [5, 4, 5] with zero NACKs — and the final
    // model must match the in-process Framework running the same
    // presence schedule, bit for bit. All five clients are hand-rolled
    // on the raw wire so the survivors can gate their round-1 uploads on
    // the rejoiner's re-handshake: the reconnect is then always queued
    // before round 1 closes and activates exactly at the round-2
    // boundary, deterministically.
    let data = har_data();
    let fl = config(5, 3, 17);
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let cfg = ServerConfig::builder()
        .clients(fl.clients)
        .rounds(fl.rounds)
        .model_params(num_params)
        .quorum(4)
        .round_timeout(Duration::from_secs(10))
        .allow_rejoin(true)
        .build()
        .expect("server config");
    let server = FlServer::bind("127.0.0.1:0", cfg, ServerPipeline::Plaintext).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server = thread::spawn(move || server.run());

    let rejoined = Arc::new(AtomicBool::new(false));
    let mut shards = shards;
    let rejoin_shard = shards.pop().expect("5 shards");

    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let fl = fl.clone();
        let rejoined = Arc::clone(&rejoined);
        joins.push(thread::spawn(move || -> Vec<f32> {
            let mut local = ClientLocal::new(id, shard, classes, &fl);
            let mut stream = TcpStream::connect(addr).expect("connect");
            wire::write_message(&mut stream, &Message::Hello { client_id: id }).expect("hello");
            let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("welcome");
            assert!(matches!(msg, Message::Welcome { .. }), "got {}", msg.name());
            for round in 0..fl.rounds {
                let (msg, _) =
                    wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("global");
                let model = match msg {
                    Message::Global { round: r, last: false, model } if r == round => model,
                    other => panic!("client {id}: expected Global {round}, got {}", other.name()),
                };
                let global = codec::decode_plain(&model, num_params).expect("decode");
                let flat = local.train(&global, &fl);
                if round == 1 {
                    // Hold the round open until client 4 has reconnected.
                    while !rejoined.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(5));
                    }
                }
                let update = Message::Update {
                    round,
                    client_id: id,
                    steps: local.last_steps(),
                    model: codec::encode_plain(&flat),
                };
                wire::write_message(&mut stream, &update).expect("upload");
                let (ack, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("ack");
                assert!(
                    matches!(ack, Message::UpdateAck { accepted: true, .. }),
                    "client {id} round {round}: got {}",
                    ack.name()
                );
            }
            let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("final");
            let model = match msg {
                Message::Global { last: true, model, .. } => model,
                other => panic!("expected final Global, got {}", other.name()),
            };
            let (fin, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("finished");
            assert!(matches!(fin, Message::Finished { .. }), "got {}", fin.name());
            codec::decode_plain(&model, num_params).expect("final decode")
        }));
    }

    let fl_rejoin = fl.clone();
    let rejoined_flag = Arc::clone(&rejoined);
    let rejoiner = thread::spawn(move || -> Vec<f32> {
        let mut local = ClientLocal::new(4, rejoin_shard, classes, &fl_rejoin);
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_message(&mut stream, &Message::Hello { client_id: 4 }).expect("hello");
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("welcome");
        assert!(matches!(msg, Message::Welcome { client_id: 4, .. }), "got {}", msg.name());

        // Round 0: honest participation.
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("global 0");
        let model = match msg {
            Message::Global { round: 0, last: false, model } => model,
            other => panic!("expected Global 0, got {}", other.name()),
        };
        let global = codec::decode_plain(&model, num_params).expect("decode");
        let flat = local.train(&global, &fl_rejoin);
        let update = Message::Update {
            round: 0,
            client_id: 4,
            steps: local.last_steps(),
            model: codec::encode_plain(&flat),
        };
        wire::write_message(&mut stream, &update).expect("upload");
        let (ack, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("ack");
        assert!(matches!(ack, Message::UpdateAck { accepted: true, .. }), "got {}", ack.name());

        // Read the round-1 broadcast, then depart mid-round.
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("global 1");
        assert!(matches!(msg, Message::Global { round: 1, .. }), "got {}", msg.name());
        drop(stream);

        // Reconnect with the same id and the same local state. The
        // server admits the Hello once the dead handler is reaped and
        // activates the connection at the next round boundary.
        let mut stream = loop {
            thread::sleep(Duration::from_millis(10));
            let Ok(mut s) = TcpStream::connect(addr) else { continue };
            if wire::write_message(&mut s, &Message::Hello { client_id: 4 }).is_err() {
                continue;
            }
            match wire::read_message(&mut s, DEFAULT_MAX_PAYLOAD) {
                Ok((Message::Welcome { client_id: 4, .. }, _)) => break s,
                _ => continue,
            }
        };
        rejoined_flag.store(true, Ordering::SeqCst);

        // Round 2: back in the quorum.
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("global 2");
        let model = match msg {
            Message::Global { round: 2, last: false, model } => model,
            other => panic!("expected Global 2, got {}", other.name()),
        };
        let global = codec::decode_plain(&model, num_params).expect("decode");
        let flat = local.train(&global, &fl_rejoin);
        let update = Message::Update {
            round: 2,
            client_id: 4,
            steps: local.last_steps(),
            model: codec::encode_plain(&flat),
        };
        wire::write_message(&mut stream, &update).expect("upload");
        let (ack, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("ack");
        assert!(
            matches!(ack, Message::UpdateAck { round: 2, accepted: true }),
            "the rejoined upload must be accepted, got {}",
            ack.name()
        );
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("final");
        let model = match msg {
            Message::Global { last: true, model, .. } => model,
            other => panic!("expected final Global, got {}", other.name()),
        };
        let (fin, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("finished");
        assert!(matches!(fin, Message::Finished { .. }), "got {}", fin.name());
        codec::decode_plain(&model, num_params).expect("final decode")
    });

    let finals: Vec<Vec<f32>> = joins.into_iter().map(|j| j.join().expect("survivor")).collect();
    let rejoiner_final = rejoiner.join().expect("rejoiner");
    let server = server.join().expect("join").expect("server run");

    // The same federation in process: everyone every round, except
    // client 4 sits out round 1.
    let mut fw = Framework::hdc_plaintext(fl, &data).expect("framework");
    fw.set_hooks(RoundHooks {
        presence: Some(Box::new(|round, ids: &mut Vec<usize>| {
            if round == 1 {
                ids.retain(|&c| c != 4);
            }
        })),
        ..RoundHooks::default()
    });
    fw.run().expect("framework run");
    let expected = fw.global_model().flatten();

    assert_eq!(server.rounds.len(), 3);
    let received: Vec<usize> = server.rounds.iter().map(|r| r.received).collect();
    assert_eq!(received, vec![5, 4, 5], "one count per round attended, never two");
    assert!(server.rounds.iter().all(|r| r.rejected == 0), "a clean rejoin must produce no NACKs");
    assert_eq!(server.dropped_clients, 1, "the departure counts once");
    assert_eq!(server.rejoined_clients, 1, "the reconnection counts once");
    assert_eq!(
        server.final_plain_model.as_deref(),
        Some(expected.as_slice()),
        "rejoin must reweight exactly like the in-process presence hook"
    );
    for (id, f) in finals.iter().chain(std::iter::once(&rejoiner_final)).enumerate() {
        assert_eq!(f, &expected, "client {id} diverged");
    }
}

/// One hand-rolled encrypted wire round: read the `Global`, decrypt it
/// (round 0 arrives as plaintext zeros), train, encrypt, upload, and
/// require the ACK to accept.
#[allow(clippy::too_many_arguments)]
fn ckks_wire_round(
    stream: &mut TcpStream,
    local: &mut ClientLocal,
    fl: &FlConfig,
    ctx: &CkksContext,
    sk: &rhychee_fl::fhe::ckks::CkksSecretKey,
    pk: &rhychee_fl::fhe::ckks::CkksPublicKey,
    round: usize,
    num_params: usize,
) {
    let id = local.id();
    let max_cts = packing::ciphertexts_needed(num_params, ctx.slot_count());
    let (msg, _) = wire::read_message(stream, DEFAULT_MAX_PAYLOAD).expect("global");
    let model = match msg {
        Message::Global { round: r, last: false, model } if r == round => model,
        other => panic!("client {id}: expected Global {round}, got {}", other.name()),
    };
    let global = if model.first() == Some(&codec::TAG_PLAIN) {
        codec::decode_plain(&model, num_params).expect("round-0 plaintext zeros")
    } else {
        let cts = codec::decode_ckks(ctx, &model, max_cts).expect("decode");
        packing::decrypt_model(ctx, sk, &cts, num_params).expect("decrypt")
    };
    let flat = local.train(&global, fl);
    let cts = local.encrypt_update(ctx, pk, &flat).expect("encrypt");
    let update = Message::Update {
        round,
        client_id: id,
        steps: local.last_steps(),
        model: codec::encode_ckks(ctx, &cts),
    };
    wire::write_message(stream, &update).expect("upload");
    let (ack, _) = wire::read_message(stream, DEFAULT_MAX_PAYLOAD).expect("ack");
    assert!(
        matches!(ack, Message::UpdateAck { accepted: true, .. }),
        "client {id} round {round}: got {}",
        ack.name()
    );
}

#[test]
fn streamed_fold_survives_dropout_and_rejoin_with_batch_quorum_accounting() {
    // The streaming-specific churn regression: client 4's round-1 frame
    // is folded into the running encrypted sum, *then* the client
    // disconnects. Its contribution must stay in round 1's aggregate and
    // its count in round 1's quorum accounting — exactly like the batch
    // path, where an accepted update outlives its uploader. The death is
    // noticed in round 2 (received = 4), the rejoin activates at the
    // round-3 boundary, and the final model must match the in-process
    // Framework running the same presence schedule, bit for bit.
    let data = har_data();
    let fl = config(5, 4, 37);
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let cfg = ServerConfig::builder()
        .clients(fl.clients)
        .rounds(fl.rounds)
        .model_params(num_params)
        .quorum(4)
        .round_timeout(Duration::from_secs(10))
        .allow_rejoin(true)
        .max_resident_uploads(2)
        .build()
        .expect("server config");
    assert!(cfg.streaming_aggregation(), "streaming is the default");
    let server =
        FlServer::bind("127.0.0.1:0", cfg, ServerPipeline::Ckks(CkksParams::toy())).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server = thread::spawn(move || server.run());

    // Set once client 4's folded-then-dropped departure has happened;
    // survivors gate their round-1 uploads on it so the fold always
    // lands (and the socket dies) before round 1 can close.
    let departed = Arc::new(AtomicBool::new(false));
    let mut shards = shards;
    let churn_shard = shards.pop().expect("5 shards");

    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let fl = fl.clone();
        let departed = Arc::clone(&departed);
        joins.push(thread::spawn(move || -> Vec<f32> {
            let mut local = ClientLocal::new(id, shard, classes, &fl);
            let ctx = CkksContext::new(CkksParams::toy()).expect("ctx");
            let (sk, pk) = round::derive_ckks_keys(&ctx, fl.seed);
            let mut stream = TcpStream::connect(addr).expect("connect");
            wire::write_message(&mut stream, &Message::Hello { client_id: id }).expect("hello");
            let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("welcome");
            assert!(matches!(msg, Message::Welcome { .. }), "got {}", msg.name());
            for round in 0..fl.rounds {
                if round == 1 {
                    while !departed.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(5));
                    }
                }
                ckks_wire_round(&mut stream, &mut local, &fl, &ctx, &sk, &pk, round, num_params);
            }
            let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("final");
            let model = match msg {
                Message::Global { last: true, model, .. } => model,
                other => panic!("expected final Global, got {}", other.name()),
            };
            let (fin, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("finished");
            assert!(matches!(fin, Message::Finished { .. }), "got {}", fin.name());
            let max_cts = packing::ciphertexts_needed(num_params, ctx.slot_count());
            let cts = codec::decode_ckks(&ctx, &model, max_cts).expect("final decode");
            packing::decrypt_model(&ctx, &sk, &cts, num_params).expect("final decrypt")
        }));
    }

    let fl_churn = fl.clone();
    let departed_flag = Arc::clone(&departed);
    let churner = thread::spawn(move || -> Vec<f32> {
        let mut local = ClientLocal::new(4, churn_shard, classes, &fl_churn);
        let ctx = CkksContext::new(CkksParams::toy()).expect("ctx");
        let (sk, pk) = round::derive_ckks_keys(&ctx, fl_churn.seed);
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_message(&mut stream, &Message::Hello { client_id: 4 }).expect("hello");
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("welcome");
        assert!(matches!(msg, Message::Welcome { client_id: 4, .. }), "got {}", msg.name());

        // Rounds 0 and 1: honest participation. The round-1 ACK proves
        // the upload was folded into the streamed sum...
        ckks_wire_round(&mut stream, &mut local, &fl_churn, &ctx, &sk, &pk, 0, num_params);
        ckks_wire_round(&mut stream, &mut local, &fl_churn, &ctx, &sk, &pk, 1, num_params);
        // ...and then the uploader dies, before round 1 has closed.
        drop(stream);
        departed_flag.store(true, Ordering::SeqCst);

        // Reconnect with the same id; the server admits the Hello once
        // the dead handler is reaped (during round 2) and activates the
        // connection at the round-3 boundary.
        let mut stream = loop {
            thread::sleep(Duration::from_millis(10));
            let Ok(mut s) = TcpStream::connect(addr) else { continue };
            if wire::write_message(&mut s, &Message::Hello { client_id: 4 }).is_err() {
                continue;
            }
            match wire::read_message(&mut s, DEFAULT_MAX_PAYLOAD) {
                Ok((Message::Welcome { client_id: 4, .. }, _)) => break s,
                _ => continue,
            }
        };

        // Round 3: back in the quorum.
        ckks_wire_round(&mut stream, &mut local, &fl_churn, &ctx, &sk, &pk, 3, num_params);
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("final");
        let model = match msg {
            Message::Global { last: true, model, .. } => model,
            other => panic!("expected final Global, got {}", other.name()),
        };
        let (fin, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("finished");
        assert!(matches!(fin, Message::Finished { .. }), "got {}", fin.name());
        let max_cts = packing::ciphertexts_needed(num_params, ctx.slot_count());
        let cts = codec::decode_ckks(&ctx, &model, max_cts).expect("final decode");
        packing::decrypt_model(&ctx, &sk, &cts, num_params).expect("final decrypt")
    });

    let finals: Vec<Vec<f32>> = joins.into_iter().map(|j| j.join().expect("survivor")).collect();
    let churner_final = churner.join().expect("churner");
    let server = server.join().expect("join").expect("server run");

    // The same federation in process (batch aggregation): everyone
    // every round, except client 4 sits out round 2 — its round-1
    // contribution stays in even though it had already disconnected.
    let mut fw = Framework::hdc_encrypted(fl, &data, CkksParams::toy()).expect("framework");
    fw.set_hooks(RoundHooks {
        presence: Some(Box::new(|round, ids: &mut Vec<usize>| {
            if round == 2 {
                ids.retain(|&c| c != 4);
            }
        })),
        ..RoundHooks::default()
    });
    fw.run().expect("framework run");
    let expected = fw.global_model().flatten();

    let received: Vec<usize> = server.rounds.iter().map(|r| r.received).collect();
    assert_eq!(
        received,
        vec![5, 5, 4, 5],
        "a folded frame counts even when its uploader drops before round close"
    );
    assert!(server.rounds.iter().all(|r| r.rejected == 0), "churn must produce no NACKs");
    assert_eq!(server.dropped_clients, 1, "the departure counts once");
    assert_eq!(server.rejoined_clients, 1, "the reconnection counts once");
    for (id, f) in finals.iter().chain(std::iter::once(&churner_final)).enumerate() {
        assert_eq!(f, &expected, "client {id} diverged from the in-process batch reference");
    }
}

#[test]
fn late_update_is_nacked_and_never_aggregated() {
    // Client 1 uploads for a round that is not open; the server must
    // NACK it, keep it out of the aggregate, and still close the round
    // at the deadline on client 0's on-time update (quorum 1).
    rhychee_fl::telemetry::set_enabled(true);
    let reg = rhychee_fl::telemetry::metrics::global();
    let nacks_before = reg.counter("net.frame.nack").get();
    let data = har_data();
    let fl = config(2, 1, 23);
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let cfg = ServerConfig::builder()
        .clients(fl.clients)
        .rounds(fl.rounds)
        .model_params(num_params)
        .quorum(1)
        .round_timeout(Duration::from_secs(2))
        .build()
        .expect("server config");
    let server = FlServer::bind("127.0.0.1:0", cfg, ServerPipeline::Plaintext).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server = thread::spawn(move || server.run());

    let mut shards = shards;
    let late_shard = shards.pop().expect("2 shards");
    let local = ClientLocal::new(0, shards.pop().expect("shard 0"), classes, &fl);
    let honest = FlClient::new(
        ClientConfig::new(addr),
        fl.clone(),
        local,
        classes,
        None,
        ClientPipeline::Plaintext,
    )
    .expect("client build");
    let honest = thread::spawn(move || honest.run());

    let fl_late = fl.clone();
    let late = thread::spawn(move || {
        let mut local = ClientLocal::new(1, late_shard, classes, &fl_late);
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        wire::write_message(&mut stream, &Message::Hello { client_id: 1 }).expect("hello");
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("welcome");
        assert!(matches!(msg, Message::Welcome { client_id: 1, .. }), "got {}", msg.name());
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("global 0");
        let model = match msg {
            Message::Global { round: 0, last: false, model } => model,
            other => panic!("expected Global 0, got {}", other.name()),
        };
        let global = codec::decode_plain(&model, num_params).expect("decode");
        let flat = local.train(&global, &fl_late);
        // A stale round id: trained for round 0 but claims round 7.
        let update = Message::Update {
            round: 7,
            client_id: 1,
            steps: local.last_steps(),
            model: codec::encode_plain(&flat),
        };
        wire::write_message(&mut stream, &update).expect("upload");
        let (ack, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("ack");
        assert!(
            matches!(ack, Message::UpdateAck { round: 7, accepted: false }),
            "late update must be NACKed, got {}",
            ack.name()
        );
        // The session still ends normally for this client.
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("final global");
        assert!(matches!(msg, Message::Global { last: true, .. }), "got {}", msg.name());
        let (msg, _) = wire::read_message(&mut stream, DEFAULT_MAX_PAYLOAD).expect("finished");
        assert!(matches!(msg, Message::Finished { .. }), "got {}", msg.name());
    });

    late.join().expect("late client");
    let honest = honest.join().expect("join").expect("client run");
    let server = server.join().expect("join").expect("server run");

    assert_eq!(server.rounds.len(), 1);
    assert_eq!(server.rounds[0].received, 1, "only the on-time update aggregates");
    assert_eq!(server.rounds[0].rejected, 1, "the stale update must be NACKed");
    assert_eq!(honest.rounds_participated, 1);
    // The NACK shows up on the frame-level counter (monotonic, so other
    // concurrent tests can only push it further past the snapshot), the
    // honest client needed no retries, and loopback never tears a frame.
    assert!(
        reg.counter("net.frame.nack").get() > nacks_before,
        "the stale upload must count into net.frame.nack"
    );
    assert!(reg.counter("net.frame.retry").get() >= honest.retries);
    assert_eq!(reg.counter("net.frame.crc_fail").get(), 0, "no torn frames on loopback");
    // The aggregate is exactly client 0's model (quorum of one).
    assert_eq!(server.final_plain_model.as_ref(), Some(&honest.final_model));
}

#[test]
fn seeded_uploads_halve_bytes_and_reconcile_with_analytical_model() {
    let data = har_data();
    let fl = config(4, 2, 31);
    let (server, clients) = run_networked_seeded(&fl, &data, Some(CkksParams::toy()), true);

    // The seeded pipeline must still complete every round with every
    // client reporting, and all clients must decrypt one agreed model.
    assert!(server.final_plain_model.is_none(), "server must never see plaintext");
    assert_eq!(server.rounds.len(), 2);
    assert!(server.rounds.iter().all(|r| r.received == 4 && r.rejected == 0));
    for c in &clients {
        assert_eq!(c.rounds_participated, 2);
        assert_eq!(c.final_model, clients[0].final_model, "client {} diverged", c.client_id);
    }

    // Analytical reconciliation: modeled seeded upload bytes per client,
    // plus only codec headers and wire framing (well under 2 KiB).
    let FedSetup { classes, .. } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;
    let ctx = CkksContext::new(CkksParams::toy()).expect("ctx");
    let modeled = fl.rounds as u64 * packing::upload_bytes_seeded(&ctx, num_params) as u64;
    for c in &clients {
        assert!(
            c.bytes_tx >= modeled,
            "client {}: measured {} below modeled {modeled}",
            c.client_id,
            c.bytes_tx
        );
        assert!(
            c.bytes_tx <= modeled + 2048,
            "client {}: measured {} exceeds modeled {modeled} by more than framing",
            c.client_id,
            c.bytes_tx
        );
    }

    // And the headline: a seeded upload is ~half a canonical one (a
    // 32-byte seed stands in for a full packed polynomial per ct).
    let (_, canonical) = run_networked(&fl, &data, Some(CkksParams::toy()));
    for (s, c) in clients.iter().zip(&canonical) {
        assert!(
            s.bytes_tx * 100 < c.bytes_tx * 55 && s.bytes_tx * 100 > c.bytes_tx * 45,
            "client {}: seeded {} vs canonical {} not ~2x",
            s.client_id,
            s.bytes_tx,
            c.bytes_tx
        );
    }
}

#[test]
fn measured_bytes_reconcile_with_analytical_upload_model() {
    let data = har_data();
    let fl = config(4, 2, 11);
    let (server, clients) = run_networked(&fl, &data, Some(CkksParams::toy()));

    // Conservation: the server reads exactly the frames clients write,
    // and vice versa — both ends count the same bytes.
    let client_tx: u64 = clients.iter().map(|c| c.bytes_tx).sum();
    let client_rx: u64 = clients.iter().map(|c| c.bytes_rx).sum();
    assert_eq!(server.bytes_rx, client_tx);
    assert_eq!(server.bytes_tx, client_rx);

    // The analytical model (`upload_bits_per_round`, Table I) counts raw
    // ciphertext bits; the measured upload adds only serialization
    // headers and wire framing, bounded well under 2 KiB per client.
    let fw = Framework::hdc_encrypted(fl.clone(), &data, CkksParams::toy()).expect("framework");
    let modeled = fl.rounds as u64 * fw.upload_bits_per_round() / 8;
    for c in &clients {
        assert!(
            c.bytes_tx >= modeled,
            "client {}: measured {} below modeled {modeled}",
            c.client_id,
            c.bytes_tx
        );
        assert!(
            c.bytes_tx <= modeled + 2048,
            "client {}: measured {} exceeds modeled {modeled} by more than framing",
            c.client_id,
            c.bytes_tx
        );
    }
}
