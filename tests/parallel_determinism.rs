//! Parallelism must never change a bit: every fan-out in the stack
//! (NTT residues, encryption chunks, aggregation, batch encoding) works
//! over preassigned index ranges while RNG draws stay sequential, so a
//! federation run at [`Parallelism::Auto`] reproduces the
//! `Parallelism::Fixed(1)` run exactly — global models, ciphertext
//! serializations, and accuracies alike.
//!
//! CI runs this file with `RUST_TEST_THREADS` unset so the shared pool
//! sees realistic contention from concurrently running tests.

use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::{packing, FlConfig, Framework, StreamingAggregator};
use rhychee_fl::data::{DatasetKind, SyntheticConfig, TrainTest};
use rhychee_fl::fhe::ckks::CkksContext;
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::net::{CanonicalCodec, WireCodec};
use rhychee_fl::par::Parallelism;

fn har_data() -> TrainTest {
    SyntheticConfig { kind: DatasetKind::Har, train_samples: 240, test_samples: 80 }
        .generate(42)
        .expect("dataset generation")
}

fn config(par: Parallelism) -> FlConfig {
    FlConfig::builder()
        .clients(4)
        .rounds(2)
        .hd_dim(256)
        .seed(11)
        .parallelism(par)
        .build()
        .expect("valid config")
}

fn model_bits(fw: &Framework) -> Vec<u32> {
    fw.global_model().flatten().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn ckks_federation_is_bit_identical_across_parallelism() {
    let data = har_data();
    let mut seq = Framework::hdc_encrypted(config(Parallelism::Fixed(1)), &data, CkksParams::toy())
        .expect("sequential framework");
    seq.run().expect("sequential run");

    for par in [Parallelism::Fixed(2), Parallelism::Auto] {
        let mut fw = Framework::hdc_encrypted(config(par), &data, CkksParams::toy())
            .expect("parallel framework");
        fw.run().expect("parallel run");
        assert_eq!(model_bits(&seq), model_bits(&fw), "global model diverged at {par}");
        assert_eq!(
            seq.global_accuracy(),
            fw.global_accuracy(),
            "accuracy diverged at {par} (same model bits must score identically)"
        );
    }
}

#[test]
fn lwe_federation_is_bit_identical_across_parallelism() {
    let data = har_data();
    let params = Framework::lwe_fl_params(4, 6);
    let mut seq = Framework::hdc_encrypted_lwe(config(Parallelism::Fixed(1)), &data, params, 6)
        .expect("sequential framework");
    seq.run().expect("sequential run");

    let mut auto = Framework::hdc_encrypted_lwe(config(Parallelism::Auto), &data, params, 6)
        .expect("parallel framework");
    auto.run().expect("parallel run");
    assert_eq!(model_bits(&seq), model_bits(&auto), "LWE global model diverged");
}

#[test]
fn ckks_round_ciphertexts_serialize_identically_across_parallelism() {
    // One full encrypted round, done twice from the same seed: client
    // updates and the homomorphic aggregate must serialize to the same
    // bytes whether the context fans out or not.
    let data = har_data();

    let run_round = |par: Parallelism| -> Vec<Vec<u8>> {
        let fl = config(par);
        let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
        let ctx = CkksContext::with_parallelism(CkksParams::toy(), par).expect("context");
        let (_sk, pk) = round::derive_ckks_keys(&ctx, fl.seed);
        let num_params = classes * fl.hd_dim;
        let zeros = vec![0.0f32; num_params];

        let mut sr = round::ServerRound::new(0, fl.aggregation);
        for (id, shard) in shards.into_iter().enumerate() {
            let mut local = ClientLocal::new(id, shard, classes, &fl);
            let flat = local.train(&zeros, &fl);
            let cts = local.encrypt_update(&ctx, &pk, &flat).expect("encrypt");
            sr.accept(round::ClientUpdate {
                client_id: id,
                round: 0,
                steps: local.last_steps(),
                payload: cts,
            });
        }
        let mut blobs: Vec<Vec<u8>> = Vec::new();
        // Every client ciphertext, then the aggregate's.
        for u in sr.updates() {
            blobs.extend(u.payload.iter().map(|ct| ctx.serialize(ct)));
        }
        let global = sr.aggregate_ckks(&ctx).expect("aggregate");
        blobs.extend(global.iter().map(|ct| ctx.serialize(ct)));
        blobs
    };

    let seq = run_round(Parallelism::Fixed(1));
    for par in [Parallelism::Fixed(3), Parallelism::Auto] {
        assert_eq!(seq, run_round(par), "ciphertext bytes diverged at {par}");
    }
}

/// Deterministic Fisher–Yates over an xorshift stream, so each "arrival
/// order" below is reproducible from its seed alone.
fn seeded_order(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        order.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    order
}

#[test]
fn streamed_fold_matches_batch_bytes_across_orders_and_parallelism() {
    // The streaming path folds wire frames into the running encrypted
    // sum in whatever order they arrive; the batch reference averages
    // the collected ciphertexts in client-id order. Both must serialize
    // to the same bytes — per arrival order, and across parallelism.
    let data = har_data();

    let run = |par: Parallelism| -> Vec<Vec<u8>> {
        let fl = config(par);
        let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
        let ctx = CkksContext::with_parallelism(CkksParams::toy(), par).expect("context");
        let (_sk, pk) = round::derive_ckks_keys(&ctx, fl.seed);
        let num_params = classes * fl.hd_dim;
        let max_cts = packing::ciphertexts_needed(num_params, ctx.slot_count());
        let zeros = vec![0.0f32; num_params];

        // Wire payloads, exactly as clients would upload them.
        let mut sr = round::ServerRound::new(0, fl.aggregation);
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for (id, shard) in shards.into_iter().enumerate() {
            let mut local = ClientLocal::new(id, shard, classes, &fl);
            let flat = local.train(&zeros, &fl);
            let cts = local.encrypt_update(&ctx, &pk, &flat).expect("encrypt");
            payloads.push(CanonicalCodec.encode_upload(&ctx, &cts).expect("encode"));
            sr.accept(round::ClientUpdate {
                client_id: id,
                round: 0,
                steps: local.last_steps(),
                payload: cts,
            });
        }
        let batch: Vec<Vec<u8>> = sr
            .aggregate_ckks(&ctx)
            .expect("aggregate")
            .iter()
            .map(|ct| ctx.serialize(ct))
            .collect();

        for seed in [0xA5A5_u64, 0x5A5A, 0xC0FFEE] {
            let order = seeded_order(payloads.len(), seed);
            let mut agg = StreamingAggregator::new(0, fl.aggregation).expect("aggregator");
            for &id in &order {
                let view =
                    CanonicalCodec.parse_upload(&ctx, &payloads[id], max_cts).expect("parse");
                assert!(agg.fold_upload(&ctx, id, 0, view.views()).expect("fold"));
            }
            let streamed: Vec<Vec<u8>> =
                agg.finish(&ctx).expect("finish").iter().map(|ct| ctx.serialize(ct)).collect();
            assert_eq!(
                streamed, batch,
                "streamed bytes diverged from batch at {par} for arrival order {order:?}"
            );
        }
        batch
    };

    let seq = run(Parallelism::Fixed(1));
    assert_eq!(seq, run(Parallelism::Auto), "aggregate bytes diverged across parallelism");
}
