//! Parallelism must never change a bit: every fan-out in the stack
//! (NTT residues, encryption chunks, aggregation, batch encoding) works
//! over preassigned index ranges while RNG draws stay sequential, so a
//! federation run at [`Parallelism::Auto`] reproduces the
//! `Parallelism::Fixed(1)` run exactly — global models, ciphertext
//! serializations, and accuracies alike.
//!
//! CI runs this file with `RUST_TEST_THREADS` unset so the shared pool
//! sees realistic contention from concurrently running tests.

use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::{FlConfig, Framework};
use rhychee_fl::data::{DatasetKind, SyntheticConfig, TrainTest};
use rhychee_fl::fhe::ckks::CkksContext;
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::par::Parallelism;

fn har_data() -> TrainTest {
    SyntheticConfig { kind: DatasetKind::Har, train_samples: 240, test_samples: 80 }
        .generate(42)
        .expect("dataset generation")
}

fn config(par: Parallelism) -> FlConfig {
    FlConfig::builder()
        .clients(4)
        .rounds(2)
        .hd_dim(256)
        .seed(11)
        .parallelism(par)
        .build()
        .expect("valid config")
}

fn model_bits(fw: &Framework) -> Vec<u32> {
    fw.global_model().flatten().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn ckks_federation_is_bit_identical_across_parallelism() {
    let data = har_data();
    let mut seq = Framework::hdc_encrypted(config(Parallelism::Fixed(1)), &data, CkksParams::toy())
        .expect("sequential framework");
    seq.run().expect("sequential run");

    for par in [Parallelism::Fixed(2), Parallelism::Auto] {
        let mut fw = Framework::hdc_encrypted(config(par), &data, CkksParams::toy())
            .expect("parallel framework");
        fw.run().expect("parallel run");
        assert_eq!(model_bits(&seq), model_bits(&fw), "global model diverged at {par}");
        assert_eq!(
            seq.global_accuracy(),
            fw.global_accuracy(),
            "accuracy diverged at {par} (same model bits must score identically)"
        );
    }
}

#[test]
fn lwe_federation_is_bit_identical_across_parallelism() {
    let data = har_data();
    let params = Framework::lwe_fl_params(4, 6);
    let mut seq = Framework::hdc_encrypted_lwe(config(Parallelism::Fixed(1)), &data, params, 6)
        .expect("sequential framework");
    seq.run().expect("sequential run");

    let mut auto = Framework::hdc_encrypted_lwe(config(Parallelism::Auto), &data, params, 6)
        .expect("parallel framework");
    auto.run().expect("parallel run");
    assert_eq!(model_bits(&seq), model_bits(&auto), "LWE global model diverged");
}

#[test]
fn ckks_round_ciphertexts_serialize_identically_across_parallelism() {
    // One full encrypted round, done twice from the same seed: client
    // updates and the homomorphic aggregate must serialize to the same
    // bytes whether the context fans out or not.
    let data = har_data();

    let run_round = |par: Parallelism| -> Vec<Vec<u8>> {
        let fl = config(par);
        let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
        let ctx = CkksContext::with_parallelism(CkksParams::toy(), par).expect("context");
        let (_sk, pk) = round::derive_ckks_keys(&ctx, fl.seed);
        let num_params = classes * fl.hd_dim;
        let zeros = vec![0.0f32; num_params];

        let mut sr = round::ServerRound::new(0, fl.aggregation);
        for (id, shard) in shards.into_iter().enumerate() {
            let mut local = ClientLocal::new(id, shard, classes, &fl);
            let flat = local.train(&zeros, &fl);
            let cts = local.encrypt_update(&ctx, &pk, &flat).expect("encrypt");
            sr.accept(round::ClientUpdate {
                client_id: id,
                round: 0,
                steps: local.last_steps(),
                payload: cts,
            });
        }
        let mut blobs: Vec<Vec<u8>> = Vec::new();
        // Every client ciphertext, then the aggregate's.
        for u in sr.updates() {
            blobs.extend(u.payload.iter().map(|ct| ctx.serialize(ct)));
        }
        let global = sr.aggregate_ckks(&ctx).expect("aggregate");
        blobs.extend(global.iter().map(|ct| ctx.serialize(ct)));
        blobs
    };

    let seq = run_round(Parallelism::Fixed(1));
    for par in [Parallelism::Fixed(3), Parallelism::Auto] {
        assert_eq!(seq, run_round(par), "ciphertext bytes diverged at {par}");
    }
}
