//! Memory and liveness observability, end to end: this binary declares
//! the tracking allocator, so every test here runs under real heap
//! accounting. It locks in the three headline claims of the memory
//! plane (DESIGN.md §15):
//!
//! 1. **Zero-allocation steady state.** After warm-up, the arena-based
//!    symmetric encrypt path and the zero-copy `fold_view` kernel
//!    allocate nothing — asserted by per-span attribution, both
//!    directly and through a real loopback federation's
//!    `fl.phase.fold.alloc_bytes` histogram.
//! 2. **Stall detection.** A round watchdog with no heartbeats fires
//!    exactly once per stalled epoch and writes a parseable
//!    flight-recorder dump.
//! 3. **Scrapeable truth.** `/memory.json` reports heap figures that
//!    reconcile with the allocator's own counters.
//!
//! Every test flips or reads process-global state (the telemetry
//! enabled flag, the metrics registry, thread allocation counters), so
//! they all serialize on one lock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::{FlConfig, Framework};
use rhychee_fl::data::{DatasetKind, SyntheticConfig, TrainTest};
use rhychee_fl::fhe::ckks::{CkksContext, CkksEncryptArena};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::net::{
    ClientConfig, ClientPipeline, FlClient, FlServer, ServerConfig, ServerPipeline,
};
use rhychee_fl::obs::{ObsServer, Watchdog};
use rhychee_fl::par::Parallelism;
use rhychee_fl::telemetry;

#[global_allocator]
static TRACKING: telemetry::alloc::TrackingAlloc = telemetry::alloc::TrackingAlloc;

/// Serializes tests: they share the telemetry enabled flag, the global
/// metrics registry, and the per-thread allocation counters.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn http_get(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (head, body) = response.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_owned())
}

/// Value of the first `"key": <number>` occurrence after `from`.
fn json_u64(body: &str, key: &str, from: usize) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body[from..].find(&needle)? + from + needle.len();
    let rest = body[at..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A fresh, empty scratch directory under `target/test_metrics/` —
/// workspace-relative so CI can upload what the tests leave behind
/// (flight-recorder dumps, the scraped `/memory.json` body).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target/test_metrics/memory_gate").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn stalls() -> u64 {
    telemetry::metrics::global().counter("fl.round.stalled").get()
}

/// The arena encrypt path allocates nothing once its buffers are warm:
/// per-span attribution over repeated `encrypt_symmetric_with_noise_into`
/// calls reads exactly 0 bytes. Telemetry stays disabled so the inner
/// `fhe.ckks.encrypt` span does not itself build a path string.
#[test]
fn steady_state_arena_encrypt_allocates_zero_bytes() {
    let _g = lock();
    telemetry::set_enabled(false);
    assert!(telemetry::alloc::installed(), "this binary declares the tracking allocator");

    let ctx = CkksContext::with_parallelism(CkksParams::toy(), Parallelism::Fixed(1))
        .expect("ckks context");
    let mut rng = StdRng::seed_from_u64(7);
    let (sk, _pk) = ctx.generate_keys(&mut rng);
    let values: Vec<f64> = (0..ctx.slot_count()).map(|i| (i as f64 * 0.01).sin()).collect();

    let mut noise = ctx.sample_symmetric_noise(&mut rng);
    let mut arena = CkksEncryptArena::default();
    let mut out = ctx.zero_ciphertext();
    // Warm-up: sizes the arena, the output ciphertext, and the
    // thread-local NTT scratch rows.
    for _ in 0..2 {
        ctx.sample_symmetric_noise_into(&mut rng, &mut noise);
        ctx.encrypt_symmetric_with_noise_into(&sk, &values, &noise, &mut arena, &mut out)
            .expect("warm-up encrypt");
    }

    let span = telemetry::span("encrypt");
    for _ in 0..3 {
        ctx.sample_symmetric_noise_into(&mut rng, &mut noise);
        ctx.encrypt_symmetric_with_noise_into(&sk, &values, &noise, &mut arena, &mut out)
            .expect("steady-state encrypt");
    }
    assert_eq!(
        span.alloc_bytes(),
        0,
        "steady-state arena encrypt must not allocate ({} calls to the allocator leaked in)",
        span.alloc_bytes()
    );
    span.finish();
}

/// The zero-copy fold kernel reads wire bytes in place: folding a warm
/// accumulator allocates 0 bytes, in both the canonical and the
/// seed-compressed wire format.
#[test]
fn steady_state_fold_view_allocates_zero_bytes() {
    let _g = lock();
    telemetry::set_enabled(false);

    let ctx = CkksContext::with_parallelism(CkksParams::toy(), Parallelism::Fixed(1))
        .expect("ckks context");
    let mut rng = StdRng::seed_from_u64(11);
    let (sk, _pk) = ctx.generate_keys(&mut rng);
    let values: Vec<f64> = (0..ctx.slot_count()).map(|i| (i as f64 * 0.02).cos()).collect();
    let ct = ctx.encrypt_symmetric(&sk, &values, &mut rng).expect("encrypt");

    let canonical = ctx.serialize(&ct);
    let seeded = ctx.serialize_seeded(&ct).expect("seeded wire form");
    let views = [
        ctx.view_serialized(&canonical).expect("canonical view"),
        ctx.view_serialized_seeded(&seeded).expect("seeded view"),
    ];
    for view in &views {
        let mut acc = ctx.accumulator_for(view);
        ctx.fold_view(&mut acc, view).expect("warm-up fold");
        let span = telemetry::span("net_fold");
        for _ in 0..3 {
            ctx.fold_view(&mut acc, view).expect("steady-state fold");
        }
        assert_eq!(
            span.alloc_bytes(),
            0,
            "steady-state fold_view must not allocate (fold domain {:?})",
            view.fold_domain()
        );
        span.finish();
    }
}

/// A real loopback federation under the tracking allocator: the
/// server's per-fold attribution histogram shows that steady-state
/// `net_fold` spans allocated 0 bytes (only the first fold of each
/// round materializes the accumulators), and a generously configured
/// watchdog wired through `ServerConfig` never fires.
#[test]
fn federation_fold_spans_are_zero_alloc_and_watchdog_stays_quiet() {
    let _g = lock();
    let dump_dir = scratch_dir("quiet");
    let stalls_before = stalls();

    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 180, test_samples: 60 }
        .generate(33)
        .expect("dataset");
    let fl = FlConfig::builder()
        .clients(3)
        .rounds(2)
        .hd_dim(128)
        .seed(5)
        .parallelism(Parallelism::Fixed(1))
        .build()
        .expect("config");
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    telemetry::set_enabled(true);
    let server = FlServer::bind(
        "127.0.0.1:0",
        ServerConfig::builder()
            .clients(fl.clients)
            .rounds(fl.rounds)
            .model_params(num_params)
            .parallelism(Parallelism::Fixed(1))
            .round_watchdog(50.0)
            .flight_dump_dir(&dump_dir)
            .build()
            .expect("server config"),
        ServerPipeline::Ckks(CkksParams::toy()),
    )
    .expect("server bind");
    let addr = server.local_addr().expect("server addr");
    let server = thread::spawn(move || server.run());
    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let local = ClientLocal::new(id, shard, classes, &fl);
        let client = FlClient::new(
            ClientConfig::new(addr),
            fl.clone(),
            local,
            classes,
            None,
            ClientPipeline::Ckks(CkksParams::toy()),
        )
        .expect("client");
        joins.push(thread::spawn(move || client.run()));
    }
    for j in joins {
        j.join().expect("client thread").expect("client run");
    }
    let report = server.join().expect("server thread").expect("server run");
    telemetry::set_enabled(false);

    let folds = fl.clients * fl.rounds;
    assert_eq!(report.rounds.len(), fl.rounds);

    let snap = telemetry::metrics::global().snapshot();
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "fl.phase.fold.alloc_bytes")
        .expect("per-fold allocation histogram recorded");
    assert_eq!(hist.count, folds as u64, "one attribution sample per fold");
    assert_eq!(hist.min, 0, "steady-state folds allocate 0 bytes on the coordinator thread");
    assert_eq!(hist.p50, 0, "most folds are steady-state (only round-opening folds allocate)");
    // The first fold of each round materializes the per-chunk
    // accumulators, so the histogram's max is genuinely nonzero — the
    // attribution distinguishes the two cases rather than reading 0
    // everywhere.
    assert!(hist.max > 0, "round-opening folds are attributed their accumulator allocation");

    // The watchdog was armed (50x the round timeout) but every phase
    // beat in time: no stall counted, no flight dump written.
    assert_eq!(stalls() - stalls_before, 0, "healthy federation never trips the watchdog");
    let dumps = std::fs::read_dir(&dump_dir).expect("dump dir").count();
    assert_eq!(dumps, 0, "no flight-recorder dump for a healthy run");
    let _ = std::fs::remove_dir_all(&dump_dir);
}

/// Stall injection through the public API: a watchdog that stops
/// hearing beats fires exactly once for the stalled epoch, bumps
/// `fl.round.stalled`, and writes one parseable flight-recorder dump.
#[test]
fn stalled_watchdog_fires_once_and_writes_a_parseable_dump() {
    let _g = lock();
    let dump_dir = scratch_dir("stall");
    let before = stalls();

    let wd = Watchdog::spawn(Duration::from_millis(40), Some(dump_dir.clone()));
    wd.beat("collect");
    thread::sleep(Duration::from_millis(300));
    assert_eq!(stalls() - before, 1, "one stalled epoch fires exactly once");
    drop(wd);

    let mut dumps: Vec<PathBuf> = std::fs::read_dir(&dump_dir)
        .expect("dump dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one flight-recorder dump");
    let path = dumps.pop().expect("dump path");
    let name = path.file_name().expect("file name").to_string_lossy().into_owned();
    assert!(
        name.starts_with("flight-stall-") && name.ends_with(".json"),
        "dump name carries the reason: {name}"
    );

    let body = std::fs::read_to_string(&path).expect("read dump");
    for field in [
        "\"kind\":\"rhychee-flight-recorder\"",
        "\"reason\":\"stall\"",
        "\"memory\":",
        "\"counters\":",
        "\"gauges\":",
        "\"histograms\":",
        "\"recent_spans\":",
    ] {
        assert!(body.contains(field), "dump missing {field}");
    }
    // Parseability: balanced braces/brackets outside string literals.
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in body.chars() {
        if esc {
            esc = false;
        } else if in_str {
            match c {
                '\\' => esc = true,
                '"' => in_str = false,
                _ => {}
            }
        } else {
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in flight dump");
        }
    }
    assert_eq!(depth, 0, "flight dump is balanced JSON");
    // Deliberately left on disk: CI uploads the dump as an artifact and
    // feeds it to the `mem_report` pretty-printer as a smoke test.
}

/// `/memory.json` reports the same heap figures the allocator counters
/// hold: installed, live bytes bracketed by before/after reads, and a
/// live ballast allocation visibly included.
#[test]
fn memory_json_scrape_reconciles_with_allocator_counters() {
    let _g = lock();
    let obs = ObsServer::bind("127.0.0.1:0").expect("obs bind").spawn().expect("obs spawn");

    let ballast = vec![0xA5u8; 4 << 20];
    let live_before = telemetry::alloc::stats().live_bytes;
    let body = http_get(obs.addr(), "/memory.json").expect("scrape /memory.json");
    let live_after = telemetry::alloc::stats().live_bytes;
    let out_dir = scratch_dir("scrape");
    std::fs::write(out_dir.join("memory.json"), &body).expect("save scraped body for CI");

    assert!(body.contains("\"installed\":true"), "allocator must report installed: {body}");
    let heap_at = body.find("\"heap\"").expect("heap section");
    let scraped_live = json_u64(&body, "live_bytes", heap_at).expect("heap.live_bytes");
    let scraped_peak = json_u64(&body, "peak_bytes", heap_at).expect("heap.peak_bytes");

    // The scrape happened between the two local reads; allow a slack
    // band for the server thread's own transient buffers.
    let slack = 2u64 << 20;
    let lo = live_before.min(live_after).saturating_sub(slack);
    let hi = live_before.max(live_after) + slack;
    assert!(
        (lo..=hi).contains(&scraped_live),
        "scraped live {scraped_live} outside allocator bracket [{lo}, {hi}]"
    );
    assert!(scraped_live >= ballast.len() as u64, "live heap covers the ballast allocation");
    assert!(scraped_peak >= scraped_live, "peak never below live");

    // RSS mirrors procfs where available (always on the Linux CI).
    if cfg!(target_os = "linux") {
        let rss_at = body.find("\"rss\"").expect("rss section");
        assert!(body.contains("\"available\":true"), "procfs-backed RSS on linux");
        let rss = json_u64(&body, "bytes", rss_at).expect("rss.bytes");
        assert!(rss > 0, "nonzero resident set");
    }
    drop(ballast);
}

/// Leak gate: two identical encrypted federations back to back. The
/// first run warms every cache that is *supposed* to persist (twiddle
/// tables, thread-local scratch arenas, interned metric names); the
/// second must then return the heap to where it started, within a
/// small slack. Net growth here is the signature of a real per-round
/// leak.
#[test]
fn repeated_federations_do_not_grow_the_live_heap() {
    let _g = lock();
    telemetry::set_enabled(false);

    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 180, test_samples: 60 }
        .generate(17)
        .expect("dataset");
    let run = |data: &TrainTest| {
        let config = FlConfig::builder()
            .clients(3)
            .rounds(2)
            .hd_dim(128)
            .seed(23)
            .parallelism(Parallelism::Fixed(1))
            .build()
            .expect("config");
        let mut fw = Framework::hdc_encrypted(config, data, CkksParams::toy()).expect("framework");
        let report = fw.run().expect("run");
        assert!(report.final_accuracy > 0.0);
    };

    run(&data); // warm-up: caches, arenas, interned names
    let live_before = telemetry::alloc::stats().live_bytes;
    run(&data);
    let live_after = telemetry::alloc::stats().live_bytes;

    let growth = live_after.saturating_sub(live_before);
    assert!(
        growth < 1 << 20,
        "steady-state federation leaked {growth} bytes of live heap \
         (before {live_before}, after {live_after})"
    );
}
