//! Noise-budget observability: every CKKS round must refresh the
//! `fhe.ckks.*` margin gauges and the measured decrypt-vs-plaintext
//! error gauge, so noise exhaustion is visible before accuracy
//! collapses (ISSUE 4 / DESIGN.md §10).
//!
//! Single test on purpose: it flips the process-global telemetry state.

use rhychee_fl::core::{FlConfig, Framework};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::telemetry;

const GAUGES: [&str; 4] = [
    "fhe.ckks.scale_bits",
    "fhe.ckks.level_remaining",
    "fhe.ckks.modulus_bits_remaining",
    "fl.decrypt_error.max",
];

#[test]
fn noise_budget_gauges_update_every_round() {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 120, test_samples: 40 }
        .generate(23)
        .expect("dataset");
    let config = FlConfig::builder().clients(3).rounds(2).hd_dim(64).seed(3).build().expect("cfg");
    let params = CkksParams::toy();

    telemetry::set_enabled(true);
    let mut federation = Framework::hdc_encrypted(config, &data, params.clone()).expect("build");
    let reg = telemetry::metrics::global();

    for round in 0..2 {
        // Poison every gauge with a sentinel no code path writes, so a
        // pass proves this round refreshed each one.
        for name in GAUGES {
            reg.gauge(name).set(-1.0);
        }
        federation.run_round().expect("round");

        let scale_bits = reg.gauge("fhe.ckks.scale_bits").get();
        assert_eq!(
            scale_bits,
            f64::from(params.scale_bits),
            "round {round}: fresh ciphertexts carry the configured scale"
        );
        let levels = reg.gauge("fhe.ckks.level_remaining").get();
        assert_eq!(
            levels,
            params.prime_bits.len() as f64,
            "round {round}: no rescale happened, full chain remains"
        );
        let modulus_bits = reg.gauge("fhe.ckks.modulus_bits_remaining").get();
        assert!(
            modulus_bits >= f64::from(params.log_q()),
            "round {round}: active primes cover log Q = {} (got {modulus_bits})",
            params.log_q()
        );
        let err = reg.gauge("fl.decrypt_error.max").get();
        assert!(
            err.is_finite() && err > 0.0,
            "round {round}: CKKS noise makes the measured decrypt error strictly positive \
             (got {err})"
        );
        assert!(err < 1e-2, "round {round}: decrypt error stays within the noise margin ({err})");
    }
    telemetry::set_enabled(false);
}
