//! Integration tests for the beyond-the-paper extensions: threshold
//! CKKS federated aggregation (no shared secret key) and TFHE
//! programmable bootstrapping applied after homomorphic aggregation.

use rand::{rngs::StdRng, SeedableRng};

use rhychee_fl::core::packing;
use rhychee_fl::fhe::ckks::threshold::ThresholdGroup;
use rhychee_fl::fhe::ckks::CkksContext;
use rhychee_fl::fhe::lwe::LweContext;
use rhychee_fl::fhe::params::{CkksParams, LweParams};
use rhychee_fl::fhe::tfhe_boot::{BootstrapContext, BootstrapParams};

#[test]
fn federated_round_under_threshold_keys() {
    // A full aggregation round where no client ever holds the whole
    // secret key: joint keygen -> encrypt -> HomAvg -> distributed
    // decryption.
    let ctx = CkksContext::new(CkksParams::toy()).expect("params");
    let mut rng = StdRng::seed_from_u64(1);
    let clients = 4;
    let group = ThresholdGroup::generate(&ctx, clients, &mut rng);

    let models: Vec<Vec<f32>> = (0..clients)
        .map(|c| (0..300).map(|i| ((c * 300 + i) as f32 * 0.01).sin()).collect())
        .collect();
    let uploads: Vec<_> = models
        .iter()
        .map(|m| packing::encrypt_model(&ctx, group.public_key(), m, &mut rng).expect("encrypt"))
        .collect();
    let global_cts = packing::homomorphic_average(&ctx, &uploads).expect("aggregate");

    // Distributed decryption of every chunk.
    let mut global = Vec::new();
    for ct in &global_cts {
        let partials: Vec<_> =
            (0..clients).map(|i| group.partial_decrypt(&ctx, i, ct, &mut rng)).collect();
        global.extend(ThresholdGroup::combine(&ctx, ct, &partials));
    }
    for i in 0..300 {
        let expected: f32 = models.iter().map(|m| m[i]).sum::<f32>() / clients as f32;
        assert!(
            (global[i] as f32 - expected).abs() < 0.05,
            "param {i}: {} vs {expected}",
            global[i]
        );
    }
}

#[test]
fn bootstrapped_nonlinearity_after_aggregation() {
    // The §IV-B2 TFHE scenario end-to-end: clients report small counts,
    // the server sums them homomorphically and then applies a non-linear
    // threshold via programmable bootstrapping — all without decryption.
    let params = BootstrapParams {
        lwe: LweParams { dimension: 64, log_q: 9, plaintext_modulus: 8, sigma_int: 0.4 },
        ring_degree: 256,
        ring_modulus_bits: 27,
        gadget_log_base: 9,
        gadget_levels: 3,
        ks_log_base: 7,
        ks_levels: 4,
        rlwe_sigma: 3.2,
    };
    let ctx = LweContext::new(params.lwe).expect("lwe params");
    let mut rng = StdRng::seed_from_u64(2);
    let sk = ctx.generate_key(&mut rng);
    let boot = BootstrapContext::generate(&params, &ctx, &sk, &mut rng).expect("keygen");

    // Three clients vote 0/1/2; threshold at >= 3 of a possible 6.
    let votes = [0u64, 1, 2];
    let mut acc = ctx.encrypt(&sk, votes[0], &mut rng).expect("encrypt");
    for &v in &votes[1..] {
        let ct = ctx.encrypt(&sk, v, &mut rng).expect("encrypt");
        ctx.add_assign(&mut acc, &ct).expect("add");
    }
    let majority: Vec<u64> = (0..8).map(|x| u64::from(x >= 3)).collect();
    let decision = boot.bootstrap(&acc, &majority).expect("bootstrap");
    assert_eq!(ctx.decrypt(&sk, &decision), 1, "sum = 3 crosses the threshold");
}
