//! Deprecation hygiene for the PR 3 migration path: the deprecated
//! `FlConfigBuilder::threads` alias must keep compiling and must map
//! onto the unified `Parallelism` knob.

use rhychee_fl::core::{FlConfig, Parallelism};

#[test]
fn deprecated_threads_alias_still_maps_to_fixed_parallelism() {
    #[allow(deprecated)]
    let cfg = FlConfig::builder()
        .clients(4)
        .rounds(2)
        .hd_dim(128)
        .seed(11)
        .threads(3)
        .build()
        .expect("valid config");
    assert_eq!(cfg.parallelism, Parallelism::Fixed(3));

    // The alias floors at one worker, mirroring Fixed's semantics.
    #[allow(deprecated)]
    let cfg = FlConfig::builder().threads(0).build().expect("valid config");
    assert_eq!(cfg.parallelism, Parallelism::Fixed(1));

    // The replacement API and the alias agree.
    let explicit =
        FlConfig::builder().parallelism(Parallelism::Fixed(3)).build().expect("valid config");
    assert_eq!(explicit.parallelism, Parallelism::Fixed(3));
}
