//! Deprecation hygiene for the migration paths: the deprecated
//! `FlConfigBuilder::threads` alias (PR 3) must keep compiling and map
//! onto the unified `Parallelism` knob, and the deprecated
//! `{Server,Client}Pipeline::CkksSeeded` variants (PR 8) must keep
//! compiling and behave exactly like the replacement codec API.

use std::sync::Arc;
use std::thread;

use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::{FlConfig, Parallelism};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::net::{
    ClientConfig, ClientPipeline, ClientReport, FlClient, FlServer, SeededCodec, ServerConfig,
    ServerPipeline,
};

#[test]
fn deprecated_threads_alias_still_maps_to_fixed_parallelism() {
    #[allow(deprecated)]
    let cfg = FlConfig::builder()
        .clients(4)
        .rounds(2)
        .hd_dim(128)
        .seed(11)
        .threads(3)
        .build()
        .expect("valid config");
    assert_eq!(cfg.parallelism, Parallelism::Fixed(3));

    // The alias floors at one worker, mirroring Fixed's semantics.
    #[allow(deprecated)]
    let cfg = FlConfig::builder().threads(0).build().expect("valid config");
    assert_eq!(cfg.parallelism, Parallelism::Fixed(1));

    // The replacement API and the alias agree.
    let explicit =
        FlConfig::builder().parallelism(Parallelism::Fixed(3)).build().expect("valid config");
    assert_eq!(explicit.parallelism, Parallelism::Fixed(3));
}

/// Runs a small seeded-codec loopback federation, with the wire format
/// selected either through the deprecated `CkksSeeded` pipeline
/// variants or through the replacement codec API.
fn run_seeded_federation(deprecated: bool) -> Vec<ClientReport> {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 120, test_samples: 40 }
        .generate(19)
        .expect("dataset generation");
    let fl = FlConfig::builder()
        .clients(2)
        .rounds(2)
        .hd_dim(256)
        .seed(23)
        .build()
        .expect("valid config");
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let mut builder =
        ServerConfig::builder().clients(fl.clients).rounds(fl.rounds).model_params(num_params);
    #[allow(deprecated)]
    let server_pipeline = if deprecated {
        ServerPipeline::CkksSeeded(CkksParams::toy())
    } else {
        builder = builder.codec(SeededCodec);
        ServerPipeline::Ckks(CkksParams::toy())
    };
    let server =
        FlServer::bind("127.0.0.1:0", builder.build().expect("server config"), server_pipeline)
            .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server = thread::spawn(move || server.run());

    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let local = ClientLocal::new(id, shard, classes, &fl);
        let mut client_config = ClientConfig::new(addr);
        #[allow(deprecated)]
        let client_pipeline = if deprecated {
            ClientPipeline::CkksSeeded(CkksParams::toy())
        } else {
            client_config.codec = Arc::new(SeededCodec);
            ClientPipeline::Ckks(CkksParams::toy())
        };
        let client =
            FlClient::new(client_config, fl.clone(), local, classes, None, client_pipeline)
                .expect("client");
        joins.push(thread::spawn(move || client.run()));
    }
    let reports: Vec<ClientReport> =
        joins.into_iter().map(|j| j.join().expect("join").expect("client run")).collect();
    server.join().expect("join").expect("server run");
    reports
}

#[test]
fn deprecated_ckks_seeded_pipelines_match_the_codec_api() {
    let old = run_seeded_federation(true);
    let new = run_seeded_federation(false);
    assert_eq!(old.len(), new.len());
    for (o, n) in old.iter().zip(&new) {
        assert_eq!(o.client_id, n.client_id);
        assert_eq!(
            o.final_model, n.final_model,
            "client {}: deprecated CkksSeeded diverged from codec(SeededCodec)",
            o.client_id
        );
        assert_eq!(
            o.bytes_tx, n.bytes_tx,
            "client {}: the two spellings must produce identical wire traffic",
            o.client_id
        );
    }
}
