//! Consistency checks spanning crates: the analytical communication
//! formulas (Table I), the bit-exact wire format, HDC quantization
//! through the LWE transport, and the baselines' parameter accounting.

use rand::{rngs::StdRng, SeedableRng};

use rhychee_fl::core::packing;
use rhychee_fl::fhe::ckks::CkksContext;
use rhychee_fl::fhe::lwe::LweContext;
use rhychee_fl::fhe::params::{CkksParams, LweParams, ParamSet};
use rhychee_fl::hdc::model::HdcModel;
use rhychee_fl::hdc::quantize::QuantizedModel;
use rhychee_fl::nn::Network;

#[test]
fn serialized_sizes_match_table1_within_header_overhead() {
    let mut rng = StdRng::seed_from_u64(3);
    for (name, set) in ParamSet::table3() {
        match set {
            ParamSet::Ckks(p) => {
                let formula = p.ciphertext_bits();
                let ctx = CkksContext::new(p).expect("params");
                let (_, pk) = ctx.generate_keys(&mut rng);
                let ct = ctx.encrypt(&pk, &[0.5], &mut rng).expect("encrypt");
                let actual = (ctx.serialize(&ct).len() * 8) as u64;
                // 72-bit header + byte padding only.
                assert!(actual >= formula, "{name}: {actual} < formula {formula}");
                assert!(actual - formula <= 80, "{name}: overhead {}", actual - formula);
            }
            ParamSet::Tfhe(p) => {
                let formula = p.ciphertext_bits();
                let ctx = LweContext::new(p).expect("params");
                let sk = ctx.generate_key(&mut rng);
                let ct = ctx.encrypt(&sk, 1, &mut rng).expect("encrypt");
                let actual = (ctx.serialize(&ct).len() * 8) as u64;
                assert!(actual >= formula && actual - formula < 8, "{name}: {actual} vs {formula}");
            }
        }
    }
}

#[test]
fn paper_headline_ciphertext_counts() {
    // 20,000-parameter HDC model and 43,484-parameter CNN at N/2 = 4096.
    assert_eq!(packing::ciphertexts_needed(20_000, 4096), 5);
    assert_eq!(packing::ciphertexts_needed(43_484, 4096), 11);
    // The 2.2x communication ratio follows directly.
    let ratio: f64 = 11.0 / 5.0;
    assert!((ratio - 2.2).abs() < 1e-9);
}

#[test]
fn baseline_parameter_counts() {
    let mut rng = StdRng::seed_from_u64(4);
    assert_eq!(Network::cnn_mnist(&mut rng).num_params(), 43_484);
    assert_eq!(Network::logistic_regression(784, 10, &mut rng).num_params(), 7_850);
    // HDC at the paper's operating point.
    assert_eq!(HdcModel::new(10, 2000).num_parameters(), 20_000);
}

#[test]
fn quantized_model_survives_lwe_transport() {
    // HDC model -> 6-bit quantization -> offset encoding -> LWE encrypt ->
    // homomorphic sum of 3 clients -> decrypt -> average: the full TFHE
    // pipeline in miniature, checked against the plaintext computation.
    let mut rng = StdRng::seed_from_u64(5);
    let clients = 3usize;
    let bits = 6u32;
    let dim = 32;
    let models: Vec<HdcModel> = (0..clients)
        .map(|c| {
            let mut m = HdcModel::new(2, dim);
            let flat: Vec<f32> = (0..2 * dim).map(|i| ((c * 64 + i) as f32 * 0.17).sin()).collect();
            m.load_flat(&flat);
            m
        })
        .collect();

    let params = LweParams {
        dimension: 128,
        log_q: 16,
        plaintext_modulus: ((clients as u64) << bits).next_power_of_two(),
        sigma_int: 0.6,
    };
    let ctx = LweContext::new(params).expect("params");
    let sk = ctx.generate_key(&mut rng);

    let quantized: Vec<QuantizedModel> =
        models.iter().map(|m| QuantizedModel::quantize(m, bits)).collect();
    let scale = quantized.iter().map(QuantizedModel::scale).fold(f64::MAX, f64::min);

    // Encrypt, sum homomorphically.
    let mut sums: Vec<_> = quantized[0]
        .to_offset_encoded()
        .iter()
        .map(|&v| ctx.encrypt(&sk, v, &mut rng).expect("encrypt"))
        .collect();
    for q in &quantized[1..] {
        for (acc, &v) in sums.iter_mut().zip(q.to_offset_encoded().iter()) {
            let ct = ctx.encrypt(&sk, v, &mut rng).expect("encrypt");
            ctx.add_assign(acc, &ct).expect("add");
        }
    }

    // Decrypt and undo offset + scale.
    let offset = (1i64 << (bits - 1)) * clients as i64;
    let averaged: Vec<f32> = sums
        .iter()
        .map(|ct| {
            let sum = ctx.decrypt(&sk, ct) as i64 - offset;
            (sum as f64 / (clients as f64 * scale)) as f32
        })
        .collect();

    // Plaintext reference (with the same per-client quantization).
    let reference: Vec<f32> = (0..2 * dim)
        .map(|i| {
            quantized.iter().map(|q| q.values()[i] as f64 / q.scale()).sum::<f64>() as f32
                / clients as f32
        })
        .collect();
    let quant_step = (1.0 / scale) as f32;
    for (a, r) in averaged.iter().zip(&reference) {
        assert!((a - r).abs() <= 1.5 * quant_step, "{a} vs {r} (step {quant_step})");
    }
}

#[test]
fn ckks_packed_model_round_trip_at_scale() {
    // A full 20,000-parameter model through the real CKKS-4 set.
    let ctx = CkksContext::new(CkksParams::ckks4()).expect("params");
    let mut rng = StdRng::seed_from_u64(6);
    let (sk, pk) = ctx.generate_keys(&mut rng);
    let model: Vec<f32> = (0..20_000).map(|i| ((i as f32) * 0.001).cos() * 10.0).collect();
    let cts = packing::encrypt_model(&ctx, &pk, &model, &mut rng).expect("encrypt");
    assert_eq!(cts.len(), 5);
    let back = packing::decrypt_model(&ctx, &sk, &cts, 20_000).expect("decrypt");
    let max_err = model.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(max_err < 0.05, "CKKS-4 round-trip error {max_err}");
}
