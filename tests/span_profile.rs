//! Span-tree profiler reconciliation over a real encrypted federation:
//! the aggregated call tree must account for every recorded nanosecond,
//! and the folded-stack export must reach FHE leaf spans at depth >= 3
//! (`round;encrypt;fhe.ckks.encrypt`).
//!
//! Runs at `Parallelism::Fixed(1)`: span paths are built from
//! thread-local stacks, so only the inline schedule nests the CKKS
//! leaf spans under their `round/<phase>` parents.
//!
//! Single test on purpose: it flips the process-global telemetry state.

use std::collections::HashMap;

use rhychee_fl::core::{FlConfig, Framework, Parallelism};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::telemetry::{self, profile, SpanTree, TraceWriter};

#[test]
fn span_tree_reconciles_with_jsonl_to_the_nanosecond() {
    let data = SyntheticConfig { kind: DatasetKind::Mnist, train_samples: 120, test_samples: 40 }
        .generate(13)
        .expect("dataset");
    let config = FlConfig::builder()
        .clients(2)
        .rounds(2)
        .hd_dim(128)
        .seed(5)
        .parallelism(Parallelism::Fixed(1))
        .build()
        .expect("config");

    telemetry::set_enabled(true);
    let mut federation = Framework::hdc_encrypted(config, &data, CkksParams::toy()).expect("build");
    federation.run().expect("run");
    telemetry::set_enabled(false);
    let events = telemetry::trace::drain_events();
    assert!(!events.is_empty());

    // Round-trip through the JSONL format the trace_report bin consumes.
    let mut writer = TraceWriter::new(Vec::new());
    writer.write_events(&events).expect("serialize");
    let text = String::from_utf8(writer.into_inner().expect("flush")).expect("utf8");
    let parsed = profile::parse_jsonl(&text);
    assert_eq!(parsed.len(), events.len(), "every span survives the JSONL round trip");

    let tree = SpanTree::from_paths(parsed);

    // Exact reconciliation: each node's count and total must equal the
    // raw per-path sums from the trace, to the nanosecond.
    let mut expected: HashMap<&str, (u64, u64)> = HashMap::new();
    for e in &events {
        let entry = expected.entry(e.path.as_str()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += e.dur_ns;
    }
    for node in tree.nodes().filter(|n| n.count > 0) {
        let &(count, total_ns) = expected.get(node.path.as_str()).expect("recorded path");
        assert_eq!(node.count, count, "count for {}", node.path);
        assert_eq!(node.total_ns, total_ns, "total_ns for {}", node.path);
    }
    assert_eq!(tree.nodes().filter(|n| n.count > 0).count(), expected.len());

    // A parent's self-time never exceeds its total, and the FHE leaves
    // nest under their phases.
    let round = tree.get("round").expect("round node");
    assert!(round.self_ns() <= round.total_ns);
    let encrypt_leaf = tree.get("round/encrypt/fhe.ckks.encrypt").expect("nested encrypt leaf");
    assert!(encrypt_leaf.count > 0 && encrypt_leaf.total_ns > 0);
    assert!(tree.get("round/decrypt/fhe.ckks.decrypt").is_some(), "nested decrypt leaf");

    // Folded-stack export reaches depth >= 3 and carries self-times.
    let folded = tree.folded();
    let deep: Vec<&str> =
        folded.lines().filter(|l| l.split(' ').next().unwrap().split(';').count() >= 3).collect();
    assert!(!deep.is_empty(), "folded stacks reach depth >= 3:\n{folded}");
    assert!(
        deep.iter().any(|l| l.starts_with("round;encrypt;fhe.ckks.encrypt ")),
        "CKKS encrypt leaf folded under round;encrypt:\n{folded}"
    );
    for line in folded.lines() {
        let (_, value) = line.rsplit_once(' ').expect("folded line shape");
        assert!(value.parse::<u64>().expect("ns value") > 0);
    }

    // The self-time table ranks by self-time and prints exact totals.
    let table = tree.self_time_table(10);
    assert!(table.lines().count() > 1, "table has rows:\n{table}");
    assert!(table.contains(&round.total_ns.to_string()), "exact round total in table:\n{table}");
}
