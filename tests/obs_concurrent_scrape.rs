//! Concurrent-scrape stress test for the live observability plane
//! (DESIGN.md §12, satellite of the federation-tracing PR): three
//! scraper threads hammer `/metrics`, `/healthz` and `/rounds.json`
//! simultaneously while a CKKS federation runs, and every single 200
//! body must be well-formed — the exposition grammar for Prometheus,
//! the JSON shapes for the other two. The obs listener dies with
//! `run()`, so every captured body is by construction a mid-run scrape.
//!
//! Single test on purpose: it flips the process-global telemetry state
//! (enabled flag, registry, rounds store), which cannot be shared with
//! other tests in the same binary.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::FlConfig;
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::net::{
    ClientConfig, ClientPipeline, FlClient, FlServer, ServerConfig, ServerPipeline,
};

fn http_get(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (head, body) = response.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_owned())
}

/// Validates the exposition grammar: every sample line is
/// `series[{labels}] value`, every comment is a `# TYPE` we emit.
fn assert_valid_exposition(text: &str) {
    assert!(!text.is_empty(), "empty exposition");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let kind = rest.split(' ').nth(1).expect("type line has a kind");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "bad type: {line}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line must be `series value`: {line:?}");
        });
        assert!(series.starts_with("rhychee_"), "unprefixed series: {line}");
        let parses = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
        assert!(parses, "unparseable value in {line:?}");
    }
}

/// Braces must balance in every JSON body, even ones scraped while the
/// server is mid-aggregate on another thread.
fn assert_balanced_json(body: &str) {
    let mut depth = 0i64;
    for c in body.chars() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close in {body}");
    }
    assert_eq!(depth, 0, "unterminated JSON: {body}");
}

struct ScrapeTally {
    /// Bodies that returned 200 (all of them are mid-run by construction).
    ok: usize,
    /// The last body showing a round in flight / a closed round record.
    live: Option<String>,
}

#[test]
fn concurrent_scrapes_stay_well_formed_during_live_round() {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 240, test_samples: 80 }
        .generate(43)
        .expect("dataset");
    // CKKS with a real model size so rounds take long enough that all
    // three scrapers land many captures mid-federation.
    let fl = FlConfig::builder().clients(3).rounds(6).hd_dim(512).seed(17).build().expect("config");
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let server = FlServer::bind(
        "127.0.0.1:0",
        ServerConfig::builder()
            .clients(fl.clients)
            .rounds(fl.rounds)
            .model_params(num_params)
            .obs_addr("127.0.0.1:0")
            .build()
            .expect("server config"),
        ServerPipeline::Ckks(CkksParams::toy()),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let obs = server.obs_addr().expect("obs enabled at bind time");

    let server_thread = thread::spawn(move || server.run());
    let clients: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(id, shard)| {
            let local = ClientLocal::new(id, shard, classes, &fl);
            let client = FlClient::new(
                ClientConfig::new(addr),
                fl.clone(),
                local,
                classes,
                None,
                ClientPipeline::Ckks(CkksParams::toy()),
            )
            .expect("client");
            thread::spawn(move || client.run())
        })
        .collect();

    // Three scrapers, one per endpoint, all hammering at once. Each
    // validates every body it receives and remembers the last one that
    // proves the federation was in flight. `is_live` must only accept
    // bodies impossible before the run starts.
    let stop = Arc::new(AtomicBool::new(false));
    let scrape = |path: &'static str, is_live: fn(&str) -> bool, check: fn(&str)| {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut tally = ScrapeTally { ok: 0, live: None };
            while !stop.load(Ordering::Relaxed) {
                // No sleep: the obs accept poll paces the loop, and three
                // unpaced threads maximize connection-level contention.
                if let Some(body) = http_get(obs, path) {
                    check(&body);
                    tally.ok += 1;
                    if is_live(&body) {
                        tally.live = Some(body);
                    }
                }
            }
            tally
        })
    };
    let metrics_thread = scrape(
        "/metrics",
        |b| b.contains("rhychee_fl_round_current 1") || b.contains("rhychee_net_bytes_rx_total"),
        assert_valid_exposition,
    );
    let health_thread = scrape(
        "/healthz",
        |b| b.contains("\"clients_connected\":3"),
        |b| {
            assert_balanced_json(b);
            assert!(b.contains("\"status\":\"ok\""), "{b}");
            assert!(b.contains("\"round\":"), "{b}");
        },
    );
    let rounds_thread = scrape(
        "/rounds.json",
        |b| b.contains("\"round\":") && b.contains("\"offset_ns\":"),
        |b| {
            assert_balanced_json(b);
            assert!(b.starts_with("{\"rounds\":["), "{b}");
            assert!(b.contains("\"phases\":{"), "{b}");
        },
    );

    server_thread.join().expect("server thread").expect("server run");
    stop.store(true, Ordering::Relaxed);
    let finals: Vec<Vec<f32>> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("client run").final_model)
        .collect();
    assert!(finals.windows(2).all(|w| w[0] == w[1]), "clients agree despite scrape load");

    let metrics = metrics_thread.join().expect("metrics scraper");
    let health = health_thread.join().expect("healthz scraper");
    let rounds = rounds_thread.join().expect("rounds scraper");
    for (path, tally) in [("/metrics", &metrics), ("/healthz", &health), ("/rounds.json", &rounds)]
    {
        assert!(tally.ok >= 1, "{path}: no successful scrape landed during the run");
        assert!(tally.live.is_some(), "{path}: no scrape caught the federation in flight");
    }

    // The live `/rounds.json` capture must already carry per-client
    // arrivals and all six phase histograms mid-run.
    let live_rounds = rounds.live.expect("live rounds body");
    assert!(live_rounds.contains("\"arrivals\":["), "{live_rounds}");
    for phase in ["broadcast", "local_train", "encrypt", "upload", "aggregate", "decrypt"] {
        assert!(live_rounds.contains(&format!("\"{phase}\":{{")), "{phase}: {live_rounds}");
    }
}
