//! NTT-residency must never change a bit: the evaluation-domain CKKS
//! pipeline (the default) and the coefficient-domain reference pipeline
//! (`set_eval_resident(false)`) are the same linear algebra with the
//! per-prime NTT bijection commuted through it, so a full encrypted
//! federation must produce bit-identical decrypted models *and*
//! identical canonical ciphertext bytes under either — at every
//! parallelism degree.

use rhychee_fl::core::packing;
use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::FlConfig;
use rhychee_fl::data::{DatasetKind, SyntheticConfig, TrainTest};
use rhychee_fl::fhe::ckks::CkksContext;
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::par::Parallelism;

fn har_data() -> TrainTest {
    SyntheticConfig { kind: DatasetKind::Har, train_samples: 240, test_samples: 80 }
        .generate(42)
        .expect("dataset generation")
}

fn config(par: Parallelism) -> FlConfig {
    FlConfig::builder()
        .clients(4)
        .rounds(2)
        .hd_dim(256)
        .seed(19)
        .parallelism(par)
        .build()
        .expect("valid config")
}

/// Runs a full encrypted federation with the given pipeline flavor and
/// returns every canonical ciphertext serialization (client uploads and
/// aggregates, in order) plus the final decrypted global model bits.
fn run_federation(
    data: &TrainTest,
    par: Parallelism,
    eval_resident: bool,
) -> (Vec<Vec<u8>>, Vec<u32>) {
    let fl = config(par);
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, data).expect("prepare");
    let mut ctx = CkksContext::with_parallelism(CkksParams::toy(), par).expect("context");
    ctx.set_eval_resident(eval_resident);
    let (sk, pk) = round::derive_ckks_keys(&ctx, fl.seed);
    let num_params = classes * fl.hd_dim;

    let mut clients: Vec<ClientLocal> = shards
        .into_iter()
        .enumerate()
        .map(|(id, s)| ClientLocal::new(id, s, classes, &fl))
        .collect();
    let mut global = vec![0.0f32; num_params];
    let mut blobs: Vec<Vec<u8>> = Vec::new();
    for r in 0..fl.rounds {
        let mut sr = round::ServerRound::new(r, fl.aggregation);
        for local in &mut clients {
            let flat = local.train(&global, &fl);
            let cts = local.encrypt_update(&ctx, &pk, &flat).expect("encrypt");
            sr.accept(round::ClientUpdate {
                client_id: local.id(),
                round: r,
                steps: local.last_steps(),
                payload: cts,
            });
        }
        for u in sr.updates() {
            blobs.extend(u.payload.iter().map(|ct| ctx.serialize(ct)));
        }
        let agg = sr.aggregate_ckks(&ctx).expect("aggregate");
        blobs.extend(agg.iter().map(|ct| ctx.serialize(ct)));
        global = packing::decrypt_model(&ctx, &sk, &agg, num_params).expect("decrypt");
    }
    (blobs, global.iter().map(|v| v.to_bits()).collect())
}

#[test]
fn resident_and_reference_pipelines_are_bit_identical() {
    let data = har_data();
    let (ref_blobs, ref_model) = run_federation(&data, Parallelism::Fixed(1), false);
    for par in [Parallelism::Fixed(1), Parallelism::Auto] {
        let (blobs, model) = run_federation(&data, par, true);
        assert_eq!(ref_model, model, "decrypted global model diverged at {par}");
        assert_eq!(ref_blobs, blobs, "canonical ciphertext bytes diverged at {par}");
    }
}

#[test]
fn seeded_uploads_decrypt_identically_across_parallelism() {
    // The symmetric seeded upload path has its own fan-out (per-prime
    // seed streams expanded inside for_each_mut): a seeded federation
    // round must also be degree-invariant, including its seeded wire
    // bytes.
    let data = har_data();
    let run = |par: Parallelism| -> (Vec<Vec<u8>>, Vec<u32>) {
        let fl = config(par);
        let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
        let ctx = CkksContext::with_parallelism(CkksParams::toy(), par).expect("context");
        let (sk, _) = round::derive_ckks_keys(&ctx, fl.seed);
        let num_params = classes * fl.hd_dim;
        let zeros = vec![0.0f32; num_params];

        let mut sr = round::ServerRound::new(0, fl.aggregation);
        let mut blobs: Vec<Vec<u8>> = Vec::new();
        for (id, shard) in shards.into_iter().enumerate() {
            let mut local = ClientLocal::new(id, shard, classes, &fl);
            let flat = local.train(&zeros, &fl);
            let cts = local.encrypt_update_symmetric(&ctx, &sk, &flat).expect("encrypt");
            blobs.extend(cts.iter().map(|ct| ctx.serialize_seeded(ct).expect("seeded bytes")));
            sr.accept(round::ClientUpdate {
                client_id: id,
                round: 0,
                steps: local.last_steps(),
                payload: cts,
            });
        }
        let agg = sr.aggregate_ckks(&ctx).expect("aggregate");
        blobs.extend(agg.iter().map(|ct| ctx.serialize(ct)));
        let model = packing::decrypt_model(&ctx, &sk, &agg, num_params).expect("decrypt");
        (blobs, model.iter().map(|v| v.to_bits()).collect())
    };

    let seq = run(Parallelism::Fixed(1));
    for par in [Parallelism::Fixed(3), Parallelism::Auto] {
        assert_eq!(seq, run(par), "seeded round diverged at {par}");
    }
}
