//! Pins the synthetic-MNIST difficulty calibration.
//!
//! Table II's accuracy ordering (HDC ≥ MLP > LR) only reproduces if the
//! dataset is hard enough that a linear pixel classifier cannot
//! saturate, yet easy enough that kernel methods stay accurate. This
//! test guards that calibration against generator changes.

use rand::{rngs::StdRng, SeedableRng};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::hdc::encoding::{Encoder, RbfEncoder};
use rhychee_fl::hdc::model::{EncodedDataset, HdcModel};
use rhychee_fl::nn::Network;
use rhychee_fl::par::Parallelism;

#[test]
fn synthetic_mnist_separates_model_classes() {
    let split =
        SyntheticConfig { kind: DatasetKind::Mnist, train_samples: 1_200, test_samples: 400 }
            .generate(17)
            .expect("dataset generation");
    let mut rng = StdRng::seed_from_u64(3);

    // Linear classifier: must clear chance comfortably but NOT saturate.
    let mut lr = Network::logistic_regression(784, 10, &mut rng);
    for _ in 0..10 {
        lr.train_epoch(split.train.features(), split.train.labels(), 32, 0.1, 0.9, &mut rng);
    }
    let lr_acc = lr.accuracy(split.test.features(), split.test.labels());
    assert!(lr_acc > 0.5, "LR should learn something: {lr_acc}");
    assert!(lr_acc < 0.97, "LR must not saturate (dataset too easy): {lr_acc}");

    // HDC-RBF at the paper's D = 2000: competitive with or above LR.
    let enc = RbfEncoder::new(784, 2000, &mut StdRng::seed_from_u64(9));
    let train = EncodedDataset::new(
        enc.encode_batch(split.train.features(), Parallelism::sequential()),
        split.train.labels().to_vec(),
    );
    let test = EncodedDataset::new(
        enc.encode_batch(split.test.features(), Parallelism::sequential()),
        split.test.labels().to_vec(),
    );
    let mut model = HdcModel::new(10, 2000);
    for _ in 0..10 {
        model.train_epoch(&train, 1.0);
    }
    let hdc_acc = model.accuracy(&test);
    assert!(hdc_acc > 0.85, "HDC-RBF should stay strong: {hdc_acc}");
    assert!(
        hdc_acc > lr_acc - 0.05,
        "HDC ({hdc_acc}) must be at least competitive with LR ({lr_acc})"
    );
}
