//! End-to-end scenario-engine tests: attack/defense accuracy effects,
//! bit-identical replay (including across parallelism degrees), churn +
//! straggler composition, and threshold-CKKS dropout recovery.

use rhychee_fl::core::{FlConfig, Parallelism};
use rhychee_fl::data::{DatasetKind, SyntheticConfig, TrainTest};
use rhychee_fl::scenario::{
    self, AttackKind, ChurnTrace, ClipBound, Defense, DeviceProfile, ScenarioReport, ScenarioSpec,
};

fn data() -> TrainTest {
    SyntheticConfig { kind: DatasetKind::Har, train_samples: 400, test_samples: 160 }
        .generate(11)
        .expect("generate")
}

fn base(clients: usize, rounds: usize, seed: u64) -> FlConfig {
    FlConfig::builder()
        .clients(clients)
        .rounds(rounds)
        .hd_dim(512)
        .seed(seed)
        .build()
        .expect("valid config")
}

fn fingerprint(r: &ScenarioReport) -> Vec<u64> {
    // Bit-exact digest of everything the scenario influences.
    let mut fp = vec![
        r.final_accuracy.to_bits(),
        r.attacks_injected,
        r.updates_clipped,
        r.clients_churned,
        r.stragglers_dropped,
        r.threshold_recoveries,
        r.recovery_failures,
        r.recovery_max_err.to_bits(),
    ];
    fp.extend(r.rounds.iter().map(|round| round.accuracy.to_bits()));
    fp.extend(r.rounds.iter().map(|round| round.participants as u64));
    fp
}

#[test]
fn clipping_recovers_at_least_half_the_signflip_damage() {
    // The ISSUE acceptance bar at 20% attack fraction, as a test: let
    // benign/attacked/defended runs share the seed, then check
    // benign − defended <= (benign − attacked) / 2.
    let data = data();
    let run = |attack: bool, defense: bool| {
        let mut spec = ScenarioSpec::new(base(10, 3, 42));
        if attack {
            spec = spec.with_attack(AttackKind::SignFlip { scale: 10.0 }, 0.2);
        }
        if defense {
            spec = spec.with_defense(Defense::NormClip { bound: ClipBound::Median });
        }
        scenario::run(&spec, &data).expect("run")
    };
    let benign = run(false, false);
    let attacked = run(true, false);
    let defended = run(true, true);

    assert_eq!(attacked.attackers.len(), 2, "20% of 10 clients");
    assert!(attacked.attacks_injected >= 2 * 3, "every round, every attacker");
    assert!(defended.updates_clipped > 0, "the defense must have fired");

    let damage = benign.final_accuracy - attacked.final_accuracy;
    let residual = benign.final_accuracy - defended.final_accuracy;
    assert!(
        damage > 0.02,
        "sign-flip at 20% must hurt: benign {} vs attacked {}",
        benign.final_accuracy,
        attacked.final_accuracy
    );
    assert!(
        residual <= damage / 2.0,
        "norm clipping must recover at least half the lost accuracy: \
         benign {}, attacked {}, defended {}",
        benign.final_accuracy,
        attacked.final_accuracy,
        defended.final_accuracy
    );
}

#[test]
fn scenario_replays_bit_identically() {
    let data = data();
    let spec = ScenarioSpec::new(base(8, 3, 1234))
        .with_attack(AttackKind::SignFlip { scale: 10.0 }, 0.25)
        .with_defense(Defense::NormClip { bound: ClipBound::Median })
        .with_churn(ChurnTrace::new().depart(1, 2).rejoin(2, 2))
        .with_devices(DeviceProfile::linear(8, 1.0, 2.0), 1.9, 0.15);
    let a = scenario::run(&spec, &data).expect("run a");
    let b = scenario::run(&spec, &data).expect("run b");
    assert_eq!(fingerprint(&a), fingerprint(&b), "same spec, same bits");
}

#[test]
fn scenario_is_parallelism_invariant() {
    let data = data();
    let run = |par: Parallelism| {
        let fl = FlConfig::builder()
            .clients(6)
            .rounds(2)
            .hd_dim(512)
            .seed(77)
            .parallelism(par)
            .build()
            .expect("valid config");
        let spec = ScenarioSpec::new(fl)
            .with_attack(AttackKind::Colluding { scale: 4.0 }, 0.34)
            .with_defense(Defense::CoordTrim { trim_ratio: 0.2 })
            .with_churn(ChurnTrace::new().depart(1, 0))
            .with_threshold(3);
        scenario::run(&spec, &data).expect("run")
    };
    let fixed = run(Parallelism::Fixed(1));
    let auto = run(Parallelism::Auto);
    assert_eq!(fingerprint(&fixed), fingerprint(&auto), "Fixed(1) and Auto must agree bit for bit");
}

#[test]
fn churn_and_stragglers_shrink_the_quorum() {
    let data = data();
    let spec = ScenarioSpec::new(base(6, 3, 9))
        .with_churn(ChurnTrace::new().depart(1, 4).rejoin(2, 4))
        // Client 5 (speed 3.0) always misses the 2.7 deadline; the next
        // slowest (2.6) just makes it.
        .with_devices(DeviceProfile::linear(6, 1.0, 3.0), 2.7, 0.0);
    let r = scenario::run(&spec, &data).expect("run");
    assert_eq!(r.rounds[0].participants, 5, "straggler 5 out");
    assert_eq!(r.rounds[1].participants, 4, "straggler 5 and departed 4 out");
    assert_eq!(r.rounds[2].participants, 5, "4 is back, 5 still straggling");
    assert_eq!(r.clients_churned, 2, "one departure + one rejoin");
    assert_eq!(r.stragglers_dropped, 3, "client 5, every round");
    assert!(r.final_accuracy > 0.7, "federation survives churn: {}", r.final_accuracy);
}

#[test]
fn threshold_recovery_survives_keyholder_departure() {
    let data = data();
    let spec = ScenarioSpec::new(base(5, 2, 21))
        .with_churn(ChurnTrace::new().depart(1, 3))
        .with_threshold(3);
    let r = scenario::run(&spec, &data).expect("run");
    assert_eq!(r.threshold_recoveries, 1, "one departure round, one recovery");
    assert_eq!(r.recovery_failures, 0);
    assert!(
        r.recovery_max_err < 0.05,
        "recovered global model must match plaintext: err {}",
        r.recovery_max_err
    );
}

#[test]
fn threshold_recovery_refuses_subthreshold_quorum() {
    // 4 of 5 keyholders depart with k = 3: recovery must take the
    // missing-share error path, not return garbage.
    let data = data();
    let spec = ScenarioSpec::new(base(5, 2, 22))
        .with_churn(ChurnTrace::new().depart(1, 0).depart(1, 1).depart(1, 2).depart(1, 3))
        .with_threshold(3);
    let r = scenario::run(&spec, &data).expect("run");
    assert_eq!(r.threshold_recoveries, 0);
    assert_eq!(r.recovery_failures, 1);
}
