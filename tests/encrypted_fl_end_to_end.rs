//! Cross-crate integration tests: the full Rhychee-FL pipeline from
//! synthetic data through HDC training, CKKS/LWE encryption, homomorphic
//! aggregation, and back.

use rhychee_fl::core::{FlConfig, Framework};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;

fn har_data() -> rhychee_fl::data::TrainTest {
    SyntheticConfig { kind: DatasetKind::Har, train_samples: 360, test_samples: 120 }
        .generate(77)
        .expect("dataset generation")
}

fn config(hd_dim: usize, rounds: usize) -> FlConfig {
    FlConfig::builder().clients(4).rounds(rounds).hd_dim(hd_dim).seed(9).build().expect("valid")
}

#[test]
fn encrypted_pipeline_learns_at_paper_parameters() {
    // The real CKKS-4 parameter set (N = 8192, log Q = 61), not a toy.
    let data = har_data();
    let mut federation =
        Framework::hdc_encrypted(config(512, 3), &data, CkksParams::ckks4()).expect("build");
    let report = federation.run().expect("run");
    assert!(report.final_accuracy > 0.80, "accuracy {}", report.final_accuracy);
    // CKKS-4 packs 4096 slots; 512 x 6 = 3072 params -> 1 ciphertext.
    assert_eq!(federation.upload_bits_per_round(), 2 * 8192 * 61);
}

#[test]
fn encrypted_and_plaintext_agree() {
    // Homomorphic FedAvg must reproduce plaintext FedAvg up to CKKS noise,
    // so the two pipelines track each other round by round.
    let data = har_data();
    let mut plain = Framework::hdc_plaintext(config(384, 3), &data).expect("build");
    let mut enc =
        Framework::hdc_encrypted(config(384, 3), &data, CkksParams::ckks4()).expect("build");
    let rp = plain.run().expect("plain run");
    let re = enc.run().expect("encrypted run");
    for (a, b) in rp.rounds.iter().zip(&re.rounds) {
        assert!(
            (a.accuracy - b.accuracy).abs() < 0.10,
            "round {}: plaintext {} vs encrypted {}",
            a.round,
            a.accuracy,
            b.accuracy
        );
    }
}

#[test]
fn lwe_pipeline_end_to_end() {
    let data = har_data();
    let mut cfg = config(96, 2);
    cfg.clients = 3;
    let params = Framework::lwe_fl_params(3, 6);
    let mut federation = Framework::hdc_encrypted_lwe(cfg, &data, params, 6).expect("build");
    // Per-parameter ciphertexts: 96 x 6 params, each (n+1) log q bits.
    let expected_bits = (96 * 6) as u64 * (534 + 1) * u64::from(params.log_q);
    assert_eq!(federation.upload_bits_per_round(), expected_bits);
    let report = federation.run().expect("run");
    assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
}

#[test]
fn ckks_upload_accounting_matches_table1() {
    // D = 2000, L = 6 (HAR): 12,000 params -> ceil(12000/4096) = 3 cts.
    let data = har_data();
    let federation =
        Framework::hdc_encrypted(config(2000, 1), &data, CkksParams::ckks4()).expect("build");
    assert_eq!(federation.num_parameters(), 12_000);
    assert_eq!(federation.upload_bits_per_round(), 3 * 2 * 8192 * 61);
}

#[test]
fn accuracy_is_stable_across_client_counts() {
    // The paper's Fig. 2 claim in miniature: 2 vs 8 clients end at
    // comparable accuracy.
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 800, test_samples: 200 }
        .generate(5)
        .expect("dataset generation");
    let acc = |clients: usize| {
        let cfg = FlConfig::builder()
            .clients(clients)
            .rounds(5)
            .hd_dim(512)
            .seed(11)
            .build()
            .expect("valid");
        Framework::hdc_plaintext(cfg, &data).expect("build").run().expect("run").final_accuracy
    };
    let few = acc(2);
    let many = acc(8);
    assert!((few - many).abs() < 0.12, "2 clients: {few}, 8 clients: {many}");
}
