//! The tentpole acceptance test for federation-wide distributed tracing
//! (DESIGN.md §12): a networked loopback federation — 1 server, 4 client
//! threads, 3 encrypted CKKS rounds — must produce one merged trace in
//! which every client's `client_round` parents under the correct server
//! `net_round` span, the merged span tree reconciles against both sides'
//! reports to the nanosecond, and a standalone obs server scrapes the
//! round timeline (`/rounds.json`), per-client labeled metrics
//! (`/metrics`) and the drop-counting trace ring (`/trace.json`).
//!
//! Single `#[test]`: the trace ring, the rounds store and the telemetry
//! flag are process-global, so this binary owns the whole process.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::thread;

use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::{FlConfig, Parallelism};
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::net::{
    ClientConfig, ClientPipeline, ClientReport, FlClient, FlServer, ServerConfig, ServerPipeline,
    ServerReport,
};
use rhychee_fl::obs::ObsServer;
use rhychee_fl::telemetry::fedmerge::{self, FedSource};
use rhychee_fl::telemetry::trace::{SpanEvent, TraceWriter};
use rhychee_fl::telemetry::{self, profile};

const CLIENTS: usize = 4;
const ROUNDS: usize = 3;

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect obs");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "GET {path}: {head}");
    body.to_owned()
}

/// Extracts `"field":<digits>` from a JSON fragment.
fn json_u64(fragment: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = fragment.find(&key).unwrap_or_else(|| panic!("{field} missing in {fragment}"));
    fragment[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{field} not a number in {fragment}"))
}

/// The `{...}` object following `"phase":` in the `/rounds.json` body.
fn phase_object<'a>(body: &'a str, phase: &str) -> &'a str {
    let key = format!("\"{phase}\":{{");
    let at = body.find(&key).unwrap_or_else(|| panic!("phase {phase} missing in {body}"));
    let obj = &body[at + key.len()..];
    &obj[..obj.find('}').expect("phase object end")]
}

fn run_federation() -> (ServerReport, Vec<ClientReport>) {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 360, test_samples: 120 }
        .generate(77)
        .expect("dataset generation");
    let fl = FlConfig::builder()
        .clients(CLIENTS)
        .rounds(ROUNDS)
        .hd_dim(256)
        .seed(41)
        .parallelism(Parallelism::Fixed(1))
        .build()
        .expect("valid config");
    let FedSetup { shards, test: _, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let server = FlServer::bind(
        "127.0.0.1:0",
        ServerConfig::builder()
            .clients(CLIENTS)
            .rounds(ROUNDS)
            .model_params(num_params)
            .parallelism(Parallelism::Fixed(1))
            .build()
            .expect("server config"),
        ServerPipeline::Ckks(CkksParams::toy()),
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server = thread::spawn(move || server.run());

    let mut joins = Vec::new();
    for (id, shard) in shards.into_iter().enumerate() {
        let local = ClientLocal::new(id, shard, classes, &fl);
        let client = FlClient::new(
            ClientConfig::new(addr),
            fl.clone(),
            local,
            classes,
            None,
            ClientPipeline::Ckks(CkksParams::toy()),
        )
        .expect("client build");
        joins.push(thread::spawn(move || client.run()));
    }
    let clients: Vec<ClientReport> =
        joins.into_iter().map(|j| j.join().expect("join").expect("client run")).collect();
    let server = server.join().expect("join").expect("server run");
    (server, clients)
}

#[test]
fn federation_trace_merges_propagates_and_reconciles() {
    telemetry::set_enabled(true);
    let (server, clients) = run_federation();
    let events = telemetry::trace::recent_events();

    // --- Cross-process propagation, straight off the span events. ---
    let mut net_rounds: Vec<&SpanEvent> = events.iter().filter(|e| e.name == "net_round").collect();
    net_rounds.sort_by_key(|e| e.start_ns);
    assert_eq!(net_rounds.len(), ROUNDS, "one net_round span per round");
    let round_ids: Vec<u64> = net_rounds.iter().map(|e| e.span_id).collect();
    assert!(round_ids.iter().all(|&id| id != 0), "tracked spans carry ids: {round_ids:?}");
    assert_eq!(
        round_ids.iter().collect::<BTreeSet<_>>().len(),
        ROUNDS,
        "round span ids are distinct"
    );
    let trace_ids_seen: BTreeSet<u128> =
        events.iter().map(|e| e.trace_id).filter(|&t| t != 0).collect();
    assert_eq!(trace_ids_seen.len(), 1, "one federation-wide trace id: {trace_ids_seen:?}");

    for k in 0..CLIENTS {
        let actor = format!("client{k}");
        let mut legs: Vec<&SpanEvent> = events
            .iter()
            .filter(|e| e.name == "client_round" && e.actor.as_deref() == Some(actor.as_str()))
            .collect();
        legs.sort_by_key(|e| e.start_ns);
        assert_eq!(legs.len(), ROUNDS, "{actor} ran every round");
        for (r, leg) in legs.iter().enumerate() {
            assert_eq!(
                leg.remote_parent, round_ids[r],
                "{actor} round {r} must parent under the server's round-{r} span"
            );
            assert!(trace_ids_seen.contains(&leg.trace_id));
        }
    }

    // --- Partition by actor into per-process JSONL traces (exactly what
    // each endpoint would have written with `trace_jsonl`), then merge
    // them back through the same parser + fedmerge path `fed_trace` uses.
    let dir = Path::new("target/test_metrics/fed_trace");
    std::fs::create_dir_all(dir).expect("artifact dir");
    let mut by_actor: BTreeMap<String, Vec<SpanEvent>> = BTreeMap::new();
    for e in &events {
        // Setup-time spans (context building on the test thread, pool
        // workers) carry no actor and belong to no endpoint trace.
        if let Some(actor) = &e.actor {
            by_actor.entry(actor.to_string()).or_default().push(e.clone());
        }
    }
    let expected_actors: BTreeSet<String> = std::iter::once("server".to_owned())
        .chain((0..CLIENTS).map(|k| format!("client{k}")))
        .collect();
    assert_eq!(
        by_actor.keys().cloned().collect::<BTreeSet<_>>(),
        expected_actors,
        "every endpoint labeled its spans"
    );

    let mut sources = Vec::new();
    for label in
        std::iter::once("server".to_owned()).chain((0..CLIENTS).map(|k| format!("client{k}")))
    {
        let path = dir.join(format!("{label}.jsonl"));
        let file = std::fs::File::create(&path).expect("create trace file");
        let mut w = TraceWriter::new(file);
        w.write_events(&by_actor[&label]).expect("write trace");
        w.into_inner().expect("flush trace");
        let text = std::fs::read_to_string(&path).expect("read trace back");
        let records = profile::parse_jsonl_records(&text);
        assert_eq!(records.len(), by_actor[&label].len(), "{label}: lossless JSONL round trip");
        sources.push(FedSource::new(label, records));
    }
    assert_eq!(fedmerge::trace_ids(&sources).len(), 1);

    // --- Nanosecond reconciliation of the merged tree against both
    // sides' reports (populated from the very same span measurements).
    let tree = fedmerge::merge(&sources);
    for (k, c) in clients.iter().enumerate() {
        let leg = format!("server/net_round/client{k}/client_round");
        let leg_node = tree.get(&leg).unwrap_or_else(|| panic!("{leg} missing from merged tree"));
        assert_eq!(leg_node.count, ROUNDS as u64);
        for (phase, expected) in
            [("local_train", c.train_time), ("encrypt", c.encrypt_time), ("upload", c.upload_time)]
        {
            let path = format!("{leg}/{phase}");
            let node = tree.get(&path).unwrap_or_else(|| panic!("{path} missing"));
            assert_eq!(
                node.total_ns,
                expected.as_nanos() as u64,
                "client {k} {phase}: merged total must equal the report to the ns"
            );
        }
        let decrypt = format!("server/net_round/client{k}/decrypt");
        let node = tree.get(&decrypt).unwrap_or_else(|| panic!("{decrypt} missing"));
        assert_eq!(node.total_ns, c.decrypt_time.as_nanos() as u64, "client {k} decrypt");
    }
    let agg = tree.get("server/net_round/net_aggregate").expect("aggregate node");
    let report_agg: u64 = server.rounds.iter().map(|r| r.aggregate_time.as_nanos() as u64).sum();
    assert_eq!(agg.total_ns, report_agg, "server aggregate reconciles to the ns");
    assert!(tree.get("server/net_round/broadcast").is_some(), "handler broadcasts graft in");

    // Flamegraph artifact for CI (the fed_trace bin regenerates it from
    // the JSONL files; this one proves the library path works too).
    std::fs::write(dir.join("federation.folded.txt"), tree.folded()).expect("folded artifact");

    // --- Scrape the observability plane over real HTTP. ---
    let obs = ObsServer::bind("127.0.0.1:0").expect("obs bind").spawn().expect("obs spawn");
    let rounds_body = http_get(obs.addr(), "/rounds.json");
    std::fs::write(dir.join("rounds.json"), &rounds_body).expect("rounds artifact");
    assert_eq!(
        rounds_body.matches("\"round\":").count(),
        ROUNDS,
        "one timeline record per round: {rounds_body}"
    );
    assert_eq!(
        rounds_body.matches("\"offset_ns\":").count(),
        ROUNDS * CLIENTS,
        "every client arrival has an offset: {rounds_body}"
    );
    for chunk in rounds_body.split("\"offset_ns\":").skip(1) {
        assert!(json_u64(&format!("\"o\":{chunk}"), "o") > 0, "arrival offsets are positive");
    }
    assert!(!rounds_body.contains("\"quorum_ns\":null"), "every round met quorum: {rounds_body}");
    assert!(rounds_body.matches("\"stragglers\":0").count() == ROUNDS, "{rounds_body}");
    for phase in ["broadcast", "local_train", "encrypt", "upload", "aggregate", "decrypt"] {
        let obj = phase_object(&rounds_body, phase);
        let (count, p50, p95, p99) = (
            json_u64(obj, "count"),
            json_u64(obj, "p50"),
            json_u64(obj, "p95"),
            json_u64(obj, "p99"),
        );
        assert!(count > 0, "{phase} histogram is live: {obj}");
        assert!(p50 <= p95 && p95 <= p99, "{phase} quantiles ordered: {obj}");
        assert!(p99 > 0, "{phase} p99 nonzero: {obj}");
    }

    let metrics_body = http_get(obs.addr(), "/metrics");
    for k in 0..CLIENTS {
        assert!(
            metrics_body
                .contains(&format!("rhychee_net_client_upload_bytes_total{{client_id=\"{k}\"}}")),
            "per-client upload bytes for {k}:\n{metrics_body}"
        );
        assert!(
            metrics_body.contains(&format!("rhychee_net_client_rtt_ns_count{{client_id=\"{k}\"}}")),
            "per-client RTT histogram for {k}:\n{metrics_body}"
        );
        assert!(
            metrics_body
                .contains(&format!("rhychee_net_client_encrypt_ns_count{{client_id=\"{k}\"}}")),
            "per-client encrypt time for {k}:\n{metrics_body}"
        );
    }
    assert!(metrics_body.contains("rhychee_fl_phase_encrypt_ns_count"), "{metrics_body}");
    assert_eq!(
        metrics_body.matches("# TYPE rhychee_net_client_upload_bytes_total counter").count(),
        1,
        "one TYPE line per labeled family"
    );

    let trace_body = http_get(obs.addr(), "/trace.json");
    assert!(trace_body.starts_with("{\"dropped\":"), "{trace_body}");

    let health_body = http_get(obs.addr(), "/healthz");
    assert!(health_body.contains("\"status\":\"ok\""), "{health_body}");

    // Sanity on the run itself: all clients agreed and every round
    // aggregated all four updates.
    assert_eq!(server.rounds.len(), ROUNDS);
    assert!(server.rounds.iter().all(|r| r.received == CLIENTS && r.rejected == 0));
    for c in &clients {
        assert_eq!(c.rounds_participated, ROUNDS);
        assert_eq!(c.final_model, clients[0].final_model);
    }
}
