//! Loopback scrape smoke test for the live observability plane: an
//! [`FlServer`] bound with `obs_addr` must serve `/metrics`, `/healthz`
//! and `/trace.json` *while* a federation is running, and the metrics
//! body must be valid Prometheus text exposition carrying the round
//! gauge, a counter, and a full histogram family.
//!
//! Single test on purpose: it flips the process-global telemetry state
//! (enabled flag, registry), which cannot be shared with other tests in
//! the same binary.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use rhychee_fl::core::round::{self, ClientLocal, FedSetup};
use rhychee_fl::core::FlConfig;
use rhychee_fl::data::{DatasetKind, SyntheticConfig};
use rhychee_fl::fhe::params::CkksParams;
use rhychee_fl::net::{
    ClientConfig, ClientPipeline, FlClient, FlServer, ServerConfig, ServerPipeline,
};

fn http_get(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (head, body) = response.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_owned())
}

/// Validates the exposition grammar: every sample line is
/// `series[{labels}] value`, every comment is a `# TYPE` we emit.
fn assert_valid_exposition(text: &str) {
    assert!(!text.is_empty(), "empty exposition");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let kind = rest.split(' ').nth(1).expect("type line has a kind");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "bad type: {line}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line must be `series value`: {line:?}");
        });
        assert!(series.starts_with("rhychee_"), "unprefixed series: {line}");
        let parses = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
        assert!(parses, "unparseable value in {line:?}");
    }
}

/// The value of an unlabeled series, if present.
fn sample(text: &str, series: &str) -> Option<f64> {
    let prefix = format!("{series} ");
    text.lines().find_map(|l| l.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
}

#[test]
fn metrics_scrape_during_live_federation() {
    let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 240, test_samples: 80 }
        .generate(41)
        .expect("dataset");
    // CKKS pipeline with a real model size: rounds must take long enough
    // on a 1-core runner that loopback scrapes land mid-federation.
    let fl = FlConfig::builder().clients(3).rounds(6).hd_dim(512).seed(9).build().expect("config");
    let FedSetup { shards, test, classes } = round::prepare(&fl, &data).expect("prepare");
    let num_params = classes * fl.hd_dim;

    let server = FlServer::bind(
        "127.0.0.1:0",
        ServerConfig::builder()
            .clients(fl.clients)
            .rounds(fl.rounds)
            .model_params(num_params)
            .obs_addr("127.0.0.1:0")
            .build()
            .expect("server config"),
        ServerPipeline::Ckks(CkksParams::toy()),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let obs = server.obs_addr().expect("obs enabled at bind time");

    // The plane is already up before run(): handshake state is visible.
    let pre = http_get(obs, "/metrics").expect("scrape before run");
    assert_valid_exposition(&pre);
    assert_eq!(sample(&pre, "rhychee_fl_round_current"), Some(0.0), "0 = handshaking");

    let server_thread = thread::spawn(move || server.run());
    let clients: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(id, shard)| {
            let local = ClientLocal::new(id, shard, classes, &fl);
            let eval = (id == 0).then(|| test.clone());
            let client = FlClient::new(
                ClientConfig::new(addr),
                fl.clone(),
                local,
                classes,
                eval,
                ClientPipeline::Ckks(CkksParams::toy()),
            )
            .expect("client");
            thread::spawn(move || client.run())
        })
        .collect();

    // Scrape continuously while the federation runs; keep the last body
    // captured with a live round in flight. The obs server dies with
    // run(), so every capture below happened during the live run.
    let mut live_metrics: Option<String> = None;
    let mut live_health: Option<String> = None;
    while !server_thread.is_finished() {
        if let Some(body) = http_get(obs, "/metrics") {
            let round_live = sample(&body, "rhychee_fl_round_current").is_some_and(|v| v >= 1.0);
            // Span histograms appear once the first spans close (e.g.
            // `net_decode` during the first collection window); only
            // bodies carrying a full family satisfy the assertions below.
            if round_live && body.contains("_bucket{le=") {
                live_metrics = Some(body);
                if live_health.is_none() {
                    live_health = http_get(obs, "/healthz");
                }
            }
        }
        // No sleep: each scrape already waits on the obs accept poll, so
        // the loop is naturally paced and maximizes mid-round captures.
    }
    server_thread.join().expect("server thread").expect("server run");
    for c in clients {
        c.join().expect("client thread").expect("client run");
    }

    let metrics = live_metrics.expect("at least one scrape landed during a live round");
    assert_valid_exposition(&metrics);

    // One gauge (the round in flight), one counter, one histogram family
    // with cumulative buckets, sum and count.
    let current = sample(&metrics, "rhychee_fl_round_current").expect("round gauge");
    assert!((1.0..=fl.rounds as f64).contains(&current), "round in flight: {current}");
    assert!(metrics.contains("# TYPE rhychee_fl_round_current gauge"));
    assert!(
        sample(&metrics, "rhychee_net_bytes_rx_total").is_some_and(|v| v > 0.0),
        "bytes counter grows during the run"
    );
    let family = metrics
        .lines()
        .find_map(|l| l.split_once("_bucket{le=").map(|(name, _)| name.to_owned()))
        .expect("a histogram family was captured");
    assert!(metrics.contains(&format!("# TYPE {family} histogram")), "{family} TYPE line");
    assert!(metrics.contains(&format!("{family}_bucket{{le=\"+Inf\"}}")), "+Inf bucket");
    assert!(sample(&metrics, &format!("{family}_sum")).is_some(), "_sum series");
    assert!(
        sample(&metrics, &format!("{family}_count")).is_some_and(|v| v >= 1.0),
        "_count series"
    );

    let health = live_health.expect("healthz scrape during the run");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"round\":"), "{health}");
    assert!(health.contains("\"clients_connected\":3"), "{health}");
}
