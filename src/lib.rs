//! # Rhychee-FL
//!
//! Umbrella crate for the Rhychee-FL reproduction: robust and efficient
//! hyperdimensional federated learning with homomorphic encryption
//! (DATE 2025).
//!
//! This crate re-exports the public API of every subsystem so examples and
//! downstream users can depend on a single crate:
//!
//! * [`bigint`] — arbitrary-precision integers (Paillier substrate)
//! * [`fhe`] — CKKS, TFHE-style LWE and Paillier homomorphic encryption
//! * [`hdc`] — hyperdimensional computing encoders and classifiers
//! * [`nn`] — the CNN / MLP / logistic-regression baselines
//! * [`data`] — synthetic MNIST/HAR datasets and non-IID partitioning
//! * [`channel`] — noisy-communication models (CRC, BER, 5G latency)
//! * [`core`] — the Rhychee-FL federated-learning framework itself
//! * [`net`] — the networked runtime: TCP client/server FL rounds over
//!   a CRC-guarded encrypted wire protocol (DESIGN.md §8)
//! * [`obs`] — the live observability plane: Prometheus `/metrics`,
//!   `/healthz` and `/trace.json` over hand-rolled HTTP (DESIGN.md §10)
//! * [`par`] — the scoped thread pool behind the unified `Parallelism`
//!   knob (DESIGN.md §9)
//! * [`telemetry`] — tracing spans and metrics over the round loop and
//!   FHE hot paths (disabled by default; see DESIGN.md §7)
//!
//! # Quickstart
//!
//! ```
//! use rhychee_fl::core::{FlConfig, Framework};
//! use rhychee_fl::data::{DatasetKind, SyntheticConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SyntheticConfig::small(DatasetKind::Mnist).generate(7)?;
//! let config = FlConfig::builder()
//!     .clients(4)
//!     .rounds(2)
//!     .hd_dim(512)
//!     .seed(7)
//!     .build()?;
//! let mut fw = Framework::hdc_plaintext(config, &data)?;
//! let report = fw.run()?;
//! assert!(report.final_accuracy > 0.5);
//! # Ok(())
//! # }
//! ```

pub use rhychee_bigint as bigint;
pub use rhychee_channel as channel;
pub use rhychee_core as core;
pub use rhychee_data as data;
pub use rhychee_fhe as fhe;
pub use rhychee_hdc as hdc;
pub use rhychee_net as net;
pub use rhychee_nn as nn;
pub use rhychee_obs as obs;
pub use rhychee_par as par;
pub use rhychee_scenario as scenario;
pub use rhychee_telemetry as telemetry;
