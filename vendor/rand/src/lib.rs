//! Offline stand-in for the `rand` crate (see DESIGN.md §5: vendored
//! shims).
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* — `RngCore`, `SeedableRng`,
//! the `Rng` extension trait (`gen`, `gen_range`, `gen_bool`, `fill`),
//! and `rngs::StdRng` — backed by xoshiro256++ seeded through SplitMix64.
//! The generator is deterministic per seed and statistically strong for
//! simulation purposes; it is **not** the ChaCha12 generator of upstream
//! `rand 0.8`, so seeded streams differ from upstream (nothing in this
//! repo depends on the exact upstream stream).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core source-of-randomness trait, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand`'s default implementation.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = sm.next().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&b[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types producible uniformly at random by [`Rng::gen`] (the shim's
/// analogue of `Distribution<T> for Standard`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching upstream's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types drawable uniformly from a range by [`Rng::gen_range`].
pub trait UniformSample: Sized + PartialOrd + Copy {
    /// Draws from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                // Widening-multiply range reduction; the bias over a u64
                // source is < 2^-64 per draw, immaterial for simulation.
                let offset = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full u64/i64 domain: every bit pattern is valid.
                    return <$t as StandardSample>::sample(rng);
                }
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as u64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let u = <$t as StandardSample>::sample(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to `hi` at the top of the range.
                if v < hi { v } else { <$t>::max(lo, <$t>::min(v, hi - (hi - lo) * <$t>::EPSILON)) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let u = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over any [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        <f64 as StandardSample>::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: in-place shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    ///
    /// Not the ChaCha12 of upstream `rand 0.8` — streams differ from
    /// upstream for identical seeds (see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro requires a nonzero state.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 0x94d0_49bb_1331_11eb, 1];
            }
            StdRng { s }
        }
    }

    /// Alias of [`StdRng`]: one generator serves both roles in the shim.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&f));
            let i = rng.gen_range(-3i8..=3);
            assert!((-3..=3).contains(&i));
            let x = rng.gen_range(0.85f32..=1.0);
            assert!((0.85..=1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_full_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all 10 buckets hit: {seen:?}");
    }

    #[test]
    fn standard_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
            let w: f32 = rng.gen();
            assert!((0.0..1.0).contains(&w));
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean ≈ 0.5, got {mean}");
    }

    #[test]
    fn fill_bytes_handles_unaligned_tails() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 11]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_100..2_900).contains(&hits), "≈2500 expected, got {hits}");
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(19);
        // Must not overflow or panic.
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
