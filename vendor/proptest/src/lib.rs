//! Offline stand-in for the `proptest` crate (see DESIGN.md §5: vendored
//! shims).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! `any::<T>()` strategies, `prop::collection::vec`,
//! `prop::sample::Index`, `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! per-test seed; there is **no shrinking** — a failure reports the case
//! number and the failed assertion instead of a minimized input.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Runner configuration and error types (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// How a single generated case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An explicit `prop_assert*` failure.
        Fail(String),
        /// The case was rejected by `prop_assume!` and should be skipped.
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "assertion failed: {msg}"),
                TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
            }
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A source of test values (the shim keeps only generation, no shrink
/// tree).
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_prim {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_prim!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64);

/// Strategy for any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Sub-modules namespaced as `prop::…` in the prelude.
pub mod strategy_mods {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Strategy producing `Vec`s of values from `element`, with a
        /// length drawn from `size` (a `usize` or a range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, StdRng};
        use rand::Rng as _;

        /// An index into a collection whose length is unknown at
        /// generation time; resolve with [`Index::index`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(pub(crate) usize);

        impl Index {
            /// Maps this abstract index onto a collection of `len`
            /// elements.
            ///
            /// # Panics
            ///
            /// Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut StdRng) -> Self {
                Index(rng.gen_range(0..usize::MAX))
            }
        }
    }
}

/// A vector length specification: fixed or ranged.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: r.end() + 1 }
    }
}

/// Strategy returned by [`strategy_mods::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Derives a deterministic per-test seed from the test's module path and
/// name, so failures reproduce across runs without an env-var protocol.
pub fn seed_for(test_path: &str) -> u64 {
    // FNV-1a, good enough for seed spreading.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: generates cases, skips rejections, panics
/// on the first failure. Called from [`proptest!`] expansions.
pub fn run_cases(
    test_path: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    let seed = seed_for(test_path);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut executed = 0u32;
    let mut attempts = 0u32;
    // Mirror proptest's global rejection cap so a too-strict
    // `prop_assume!` fails loudly instead of looping forever.
    let max_attempts = config.cases.saturating_mul(16).max(1024);
    while executed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{test_path}: too many rejected inputs ({attempts} attempts for \
             {executed}/{} cases)",
            config.cases
        );
        // Decorrelate cases while keeping the whole run a pure function
        // of the test path.
        let mut case_rng = StdRng::seed_from_u64(seed ^ rng.next_u64());
        match case(&mut case_rng) {
            Ok(()) => executed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {}
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("{test_path}: case {executed} (seed {seed:#x}) failed: {msg}");
            }
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy_mods as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("prop_assert!({})", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "prop_assert_eq!({}, {}): {:?} != {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "prop_assert_ne!({}, {}): both {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l
                ),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(::std::stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests. Supports the upstream surface this workspace
/// uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(a in strategy_a(), b in 0u64..100) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(
                ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                &config,
                |__proptest_rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let xs = prop::collection::vec(-1.0f64..1.0, 3..7).new_value(&mut rng);
            assert!((3..7).contains(&xs.len()));
            assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
            let fixed = prop::collection::vec(any::<u8>(), 8).new_value(&mut rng);
            assert_eq!(fixed.len(), 8);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = StdRng::seed_from_u64(2);
        let doubled = (1u32..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(doubled.new_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn index_resolves_within_len() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let idx = any::<prop::sample::Index>().new_value(&mut rng);
            assert!(idx.index(17) < 17);
        }
    }

    #[test]
    fn seeds_differ_by_test_path() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_roundtrip(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 1000 && b < 1000);
        }

        #[test]
        fn macro_assume_skips(n in 0u32..100) {
            prop_assume!(n >= 50);
            prop_assert!(n >= 50, "assume should have filtered n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::run_cases("shim::failing", &ProptestConfig::with_cases(8), |rng| {
            let v = Strategy::new_value(&(0u32..10), rng);
            prop_assert!(v >= 10, "v={v} is below 10");
            Ok(())
        });
    }
}
