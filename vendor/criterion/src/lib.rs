//! Offline stand-in for the `criterion` crate (see DESIGN.md §5:
//! vendored shims).
//!
//! Provides the API subset the workspace's benches use — benchmark
//! groups, `BenchmarkId`, `Throughput`, `iter`/`iter_batched` — backed
//! by a simple median-of-samples timing loop instead of criterion's
//! statistical machinery. Good enough to compare orders of magnitude
//! under `cargo bench`; the real measurement path for the paper's tables
//! is the experiment binaries in `rhychee-bench`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-unit annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost (accepted and ignored: the
/// shim always re-runs setup per batch of one).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        let name = function_name.into();
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

/// Conversion into [`BenchmarkId`] (lets `bench_function` accept both
/// `&str` and `BenchmarkId`).
pub trait IntoBenchmarkId {
    /// The resolved id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_owned() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The timing driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its median sample.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        let median = bencher.median();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  ({:.1} MiB/s)", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}: median {}{}", self.name, id.id, format_duration(median), rate);
        self
    }

    /// Ends the group (matches the upstream API; nothing to flush here).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, throughput: None, _parent: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("count_runs", 1), |b| {
            b.iter(|| runs += 1);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
