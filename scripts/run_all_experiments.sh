#!/usr/bin/env bash
# Regenerates every table and figure from the paper plus the extension
# ablations. Full sweeps take tens of minutes on one core; pass --quick
# to forward the reduced profile to the training-based binaries.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

# Each binary also drops a telemetry trace (spans + counters/histograms)
# as JSONL into $RHYCHEE_METRICS_DIR; collect them under target/metrics.
export RHYCHEE_METRICS_DIR="${RHYCHEE_METRICS_DIR:-target/metrics}"
mkdir -p "$RHYCHEE_METRICS_DIR"

QUICK="${1:-}"

analytic=(table1_comm_formulas table3_param_sets fig4_comm_overhead fig5_channel)
training=(fig2_accuracy_sweep fig3_convergence table2_sota_comparison \
          noise_robustness ablation_scale_factor ablation_aggregation \
          latency_breakdown noise_fragility)

for bin in "${analytic[@]}"; do
  echo "=== $bin ==="
  cargo run --release -p rhychee-bench --bin "$bin" | tee "results/$bin.txt"
done

for bin in "${training[@]}"; do
  echo "=== $bin $QUICK ==="
  cargo run --release -p rhychee-bench --bin "$bin" -- $QUICK | tee "results/$bin.txt"
done

echo "All experiment outputs written to results/."
echo "Telemetry traces written to $RHYCHEE_METRICS_DIR/."
