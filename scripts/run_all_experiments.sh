#!/usr/bin/env bash
# Regenerates every table and figure from the paper plus the extension
# ablations. Full sweeps take tens of minutes on one core; pass --quick
# to forward the reduced profile to the training-based binaries.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

# Each binary also drops a telemetry trace (spans + counters/histograms)
# as JSONL into $RHYCHEE_METRICS_DIR; collect them under target/metrics.
export RHYCHEE_METRICS_DIR="${RHYCHEE_METRICS_DIR:-target/metrics}"
mkdir -p "$RHYCHEE_METRICS_DIR"

QUICK="${1:-}"

analytic=(table1_comm_formulas table3_param_sets fig4_comm_overhead fig5_channel)
training=(fig2_accuracy_sweep fig3_convergence table2_sota_comparison \
          noise_robustness ablation_scale_factor ablation_aggregation \
          latency_breakdown noise_fragility)

for bin in "${analytic[@]}"; do
  echo "=== $bin ==="
  cargo run --release -p rhychee-bench --bin "$bin" | tee "results/$bin.txt"
done

for bin in "${training[@]}"; do
  echo "=== $bin $QUICK ==="
  cargo run --release -p rhychee-bench --bin "$bin" -- $QUICK | tee "results/$bin.txt"
done

# Networked deployment demo: a real TCP federation over loopback with
# measured (not modeled) wire traffic. Tolerated failure would mean a
# sandbox without loopback networking; everything above still stands.
echo "=== networked_fl (loopback TCP) ==="
if cargo run --release --example networked_fl | tee results/networked_fl.txt; then
  echo "networked_fl ok"
else
  echo "networked_fl skipped (no loopback networking available)" | tee results/networked_fl.txt
fi

echo "All experiment outputs written to results/."
echo "Telemetry traces written to $RHYCHEE_METRICS_DIR/."
