//! End-to-end encrypted federated learning over a noisy channel
//! (paper §V-E).
//!
//! Every ciphertext is serialized, packetized, pushed through a
//! bit-flipping channel with detect-and-retransmit, and reassembled at
//! the other side. With CRC-32 the global model converges exactly as on
//! a clean link (undetected errors are ~1-in-3×10⁹ transmissions); with
//! detection disabled, corrupted ciphertexts decrypt to garbage and can
//! stall convergence — the failure mode the paper's analytical model
//! quantifies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rhychee_telemetry as telemetry;

use rhychee_channel::crc::Detector;
use rhychee_channel::packet::{BitFlipChannel, PacketLink, TransferStats, PACKET_BITS};
use rhychee_data::TrainTest;
use rhychee_fhe::ckks::{CkksContext, CkksPublicKey, CkksSecretKey};
use rhychee_fhe::params::CkksParams;
use rhychee_hdc::model::{EncodedDataset, HdcModel};

use rhychee_data::partition::dirichlet_partition_indices;
use rhychee_hdc::encoding::{Encoder, RandomProjectionEncoder, RbfEncoder};

use crate::config::{EncoderKind, FlConfig};
use crate::error::FlError;
use crate::framework::{RoundReport, RunReport};
use crate::packing;

/// Channel configuration for a noisy federated run.
#[derive(Debug, Clone, Copy)]
pub struct NoisyChannelConfig {
    /// Bit error rate of the link (paper: 1e-3).
    pub ber: f64,
    /// Error-detection code, or `None` to deliver corrupted packets
    /// unchecked (ablation of §V-E).
    pub detector: Option<Detector>,
    /// Packet size in bits.
    pub packet_bits: usize,
}

impl Default for NoisyChannelConfig {
    fn default() -> Self {
        NoisyChannelConfig { ber: 1e-3, detector: Some(Detector::Crc32), packet_bits: PACKET_BITS }
    }
}

/// Aggregate channel statistics for a noisy run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelStats {
    /// Packets sent (first transmissions).
    pub packets: usize,
    /// Total transmissions including retransmissions.
    pub transmissions: usize,
    /// Retransmissions caused by detected errors.
    pub retransmissions: usize,
    /// Packets delivered with undetected corruption.
    pub undetected_errors: usize,
    /// Ciphertexts that failed to deserialize and were dropped
    /// (the sender's copy was reused, modeling an application-layer NACK).
    pub dropped_ciphertexts: usize,
}

impl ChannelStats {
    fn absorb(&mut self, s: TransferStats) {
        self.packets += s.packets;
        self.transmissions += s.transmissions;
        self.retransmissions += s.retransmissions;
        self.undetected_errors += s.undetected_errors;
    }
}

/// Encrypted HDC federated learning where every model transfer crosses a
/// noisy packet link.
///
/// # Examples
///
/// ```no_run
/// use rhychee_core::{FlConfig, NoisyChannelConfig, NoisyFederation};
/// use rhychee_data::{DatasetKind, SyntheticConfig};
/// use rhychee_fhe::params::CkksParams;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = SyntheticConfig::small(DatasetKind::Har).generate(1)?;
/// let config = FlConfig::builder().clients(4).rounds(3).hd_dim(256).build()?;
/// let mut fed = NoisyFederation::new(
///     config,
///     &data,
///     CkksParams::toy(),
///     NoisyChannelConfig::default(),
/// )?;
/// let (report, stats) = fed.run()?;
/// println!("accuracy {:.3}, retransmissions {}", report.final_accuracy, stats.retransmissions);
/// # Ok(())
/// # }
/// ```
pub struct NoisyFederation {
    config: FlConfig,
    channel: NoisyChannelConfig,
    ctx: CkksContext,
    sk: CkksSecretKey,
    pk: CkksPublicKey,
    clients: Vec<(EncodedDataset, HdcModel)>,
    test: EncodedDataset,
    global: Vec<f32>,
    classes: usize,
    rng: StdRng,
    stats: ChannelStats,
    next_round: usize,
}

impl NoisyFederation {
    /// Builds the noisy encrypted federation.
    ///
    /// # Errors
    ///
    /// Returns [`FlError`] on invalid configuration or parameters.
    pub fn new(
        config: FlConfig,
        data: &TrainTest,
        params: CkksParams,
        channel: NoisyChannelConfig,
    ) -> Result<Self, FlError> {
        config.validate()?;
        if data.train.len() < config.clients {
            return Err(FlError::DataError("fewer training samples than clients".into()));
        }
        let ctx = CkksContext::with_parallelism(params, config.parallelism)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (sk, pk) = ctx.generate_keys(&mut rng);

        let classes = data.train.num_classes();
        let feature_dim = data.train.feature_dim();
        let use_rbf = match config.encoder {
            EncoderKind::Rbf => true,
            EncoderKind::RandomProjection => false,
            EncoderKind::Auto => feature_dim == 784,
        };
        let (train_hv, test_hv) = if use_rbf {
            let enc = RbfEncoder::new(feature_dim, config.hd_dim, &mut rng);
            (
                enc.encode_batch(data.train.features(), config.parallelism),
                enc.encode_batch(data.test.features(), config.parallelism),
            )
        } else {
            let enc = RandomProjectionEncoder::new(feature_dim, config.hd_dim, &mut rng);
            (
                enc.encode_batch(data.train.features(), config.parallelism),
                enc.encode_batch(data.test.features(), config.parallelism),
            )
        };
        let test = EncodedDataset::new(test_hv, data.test.labels().to_vec());
        let clients = dirichlet_partition_indices(
            data.train.labels(),
            classes,
            config.clients,
            config.dirichlet_alpha,
            &mut rng,
        )
        .into_iter()
        .map(|idx| {
            let hvs = idx.iter().map(|&i| train_hv[i].clone()).collect();
            let labels = idx.iter().map(|&i| data.train.labels()[i]).collect();
            (EncodedDataset::new(hvs, labels), HdcModel::new(classes, config.hd_dim))
        })
        .collect();

        let global = vec![0.0f32; classes * config.hd_dim];
        Ok(NoisyFederation {
            config,
            channel,
            ctx,
            sk,
            pk,
            clients,
            test,
            global,
            classes,
            rng,
            stats: ChannelStats::default(),
            next_round: 0,
        })
    }

    /// Accuracy of the current global model.
    pub fn global_accuracy(&self) -> f64 {
        HdcModel::from_flat(&self.global, self.classes, self.config.hd_dim).accuracy(&self.test)
    }

    /// Accumulated channel statistics.
    pub fn channel_stats(&self) -> ChannelStats {
        self.stats
    }

    /// Sends serialized bytes across the noisy link (detect-and-
    /// retransmit when a detector is configured, raw corruption
    /// otherwise).
    fn send(&mut self, bytes: &[u8]) -> Vec<u8> {
        let _span = telemetry::span("channel_tx");
        match self.channel.detector {
            Some(det) => {
                let link = PacketLink::new(
                    BitFlipChannel::new(self.channel.ber),
                    det,
                    self.channel.packet_bits,
                );
                let (out, stats) = link.transfer(bytes, &mut self.rng);
                self.stats.absorb(stats);
                out
            }
            None => {
                let ch = BitFlipChannel::new(self.channel.ber);
                let (out, _) = ch.transmit(bytes, &mut self.rng);
                let n_packets = bytes.len().div_ceil(self.channel.packet_bits / 8);
                self.stats.packets += n_packets;
                self.stats.transmissions += n_packets;
                out
            }
        }
    }

    /// Sends one ciphertext across the link, returning what the receiver
    /// reconstructs.
    ///
    /// Payload corruption propagates into the crypto layer (it decrypts
    /// to garbage). Corruption of the small metadata header (levels /
    /// scale), which a real transport carries in its own checksummed
    /// header, is treated as an application-layer NACK: the transfer is
    /// counted as dropped and the sender's copy is reused.
    fn send_ciphertext(
        &mut self,
        ct: &rhychee_fhe::ckks::CkksCiphertext,
    ) -> rhychee_fhe::ckks::CkksCiphertext {
        let bytes = self.ctx.serialize(ct);
        let delivered = self.send(&bytes);
        match self.ctx.deserialize(&delivered) {
            Ok(received) => {
                let scale_ok = (received.scale() - ct.scale()).abs() <= ct.scale() * 1e-9;
                if received.levels() == ct.levels() && scale_ok {
                    return received;
                }
                self.stats.dropped_ciphertexts += 1;
                ct.clone()
            }
            Err(_) => {
                self.stats.dropped_ciphertexts += 1;
                ct.clone()
            }
        }
    }

    /// One aggregation round with every ciphertext crossing the channel.
    ///
    /// # Errors
    ///
    /// Propagates FHE failures.
    pub fn run_round(&mut self) -> Result<RoundReport, FlError> {
        let round = self.next_round;
        self.next_round += 1;
        let round_span = telemetry::span("round");

        // Local training (first round starts from the OnlineHD bundling
        // pass, as in the main Framework).
        let train_span = telemetry::span("local_train");
        let global = self.global.clone();
        let first_round = global.iter().all(|&v| v == 0.0);
        let mut local_models = Vec::with_capacity(self.clients.len());
        for (data, model) in &mut self.clients {
            model.load_flat(&global);
            if first_round {
                model.bundle(data);
            }
            for _ in 0..self.config.local_epochs {
                model.train_epoch(data, self.config.lr);
            }
            let mut out = model.clone();
            if self.config.normalize {
                out.normalize();
            }
            local_models.push(out.flatten());
        }
        let train_time = train_span.finish();

        // Upload: encrypt, serialize, transmit, deserialize at the
        // server. Encryption gets its own span per client so its time is
        // separable from the interleaved channel transfers.
        let mut encrypt_time = std::time::Duration::ZERO;
        let mut received: Vec<Vec<rhychee_fhe::ckks::CkksCiphertext>> = Vec::new();
        for flat in &local_models {
            let span = telemetry::span("encrypt");
            let cts = packing::encrypt_model(&self.ctx, &self.pk, flat, &mut self.rng)?;
            encrypt_time += span.finish();
            let mut client_cts = Vec::with_capacity(cts.len());
            for ct in &cts {
                let received_ct = self.send_ciphertext(ct);
                client_cts.push(received_ct);
            }
            received.push(client_cts);
        }

        // Homomorphic aggregation on the (possibly corrupted) uploads.
        let aggregate_span = telemetry::span("aggregate");
        let global_cts = packing::homomorphic_average(&self.ctx, &received)?;
        let aggregate_time = aggregate_span.finish();

        // Download: the encrypted global model crosses the channel once
        // per client; one representative client's copy becomes the new
        // global state (all clients share the key and the same payload).
        let mut downloaded = Vec::with_capacity(global_cts.len());
        for ct in &global_cts {
            let bytes = self.ctx.serialize(ct);
            // Model the per-client downloads for the statistics.
            for _ in 1..self.config.clients {
                let _ = self.send(&bytes);
            }
            downloaded.push(self.send_ciphertext(ct));
        }
        let decrypt_span = telemetry::span("decrypt");
        self.global = packing::decrypt_model(&self.ctx, &self.sk, &downloaded, self.global.len())?;
        let decrypt_time = decrypt_span.finish();

        let payload_bits = (self.ctx.serialize(&global_cts[0]).len() * 8 * global_cts.len()) as u64;
        round_span.finish();
        Ok(RoundReport {
            round,
            participants: self.config.clients,
            accuracy: self.global_accuracy(),
            upload_bits_per_client: payload_bits,
            download_bits_per_client: payload_bits,
            train_time,
            encrypt_time,
            aggregate_time,
            decrypt_time,
        })
    }

    /// Runs all rounds; returns the run report and channel statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first failing round.
    pub fn run(&mut self) -> Result<(RunReport, ChannelStats), FlError> {
        let mut report = RunReport::default();
        for _ in 0..self.config.rounds {
            report.rounds.push(self.run_round()?);
        }
        report.final_accuracy = report.rounds.last().map_or(0.0, |r| r.accuracy);
        Ok((report, self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhychee_data::{DatasetKind, SyntheticConfig};

    fn data() -> TrainTest {
        SyntheticConfig { kind: DatasetKind::Har, train_samples: 240, test_samples: 90 }
            .generate(21)
            .expect("generate")
    }

    fn config(rounds: usize) -> FlConfig {
        FlConfig::builder().clients(3).rounds(rounds).hd_dim(512).seed(4).build().expect("valid")
    }

    #[test]
    fn converges_over_noisy_channel_with_crc() {
        let mut fed = NoisyFederation::new(
            config(3),
            &data(),
            CkksParams::toy(),
            NoisyChannelConfig { ber: 1e-4, ..Default::default() },
        )
        .expect("build");
        let (report, stats) = fed.run().expect("run");
        assert!(report.final_accuracy > 0.7, "accuracy {}", report.final_accuracy);
        assert!(stats.retransmissions > 0, "noise must trigger retransmissions");
        assert_eq!(stats.undetected_errors, 0, "CRC-32 should catch everything at this scale");
    }

    #[test]
    fn clean_channel_needs_no_retransmissions() {
        let mut fed = NoisyFederation::new(
            config(2),
            &data(),
            CkksParams::toy(),
            NoisyChannelConfig { ber: 0.0, ..Default::default() },
        )
        .expect("build");
        let (report, stats) = fed.run().expect("run");
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.undetected_errors, 0);
        assert!(report.final_accuracy > 0.7);
    }

    #[test]
    fn unprotected_channel_corrupts_the_model() {
        // Without error detection at a harsh BER, ciphertext corruption
        // reaches the aggregate and destroys accuracy (paper §IV-C:
        // "a single bit error can disrupt model convergence").
        let mut clean = NoisyFederation::new(
            config(2),
            &data(),
            CkksParams::toy(),
            NoisyChannelConfig { ber: 0.0, detector: None, ..Default::default() },
        )
        .expect("build");
        let (clean_report, _) = clean.run().expect("run");

        let mut dirty = NoisyFederation::new(
            config(2),
            &data(),
            CkksParams::toy(),
            NoisyChannelConfig { ber: 1e-4, detector: None, ..Default::default() },
        )
        .expect("build");
        let (dirty_report, _) = dirty.run().expect("run");
        assert!(
            dirty_report.final_accuracy < clean_report.final_accuracy - 0.15,
            "unprotected noise should hurt: clean {} vs dirty {}",
            clean_report.final_accuracy,
            dirty_report.final_accuracy
        );
    }

    #[test]
    fn transmissions_track_two_way_traffic() {
        let mut fed = NoisyFederation::new(
            config(1),
            &data(),
            CkksParams::toy(),
            NoisyChannelConfig { ber: 0.0, ..Default::default() },
        )
        .expect("build");
        let (_, stats) = fed.run().expect("run");
        // Uploads: 3 clients × k ciphertexts; downloads: 3 clients × k.
        // Packets per ciphertext: ceil(bytes / 175).
        assert!(stats.packets > 0);
        assert_eq!(stats.transmissions, stats.packets, "no noise → one transmission each");
    }
}
