//! Reusable round building blocks: the client-side local phase and the
//! server-side collection/aggregation phase.
//!
//! [`Framework`](crate::framework::Framework) composes these pieces in
//! one process; the `rhychee-net` runtime composes the *same* pieces
//! across a TCP connection. Both paths derive all randomness from the
//! run seed with fixed per-role salts, so a networked federation and an
//! in-process one produce bit-identical global models under the same
//! configuration:
//!
//! * setup (encoder bases, Dirichlet partition) draws from
//!   `seed` directly;
//! * CKKS/LWE key generation draws from `seed ^ CKKS_KEY_SALT` /
//!   `seed ^ LWE_KEY_SALT`;
//! * client `i`'s encryption randomness draws from its own stream
//!   `seed ^ CLIENT_RNG_SALT ^ i·φ64`, so ciphertexts do not depend on
//!   which process encrypts or in what order clients are visited.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rhychee_data::partition::dirichlet_partition_indices;
use rhychee_data::TrainTest;
use rhychee_fhe::ckks::{CkksCiphertext, CkksContext, CkksPublicKey, CkksSecretKey};
use rhychee_fhe::FheError;
use rhychee_hdc::encoding::{Encoder, RandomProjectionEncoder, RbfEncoder};
use rhychee_hdc::model::{EncodedDataset, HdcModel};
use rhychee_par::Parallelism;

use crate::config::{Aggregation, EncoderKind, FlConfig};
use crate::error::FlError;
use crate::packing;

/// Salt for the shared CKKS key-generation stream (paper §IV-A: the
/// secret key is shared by all clients, never held by the server).
pub const CKKS_KEY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Salt for the shared LWE key-generation stream.
pub const LWE_KEY_SALT: u64 = 0x517C_C1B7_2722_0A95;

/// Salt for per-client encryption randomness streams.
pub const CLIENT_RNG_SALT: u64 = 0xD6E8_FEB8_6659_FD93;

/// Derives the deterministic RNG for client `id`'s encryption noise.
pub fn client_rng(seed: u64, id: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ CLIENT_RNG_SALT ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Derives the shared CKKS key pair every client holds (the server gets
/// only the evaluation context, which needs no key material).
pub fn derive_ckks_keys(ctx: &CkksContext, seed: u64) -> (CkksSecretKey, CkksPublicKey) {
    let mut key_rng = StdRng::seed_from_u64(seed ^ CKKS_KEY_SALT);
    ctx.generate_keys(&mut key_rng)
}

/// Shared federation setup: encoded shards, encoded test set, and the
/// class count. Identical for every runtime given the same config/data.
pub struct FedSetup {
    /// Per-client encoded training shards (Dirichlet label skew).
    pub shards: Vec<EncodedDataset>,
    /// The held-out encoded test set.
    pub test: EncodedDataset,
    /// Number of classes L.
    pub classes: usize,
}

impl FedSetup {
    /// Consumes the setup into per-client local states.
    pub fn into_clients(self, config: &FlConfig) -> Vec<ClientLocal> {
        self.shards
            .into_iter()
            .enumerate()
            .map(|(id, data)| ClientLocal::new(id, data, self.classes, config))
            .collect()
    }
}

/// Encodes the dataset and partitions it into non-IID client shards.
///
/// This is the deterministic preamble shared by the in-process
/// [`Framework`](crate::framework::Framework) and the networked runtime:
/// both must call it with identical `config`/`data` to agree on shards.
///
/// # Errors
///
/// Returns [`FlError`] on invalid config or insufficient data.
pub fn prepare(config: &FlConfig, data: &TrainTest) -> Result<FedSetup, FlError> {
    config.validate()?;
    if data.train.len() < config.clients {
        return Err(FlError::DataError(format!(
            "{} training samples cannot serve {} clients",
            data.train.len(),
            config.clients
        )));
    }
    if data.train.is_empty() || data.test.is_empty() {
        return Err(FlError::DataError("train and test sets must be non-empty".into()));
    }
    let classes = data.train.num_classes();
    let feature_dim = data.train.feature_dim();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Shared encoder: all clients derive identical bases from the
    // common seed (the HDC analogue of the shared model architecture).
    let use_rbf = match config.encoder {
        EncoderKind::Rbf => true,
        EncoderKind::RandomProjection => false,
        // The paper uses RBF for MNIST (pixel images) and random
        // projection for HAR (dense statistical features).
        EncoderKind::Auto => feature_dim == 784,
    };
    let (train_hv, test_hv) = if use_rbf {
        let encoder = RbfEncoder::new(feature_dim, config.hd_dim, &mut rng);
        (
            encoder.encode_batch(data.train.features(), config.parallelism),
            encoder.encode_batch(data.test.features(), config.parallelism),
        )
    } else {
        let encoder = RandomProjectionEncoder::new(feature_dim, config.hd_dim, &mut rng);
        (
            encoder.encode_batch(data.train.features(), config.parallelism),
            encoder.encode_batch(data.test.features(), config.parallelism),
        )
    };
    let test = EncodedDataset::new(test_hv, data.test.labels().to_vec());

    // Non-IID shards via Dirichlet label skew (Li et al., α = 0.5).
    let shards = dirichlet_partition_indices(
        data.train.labels(),
        classes,
        config.clients,
        config.dirichlet_alpha,
        &mut rng,
    )
    .iter()
    .map(|idx| {
        let hvs = idx.iter().map(|&i| train_hv[i].clone()).collect();
        let labels = idx.iter().map(|&i| data.train.labels()[i]).collect();
        EncodedDataset::new(hvs, labels)
    })
    .collect();

    Ok(FedSetup { shards, test, classes })
}

/// One federated client's local state: its shard, HDC model, and a
/// private randomness stream for encryption.
pub struct ClientLocal {
    id: usize,
    data: EncodedDataset,
    model: HdcModel,
    last_steps: usize,
    rng: StdRng,
}

impl ClientLocal {
    /// Builds the local state for client `id`.
    pub fn new(id: usize, data: EncodedDataset, classes: usize, config: &FlConfig) -> Self {
        ClientLocal {
            id,
            data,
            model: HdcModel::new(classes, config.hd_dim),
            last_steps: 0,
            rng: client_rng(config.seed, id),
        }
    }

    /// This client's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Trainable parameter count `D × L`.
    pub fn num_parameters(&self) -> usize {
        self.model.num_parameters()
    }

    /// Adaptive updates applied in the last local phase (FedNova τ).
    pub fn last_steps(&self) -> usize {
        self.last_steps
    }

    /// The client's private randomness stream (encryption noise).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Runs the local phase against the given global model and returns
    /// the flat (optionally normalized) local model.
    ///
    /// A zero global model marks the first round: the client starts with
    /// the standard OnlineHD/FedHD one-shot bundling pass, which the
    /// adaptive Eq. 1 epochs then refine.
    pub fn train(&mut self, global: &[f32], cfg: &FlConfig) -> Vec<f32> {
        let first_round = global.iter().all(|&v| v == 0.0);
        self.model.load_flat(global);
        if first_round {
            self.model.bundle(&self.data);
        }
        let mut steps = 0;
        for _ in 0..cfg.local_epochs {
            steps += self.model.train_epoch(&self.data, cfg.lr);
            if let Aggregation::FedProx { mu } = cfg.aggregation {
                proximal_pull(&mut self.model, global, mu);
            }
        }
        self.last_steps = steps.max(1);
        let mut out = self.model.clone();
        if cfg.normalize {
            out.normalize();
        }
        out.flatten()
    }

    /// Loads the distributed global model into the local classifier.
    pub fn load_global(&mut self, global: &[f32]) {
        self.model.load_flat(global);
    }

    /// Trains and encrypts in one step: the CKKS upload path.
    ///
    /// # Errors
    ///
    /// Propagates [`FheError`] from encryption.
    pub fn encrypt_update(
        &mut self,
        ctx: &CkksContext,
        pk: &CkksPublicKey,
        flat: &[f32],
    ) -> Result<Vec<CkksCiphertext>, FheError> {
        packing::encrypt_model(ctx, pk, flat, &mut self.rng)
    }

    /// Trains and encrypts symmetrically under the shared secret key,
    /// producing seeded ciphertexts for the seed-compressed upload path
    /// (roughly half the canonical wire bytes).
    ///
    /// # Errors
    ///
    /// Propagates [`FheError`] from encryption.
    pub fn encrypt_update_symmetric(
        &mut self,
        ctx: &CkksContext,
        sk: &CkksSecretKey,
        flat: &[f32],
    ) -> Result<Vec<CkksCiphertext>, FheError> {
        packing::encrypt_model_symmetric(ctx, sk, flat, &mut self.rng)
    }

    /// Layout-aware [`ClientRound::encrypt_update`]: `Dense` matches it
    /// bit for bit; `BitInterleaved` packs several quantized
    /// coordinates per slot ([`packing::encrypt_model_with`]).
    ///
    /// # Errors
    ///
    /// Propagates [`FheError`] from validation or encryption.
    pub fn encrypt_update_with(
        &mut self,
        ctx: &CkksContext,
        pk: &CkksPublicKey,
        flat: &[f32],
        cfg: &packing::PackingConfig,
    ) -> Result<Vec<CkksCiphertext>, FheError> {
        packing::encrypt_model_with(ctx, pk, flat, cfg, &mut self.rng)
    }

    /// Layout-aware [`ClientRound::encrypt_update_symmetric`].
    ///
    /// # Errors
    ///
    /// Propagates [`FheError`] from validation or encryption.
    pub fn encrypt_update_symmetric_with(
        &mut self,
        ctx: &CkksContext,
        sk: &CkksSecretKey,
        flat: &[f32],
        cfg: &packing::PackingConfig,
    ) -> Result<Vec<CkksCiphertext>, FheError> {
        packing::encrypt_model_symmetric_with(ctx, sk, flat, cfg, &mut self.rng)
    }
}

/// One client's contribution to a round.
#[derive(Debug, Clone)]
pub struct ClientUpdate<T> {
    /// The reporting client.
    pub client_id: usize,
    /// The round this update was trained for.
    pub round: usize,
    /// Local update steps τ (FedNova weighting).
    pub steps: usize,
    /// The local model, in whatever representation the pipeline uses.
    pub payload: T,
}

/// Server-side state for one collection/aggregation round.
///
/// Updates are accepted only for the current round and only once per
/// client (late or duplicate uploads are rejected — the networked
/// runtime relays the rejection as a NACK). Aggregation reweights over
/// whichever quorum actually reported, visiting updates in client-id
/// order so results are independent of arrival order.
pub struct ServerRound<T> {
    round: usize,
    aggregation: Aggregation,
    updates: Vec<ClientUpdate<T>>,
}

impl<T> ServerRound<T> {
    /// Opens collection for `round`.
    pub fn new(round: usize, aggregation: Aggregation) -> Self {
        ServerRound { round, aggregation, updates: Vec::new() }
    }

    /// The round being collected.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of accepted updates so far.
    pub fn received(&self) -> usize {
        self.updates.len()
    }

    /// Offers an update; returns `false` (and drops it) if it targets a
    /// different round or duplicates an already-reporting client.
    pub fn accept(&mut self, update: ClientUpdate<T>) -> bool {
        if update.round != self.round {
            return false;
        }
        if self.updates.iter().any(|u| u.client_id == update.client_id) {
            return false;
        }
        // Keep client-id order so aggregation is arrival-order invariant.
        let pos = self.updates.partition_point(|u| u.client_id < update.client_id);
        self.updates.insert(pos, update);
        true
    }

    /// The accepted updates in client-id order.
    pub fn updates(&self) -> &[ClientUpdate<T>] {
        &self.updates
    }

    /// Aggregation weights over the reporting quorum (uniform for
    /// FedAvg/FedProx, inverse-step-normalized for FedNova).
    pub fn weights(&self) -> Vec<f64> {
        match self.aggregation {
            Aggregation::FedAvg | Aggregation::FedProx { .. } => {
                vec![1.0 / self.updates.len() as f64; self.updates.len()]
            }
            Aggregation::FedNova => {
                // Weight clients inversely to their local step count so
                // heavy local updaters do not dominate the average.
                let inv: Vec<f64> =
                    self.updates.iter().map(|u| 1.0 / u.steps.max(1) as f64).collect();
                let total: f64 = inv.iter().sum();
                inv.into_iter().map(|w| w / total).collect()
            }
        }
    }

    fn check_nonempty(&self) -> Result<(), FlError> {
        if self.updates.is_empty() {
            return Err(FlError::DataError(format!(
                "round {}: no client updates to aggregate",
                self.round
            )));
        }
        Ok(())
    }
}

impl ServerRound<Vec<f32>> {
    /// Plaintext FedAvg over the reporting quorum.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::DataError`] if no updates were accepted.
    pub fn aggregate(&self) -> Result<Vec<f32>, FlError> {
        self.aggregate_with(Parallelism::sequential())
    }

    /// [`ServerRound::aggregate`] with the output parameters split into
    /// `par.degree()` chunks. Each element still sums its clients in
    /// client-id order, so the result is bit-identical for every degree.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::DataError`] if no updates were accepted.
    pub fn aggregate_with(&self, par: Parallelism) -> Result<Vec<f32>, FlError> {
        self.check_nonempty()?;
        let models: Vec<&[f32]> = self.updates.iter().map(|u| u.payload.as_slice()).collect();
        Ok(weighted_average_with(&models, &self.weights(), par))
    }
}

impl ServerRound<Vec<CkksCiphertext>> {
    /// Homomorphic FedAvg over the reporting quorum (paper Eq. 2) —
    /// runs entirely on ciphertexts; no key material required.
    ///
    /// # Errors
    ///
    /// Returns [`FlError`] if no updates were accepted or the
    /// ciphertexts are incompatible.
    pub fn aggregate_ckks(&self, ctx: &CkksContext) -> Result<Vec<CkksCiphertext>, FlError> {
        self.check_nonempty()?;
        let models: Vec<Vec<CkksCiphertext>> =
            self.updates.iter().map(|u| u.payload.clone()).collect();
        Ok(packing::homomorphic_weighted_average(ctx, &models, &self.weights())?)
    }

    /// Lane-safe aggregation for bit-interleaved uploads: the plain
    /// homomorphic **sum** `Σᵢ Enc(LMᵢ)`, with no plaintext multiply
    /// that could carry across packed lanes. The division by the
    /// contributor count happens after decryption, driven by the
    /// in-band counter lane ([`packing::decrypt_model_with`]) — so this
    /// path implements uniform FedAvg only; weighted rules need the
    /// dense layout.
    ///
    /// # Errors
    ///
    /// Returns [`FlError`] if no updates were accepted or the
    /// ciphertexts are incompatible.
    pub fn aggregate_ckks_sum(&self, ctx: &CkksContext) -> Result<Vec<CkksCiphertext>, FlError> {
        self.check_nonempty()?;
        let models: Vec<Vec<CkksCiphertext>> =
            self.updates.iter().map(|u| u.payload.clone()).collect();
        Ok(packing::homomorphic_sum(ctx, &models)?)
    }
}

/// Pulls a model toward the global parameters: `w ← w − μ(w − g)`.
fn proximal_pull(model: &mut HdcModel, global: &[f32], mu: f32) {
    let mut flat = model.flatten();
    for (w, &g) in flat.iter_mut().zip(global) {
        *w -= mu * (*w - g);
    }
    model.load_flat(&flat);
}

/// Weighted element-wise average of flat models.
pub fn weighted_average(models: &[&[f32]], weights: &[f64]) -> Vec<f32> {
    weighted_average_with(models, weights, Parallelism::sequential())
}

/// [`weighted_average`] split into `par.degree()` element ranges. Every
/// output element accumulates its clients in the given order whatever
/// the chunking, so results are bit-identical for every degree.
pub fn weighted_average_with(models: &[&[f32]], weights: &[f64], par: Parallelism) -> Vec<f32> {
    assert_eq!(models.len(), weights.len());
    assert!(!models.is_empty(), "cannot average zero models");
    let n = models[0].len();
    let mut out = vec![0.0f32; n];
    // Blocks of at least 4096 elements keep task overhead negligible
    // next to the per-element multiply-adds.
    let degree = par.degree().min(n.div_ceil(4096)).max(1);
    let block_len = n.div_ceil(degree).max(1);
    let mut blocks: Vec<&mut [f32]> = out.chunks_mut(block_len).collect();
    rhychee_par::for_each_mut(Parallelism::Fixed(degree), &mut blocks, |ci, block| {
        let offset = ci * block_len;
        for (m, &w) in models.iter().zip(weights) {
            let src = &m[offset..offset + block.len()];
            for (o, &v) in block.iter_mut().zip(src) {
                *o += (w as f32) * v;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhychee_data::{DatasetKind, SyntheticConfig};

    fn config(clients: usize) -> FlConfig {
        FlConfig::builder().clients(clients).rounds(2).hd_dim(128).seed(3).build().expect("valid")
    }

    fn update(id: usize, round: usize, payload: Vec<f32>) -> ClientUpdate<Vec<f32>> {
        ClientUpdate { client_id: id, round, steps: 1, payload }
    }

    #[test]
    fn prepare_is_deterministic() {
        let data = SyntheticConfig::small(DatasetKind::Har).generate(5).expect("generate");
        let a = prepare(&config(4), &data).expect("prepare");
        let b = prepare(&config(4), &data).expect("prepare");
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.shards.len(), 4);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.len(), y.len());
            assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    fn client_rng_streams_are_distinct() {
        use rand::Rng;
        let mut a = client_rng(9, 0);
        let mut b = client_rng(9, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
        let mut a2 = client_rng(9, 0);
        let xs2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        assert_eq!(xs, xs2, "same seed + id must replay the same stream");
    }

    #[test]
    fn server_round_rejects_late_and_duplicate() {
        let mut sr: ServerRound<Vec<f32>> = ServerRound::new(3, Aggregation::FedAvg);
        assert!(sr.accept(update(0, 3, vec![1.0])));
        assert!(!sr.accept(update(0, 3, vec![2.0])), "duplicate client");
        assert!(!sr.accept(update(1, 2, vec![2.0])), "stale round");
        assert!(!sr.accept(update(1, 4, vec![2.0])), "future round");
        assert!(sr.accept(update(1, 3, vec![2.0])));
        assert_eq!(sr.received(), 2);
    }

    #[test]
    fn aggregation_is_arrival_order_invariant() {
        let mut fwd: ServerRound<Vec<f32>> = ServerRound::new(0, Aggregation::FedAvg);
        let mut rev: ServerRound<Vec<f32>> = ServerRound::new(0, Aggregation::FedAvg);
        let models = [vec![1.0f32, 2.0], vec![3.0, 6.0], vec![5.0, 1.0]];
        for (id, m) in models.iter().enumerate() {
            fwd.accept(update(id, 0, m.clone()));
        }
        for (id, m) in models.iter().enumerate().rev() {
            rev.accept(update(id, 0, m.clone()));
        }
        assert_eq!(fwd.aggregate().expect("agg"), rev.aggregate().expect("agg"));
    }

    #[test]
    fn fednova_weights_normalize() {
        let mut sr: ServerRound<Vec<f32>> = ServerRound::new(0, Aggregation::FedNova);
        sr.accept(ClientUpdate { client_id: 0, round: 0, steps: 10, payload: vec![0.0f32] });
        sr.accept(ClientUpdate { client_id: 1, round: 0, steps: 40, payload: vec![0.0f32] });
        let w = sr.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1], "fewer steps ⇒ larger weight");
    }

    #[test]
    fn empty_round_cannot_aggregate() {
        let sr: ServerRound<Vec<f32>> = ServerRound::new(0, Aggregation::FedAvg);
        assert!(sr.aggregate().is_err());
    }

    #[test]
    fn weighted_average_basics() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        let avg = weighted_average(&[&a, &b], &[0.5, 0.5]);
        assert_eq!(avg, vec![2.0, 4.0]);
        let weighted = weighted_average(&[&a, &b], &[0.25, 0.75]);
        assert_eq!(weighted, vec![2.5, 5.0]);
    }

    #[test]
    fn weighted_average_parallel_is_bit_identical() {
        // Sizes straddling the 4096-element block threshold, including
        // a ragged tail.
        for n in [1usize, 100, 4096, 10_000] {
            let models: Vec<Vec<f32>> = (0..3)
                .map(|c| (0..n).map(|i| ((c * n + i) as f32 * 0.01).sin()).collect())
                .collect();
            let refs: Vec<&[f32]> = models.iter().map(Vec::as_slice).collect();
            let weights = [0.5, 0.3, 0.2];
            let seq = weighted_average(&refs, &weights);
            for par in [Parallelism::Fixed(2), Parallelism::Fixed(4), Parallelism::Auto] {
                let got = weighted_average_with(&refs, &weights, par);
                assert_eq!(
                    seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "n={n} {par}"
                );
            }
        }
    }
}
