//! Federated-learning configuration.

use rhychee_par::Parallelism;

use crate::error::FlError;

/// Feature-encoder selection for HDC clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// Pick by dataset shape: RBF for image-like inputs (the paper's
    /// MNIST choice), random projection otherwise (the HAR choice).
    #[default]
    Auto,
    /// Random-projection (sign) encoding.
    RandomProjection,
    /// RBF (cosine) encoding.
    Rbf,
}

/// Model-aggregation strategy.
///
/// The paper adopts FedAvg (Eq. 2) and names FedProx/FedNova as future
/// work; both extensions are implemented for the plaintext pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Aggregation {
    /// Uniform federated averaging (McMahan et al.).
    #[default]
    FedAvg,
    /// FedAvg plus a client-side proximal pull toward the global model
    /// with strength `mu` (Li et al.).
    FedProx {
        /// Proximal coefficient μ.
        mu: f32,
    },
    /// Normalized averaging weighting each update by its local step count
    /// (Wang et al.).
    FedNova,
}

/// Full configuration of a federated run.
///
/// Build with [`FlConfig::builder`]; defaults mirror the paper's setup
/// (D = 2000, Dirichlet α = 0.5, FedAvg, 5 local epochs, OnlineHD
/// bundling on the first round with lr = 5 refinement).
///
/// # Examples
///
/// ```
/// use rhychee_core::config::FlConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = FlConfig::builder().clients(10).rounds(5).hd_dim(2000).build()?;
/// assert_eq!(cfg.clients, 10);
/// assert_eq!(cfg.local_epochs, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlConfig {
    /// Number of federated clients P.
    pub clients: usize,
    /// Global aggregation rounds.
    pub rounds: usize,
    /// Local training epochs per round.
    pub local_epochs: usize,
    /// HDC hypervector dimension D.
    pub hd_dim: usize,
    /// HDC learning rate.
    pub lr: f32,
    /// Dirichlet concentration for the non-IID partition.
    pub dirichlet_alpha: f64,
    /// Fraction of clients participating per round (1.0 = all).
    pub participation: f64,
    /// Encoder selection.
    pub encoder: EncoderKind,
    /// Aggregation strategy.
    pub aggregation: Aggregation,
    /// L2-normalize local models before upload (off by default: raw
    /// class-vector averaging preserves the balance between global
    /// knowledge and local updates; normalization is kept as an ablation).
    pub normalize: bool,
    /// Parallelism degree for batch encoding, the FHE kernels, and
    /// aggregation (`Auto` = all cores; purely a scheduling knob —
    /// outputs are bit-identical for every degree).
    pub parallelism: Parallelism,
    /// Master seed (all randomness derives from it).
    pub seed: u64,
}

impl FlConfig {
    /// Starts a builder with paper defaults.
    pub fn builder() -> FlConfigBuilder {
        FlConfigBuilder::default()
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] for zero counts or out-of-range
    /// fractions.
    pub fn validate(&self) -> Result<(), FlError> {
        if self.clients == 0 {
            return Err(FlError::InvalidConfig("clients must be positive".into()));
        }
        if self.rounds == 0 {
            return Err(FlError::InvalidConfig("rounds must be positive".into()));
        }
        if self.local_epochs == 0 {
            return Err(FlError::InvalidConfig("local_epochs must be positive".into()));
        }
        if self.hd_dim == 0 {
            return Err(FlError::InvalidConfig("hd_dim must be positive".into()));
        }
        if self.lr <= 0.0 || self.lr.is_nan() {
            return Err(FlError::InvalidConfig("learning rate must be positive".into()));
        }
        if self.dirichlet_alpha <= 0.0 || self.dirichlet_alpha.is_nan() {
            return Err(FlError::InvalidConfig("dirichlet_alpha must be positive".into()));
        }
        if !(0.0 < self.participation && self.participation <= 1.0) {
            return Err(FlError::InvalidConfig("participation must be in (0, 1]".into()));
        }
        Ok(())
    }
}

/// Builder for [`FlConfig`].
#[derive(Debug, Clone)]
pub struct FlConfigBuilder {
    config: FlConfig,
}

impl Default for FlConfigBuilder {
    fn default() -> Self {
        FlConfigBuilder {
            config: FlConfig {
                clients: 10,
                rounds: 10,
                local_epochs: 5,
                hd_dim: 2000,
                lr: 5.0,
                dirichlet_alpha: 0.5,
                participation: 1.0,
                encoder: EncoderKind::Auto,
                aggregation: Aggregation::FedAvg,
                normalize: false,
                parallelism: Parallelism::Auto,
                seed: 0,
            },
        }
    }
}

impl FlConfigBuilder {
    /// Sets the client count P.
    pub fn clients(mut self, clients: usize) -> Self {
        self.config.clients = clients;
        self
    }

    /// Sets the number of global rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.config.rounds = rounds;
        self
    }

    /// Sets local epochs per round.
    pub fn local_epochs(mut self, epochs: usize) -> Self {
        self.config.local_epochs = epochs;
        self
    }

    /// Sets the hypervector dimension D.
    pub fn hd_dim(mut self, dim: usize) -> Self {
        self.config.hd_dim = dim;
        self
    }

    /// Sets the HDC learning rate.
    pub fn lr(mut self, lr: f32) -> Self {
        self.config.lr = lr;
        self
    }

    /// Sets the Dirichlet concentration α.
    pub fn dirichlet_alpha(mut self, alpha: f64) -> Self {
        self.config.dirichlet_alpha = alpha;
        self
    }

    /// Sets the per-round participation fraction.
    pub fn participation(mut self, fraction: f64) -> Self {
        self.config.participation = fraction;
        self
    }

    /// Sets the encoder kind.
    pub fn encoder(mut self, encoder: EncoderKind) -> Self {
        self.config.encoder = encoder;
        self
    }

    /// Sets the aggregation strategy.
    pub fn aggregation(mut self, aggregation: Aggregation) -> Self {
        self.config.aggregation = aggregation;
        self
    }

    /// Enables or disables pre-upload L2 normalization.
    pub fn normalize(mut self, normalize: bool) -> Self {
        self.config.normalize = normalize;
        self
    }

    /// Sets the unified parallelism degree used by HDC batch encoding,
    /// the CKKS kernels, and aggregation.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Sets encoding worker threads.
    #[deprecated(since = "0.1.0", note = "use `parallelism(Parallelism::Fixed(n))` instead")]
    pub fn threads(self, threads: usize) -> Self {
        self.parallelism(Parallelism::Fixed(threads.max(1)))
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] if validation fails.
    pub fn build(self) -> Result<FlConfig, FlError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = FlConfig::builder().build().expect("valid defaults");
        assert_eq!(cfg.hd_dim, 2000);
        assert_eq!(cfg.dirichlet_alpha, 0.5);
        assert_eq!(cfg.aggregation, Aggregation::FedAvg);
        assert_eq!(cfg.participation, 1.0);
        assert!(!cfg.normalize);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = FlConfig::builder()
            .clients(100)
            .rounds(15)
            .local_epochs(3)
            .hd_dim(4000)
            .lr(0.5)
            .dirichlet_alpha(0.1)
            .participation(0.2)
            .encoder(EncoderKind::Rbf)
            .aggregation(Aggregation::FedProx { mu: 0.01 })
            .normalize(false)
            .parallelism(Parallelism::Fixed(4))
            .seed(42)
            .build()
            .expect("valid");
        assert_eq!(cfg.clients, 100);
        assert_eq!(cfg.parallelism, Parallelism::Fixed(4));
        assert_eq!(cfg.encoder, EncoderKind::Rbf);
        assert_eq!(cfg.aggregation, Aggregation::FedProx { mu: 0.01 });
        assert!(!cfg.normalize);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(FlConfig::builder().clients(0).build().is_err());
        assert!(FlConfig::builder().rounds(0).build().is_err());
        assert!(FlConfig::builder().hd_dim(0).build().is_err());
        assert!(FlConfig::builder().lr(0.0).build().is_err());
        assert!(FlConfig::builder().lr(-1.0).build().is_err());
        assert!(FlConfig::builder().dirichlet_alpha(0.0).build().is_err());
        assert!(FlConfig::builder().participation(0.0).build().is_err());
        assert!(FlConfig::builder().participation(1.5).build().is_err());
        assert!(FlConfig::builder().local_epochs(0).build().is_err());
    }

    #[test]
    fn deprecated_threads_alias_forwards_to_parallelism() {
        #[allow(deprecated)]
        let cfg = FlConfig::builder().threads(0).build().expect("valid");
        assert_eq!(cfg.parallelism, Parallelism::Fixed(1));
        #[allow(deprecated)]
        let cfg = FlConfig::builder().threads(6).build().expect("valid");
        assert_eq!(cfg.parallelism, Parallelism::Fixed(6));
    }

    #[test]
    fn default_parallelism_is_auto() {
        let cfg = FlConfig::builder().build().expect("valid");
        assert_eq!(cfg.parallelism, Parallelism::Auto);
    }
}
