//! Error type for the Rhychee-FL framework.

use std::fmt;

use rhychee_fhe::FheError;

/// Errors produced by federated-learning configuration and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlError {
    /// Invalid framework configuration.
    InvalidConfig(String),
    /// The dataset cannot support the requested setup.
    DataError(String),
    /// An underlying homomorphic-encryption operation failed.
    Fhe(FheError),
    /// The LWE noise budget cannot support the client count.
    NoiseBudget { clients: usize, budget: usize },
    /// The streaming aggregation path broke an invariant mid-round and
    /// had to abandon the fold (e.g. closing a sum no upload ever
    /// reached, or retracting a contribution whose shape no longer
    /// matches the accumulator). Distinct from a per-upload rejection —
    /// those NACK the one upload and leave the round running.
    StreamingAbort(String),
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::InvalidConfig(msg) => write!(f, "invalid FL configuration: {msg}"),
            FlError::DataError(msg) => write!(f, "dataset error: {msg}"),
            FlError::Fhe(e) => write!(f, "FHE operation failed: {e}"),
            FlError::NoiseBudget { clients, budget } => write!(
                f,
                "LWE noise budget supports only {budget} additions, but {clients} clients requested"
            ),
            FlError::StreamingAbort(msg) => {
                write!(f, "streaming aggregation aborted: {msg}")
            }
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Fhe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FheError> for FlError {
    fn from(e: FheError) -> Self {
        FlError::Fhe(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FlError::InvalidConfig("clients must be positive".into());
        assert!(e.to_string().contains("clients"));
        let e: FlError = FheError::LevelExhausted.into();
        assert!(matches!(e, FlError::Fhe(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e = FlError::NoiseBudget { clients: 100, budget: 79 };
        assert!(e.to_string().contains("79"));
    }
}
