//! Maximum-packing of model parameters into CKKS ciphertext slots
//! (paper §IV-A step 2).
//!
//! A naive design would encrypt each class hypervector as its own
//! ciphertext, wasting most of the `N/2` slots. Rhychee-FL instead
//! flattens the whole `L × D` model and fills every slot of every
//! ciphertext, needing exactly `⌈DL / (N/2)⌉` ciphertexts.
//!
//! The [`PackingLayout::BitInterleaved`] mode (FedBit-style co-design)
//! goes further: coordinates are quantized to `bits` bits and several
//! are packed per slot at a lane stride wide enough that the
//! homomorphic *sum* of up to `max_clients` uploads never carries
//! across lanes. Aggregation is then a pure ciphertext addition
//! ([`homomorphic_sum`]); the division by the contributor count moves
//! to after decryption. The count itself travels in-band: every client
//! packs the constant `1` into a reserved counter lane (lane 0 of the
//! first slot), so the summed aggregate is self-describing — dropouts
//! and partial quorums need no side channel.

use rand::Rng;

pub use rhychee_fhe::bitpack::PackingLayout;
use rhychee_fhe::bitpack::{pack_lanes, unpack_lane};
use rhychee_fhe::ckks::{CkksCiphertext, CkksContext, CkksPublicKey, CkksSecretKey};
use rhychee_fhe::FheError;

/// Everything both endpoints must agree on to pack, aggregate, and
/// unpack a model under a given [`PackingLayout`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackingConfig {
    /// Slot layout of the flat model.
    pub layout: PackingLayout,
    /// Symmetric clip range for quantization (`BitInterleaved` only):
    /// coordinates are clamped to `[-clip, clip]`, shared by all
    /// clients so quantization grids line up.
    pub clip: f32,
    /// Lane-headroom bound `P`: the most uploads one aggregate may sum
    /// (`BitInterleaved` only).
    pub max_clients: usize,
}

impl PackingConfig {
    /// The paper's dense one-coordinate-per-slot layout.
    pub fn dense() -> Self {
        PackingConfig { layout: PackingLayout::Dense, clip: 0.0, max_clients: 0 }
    }

    /// Bit-interleaved packing at `bits` bits per coordinate, clipping
    /// to `[-clip, clip]`, with carry-free headroom for `max_clients`
    /// summed uploads.
    pub fn interleaved(bits: u32, clip: f32, max_clients: usize) -> Self {
        PackingConfig { layout: PackingLayout::BitInterleaved { bits }, clip, max_clients }
    }

    /// True when this config packs multiple coordinates per slot.
    pub fn is_interleaved(&self) -> bool {
        matches!(self.layout, PackingLayout::BitInterleaved { .. })
    }

    /// Checks layout bounds and (for `BitInterleaved`) the clip range.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] on an over-budget lane
    /// stride or a non-finite / non-positive clip.
    pub fn validate(&self) -> Result<(), FheError> {
        self.layout.validate(self.max_clients)?;
        if self.is_interleaved() && !(self.clip.is_finite() && self.clip > 0.0) {
            return Err(FheError::InvalidParams(format!(
                "BitInterleaved clip must be positive and finite, got {}",
                self.clip
            )));
        }
        Ok(())
    }

    /// Slots one flat model occupies under this layout, counting the
    /// reserved contributor-counter slot.
    pub fn slots_for(&self, num_params: usize) -> usize {
        match self.layout {
            PackingLayout::Dense => num_params,
            PackingLayout::BitInterleaved { .. } => {
                1 + num_params.div_ceil(self.layout.lanes_per_slot(self.max_clients))
            }
        }
    }
}

/// Bytes needed to upload a packed model in the canonical (full `c1`)
/// wire format.
pub fn upload_bytes_canonical(ctx: &CkksContext, num_params: usize) -> usize {
    ciphertexts_needed(num_params, ctx.slot_count()) * ctx.serialized_len(ctx.primes().len())
}

/// Bytes needed to upload a packed model in the seed-compressed format
/// (fresh symmetric ciphertexts only): roughly half the canonical size,
/// since a 32-byte seed stands in for the full `c1` component.
pub fn upload_bytes_seeded(ctx: &CkksContext, num_params: usize) -> usize {
    ciphertexts_needed(num_params, ctx.slot_count()) * ctx.serialized_len_seeded(ctx.primes().len())
}

/// Splits a flat parameter vector into slot-sized chunks (the last chunk
/// zero-padded implicitly by the encoder).
pub fn chunk_params(flat: &[f32], slots: usize) -> Vec<Vec<f64>> {
    assert!(slots > 0, "slot count must be positive");
    flat.chunks(slots).map(|c| c.iter().map(|&v| f64::from(v)).collect()).collect()
}

/// Number of ciphertexts required for `num_params` parameters:
/// `⌈DL / (N/2)⌉`.
pub fn ciphertexts_needed(num_params: usize, slots: usize) -> usize {
    num_params.div_ceil(slots)
}

/// Layout-aware ciphertext count: `Dense` matches
/// [`ciphertexts_needed`]; `BitInterleaved` divides the model across
/// `lanes_per_slot` coordinates per slot (plus the counter slot).
pub fn ciphertexts_needed_with(cfg: &PackingConfig, num_params: usize, slots: usize) -> usize {
    cfg.slots_for(num_params).div_ceil(slots)
}

/// Layout-aware canonical upload bytes (cf. [`upload_bytes_canonical`]).
pub fn upload_bytes_canonical_with(
    ctx: &CkksContext,
    cfg: &PackingConfig,
    num_params: usize,
) -> usize {
    ciphertexts_needed_with(cfg, num_params, ctx.slot_count())
        * ctx.serialized_len(ctx.primes().len())
}

/// Layout-aware seed-compressed upload bytes (cf. [`upload_bytes_seeded`]).
pub fn upload_bytes_seeded_with(
    ctx: &CkksContext,
    cfg: &PackingConfig,
    num_params: usize,
) -> usize {
    ciphertexts_needed_with(cfg, num_params, ctx.slot_count())
        * ctx.serialized_len_seeded(ctx.primes().len())
}

/// Quantizes, bias-encodes, and lane-packs a flat model into slot
/// values: word 0 is the contributor counter (this client's constant
/// `1` in lane 0), the rest carry `lanes_per_slot` coordinates each.
///
/// Each coordinate is clamped to `[-clip, clip]` and mapped to the
/// biased-unsigned grid `round(x/clip · qmax) + 2^(bits−1)`
/// ∈ `[1, 2^bits − 1]`, so a sum of `k ≤ max_clients` clients stays
/// below `2^lane_bits` — lane-carry-free by construction.
///
/// # Errors
///
/// Returns [`FheError::InvalidParams`] on an invalid config.
pub fn interleaved_chunks(
    cfg: &PackingConfig,
    flat: &[f32],
    slots: usize,
) -> Result<Vec<Vec<f64>>, FheError> {
    cfg.validate()?;
    let PackingLayout::BitInterleaved { bits } = cfg.layout else {
        return Err(FheError::InvalidParams("interleaved_chunks needs BitInterleaved".into()));
    };
    let lane_bits = cfg.layout.lane_bits(cfg.max_clients);
    let lanes = cfg.layout.lanes_per_slot(cfg.max_clients);
    let half = 1u64 << (bits - 1);
    let qmax = (half - 1) as f32;
    let mut words = Vec::with_capacity(cfg.slots_for(flat.len()));
    words.push(1.0); // contributor counter: lane 0 of slot 0
    let mut lane_vals = Vec::with_capacity(lanes);
    for group in flat.chunks(lanes) {
        lane_vals.clear();
        for &x in group {
            let q = (x / cfg.clip * qmax).round().clamp(-qmax, qmax) as i64;
            lane_vals.push((q + half as i64) as u64);
        }
        // Exact as f64: a packed word is < 2^SLOT_PAYLOAD_BITS ≤ 2^32.
        words.push(pack_lanes(&lane_vals, lane_bits) as f64);
    }
    Ok(words.chunks(slots).map(<[f64]>::to_vec).collect())
}

/// Layout-aware [`encrypt_model`]: `Dense` delegates; `BitInterleaved`
/// encrypts the lane-packed slot words from [`interleaved_chunks`].
///
/// # Errors
///
/// Propagates [`FheError`] from validation or encryption.
pub fn encrypt_model_with<R: Rng + ?Sized>(
    ctx: &CkksContext,
    pk: &CkksPublicKey,
    flat: &[f32],
    cfg: &PackingConfig,
    rng: &mut R,
) -> Result<Vec<CkksCiphertext>, FheError> {
    match cfg.layout {
        PackingLayout::Dense => encrypt_model(ctx, pk, flat, rng),
        PackingLayout::BitInterleaved { .. } => {
            let chunks = interleaved_chunks(cfg, flat, ctx.slot_count())?;
            // Same sequential-draw / parallel-arithmetic split as
            // `encrypt_model`, so ciphertexts are degree-independent.
            let noises: Vec<_> = chunks.iter().map(|_| ctx.sample_encrypt_noise(rng)).collect();
            rhychee_par::map(ctx.parallelism(), chunks.len(), |i| {
                ctx.encrypt_with_noise(pk, &chunks[i], &noises[i])
            })
            .into_iter()
            .collect()
        }
    }
}

/// Layout-aware [`encrypt_model_symmetric`] — seeded ciphertexts for
/// the seed-compressed wire format under either layout.
///
/// # Errors
///
/// Propagates [`FheError`] from validation or encryption.
pub fn encrypt_model_symmetric_with<R: Rng + ?Sized>(
    ctx: &CkksContext,
    sk: &CkksSecretKey,
    flat: &[f32],
    cfg: &PackingConfig,
    rng: &mut R,
) -> Result<Vec<CkksCiphertext>, FheError> {
    match cfg.layout {
        PackingLayout::Dense => encrypt_model_symmetric(ctx, sk, flat, rng),
        PackingLayout::BitInterleaved { .. } => {
            let chunks = interleaved_chunks(cfg, flat, ctx.slot_count())?;
            let noises: Vec<_> = chunks.iter().map(|_| ctx.sample_symmetric_noise(rng)).collect();
            rhychee_par::map(ctx.parallelism(), chunks.len(), |i| {
                ctx.encrypt_symmetric_with_noise(sk, &chunks[i], &noises[i])
            })
            .into_iter()
            .collect()
        }
    }
}

/// Layout-aware [`decrypt_model`].
///
/// `Dense` delegates unchanged. `BitInterleaved` expects the
/// ciphertexts to be the homomorphic **sum** of `k ≥ 1` client uploads
/// (a single fresh upload is the `k = 1` case): it reads `k` from the
/// in-band counter lane, un-biases each lane sum, and returns the mean
/// model `(Σᵢ qᵢ)/k` dequantized — uniform FedAvg with the division
/// done in plaintext, where it cannot disturb lane boundaries.
///
/// # Errors
///
/// Returns [`FheError::Deserialize`] when the ciphertexts carry too few
/// slots, a slot decodes outside the packed integer range (noise budget
/// exhausted or layout mismatch), or the counter lane is outside
/// `1..=max_clients`.
pub fn decrypt_model_with(
    ctx: &CkksContext,
    sk: &CkksSecretKey,
    cts: &[CkksCiphertext],
    num_params: usize,
    cfg: &PackingConfig,
) -> Result<Vec<f32>, FheError> {
    let PackingLayout::BitInterleaved { bits } = cfg.layout else {
        return decrypt_model(ctx, sk, cts, num_params);
    };
    cfg.validate()?;
    let lane_bits = cfg.layout.lane_bits(cfg.max_clients);
    let lanes = cfg.layout.lanes_per_slot(cfg.max_clients);
    let words_needed = cfg.slots_for(num_params);
    let decrypted = rhychee_par::map(ctx.parallelism(), cts.len(), |i| ctx.decrypt(sk, &cts[i]));
    let mut words = Vec::with_capacity(words_needed);
    'outer: for values in &decrypted {
        for &v in values {
            if words.len() == words_needed {
                break 'outer;
            }
            words.push(round_packed_word(v, lane_bits, lanes)?);
        }
    }
    if words.len() != words_needed {
        return Err(FheError::Deserialize(format!(
            "ciphertexts carry {} packed slots, expected {words_needed}",
            words.len()
        )));
    }
    let k = unpack_lane(words[0], 0, lane_bits);
    if k == 0 || k > cfg.max_clients as u64 {
        return Err(FheError::Deserialize(format!(
            "contributor counter {k} outside 1..={}",
            cfg.max_clients
        )));
    }
    let half = 1u64 << (bits - 1);
    let qmax = (half - 1) as f64;
    let mut flat = Vec::with_capacity(num_params);
    for i in 0..num_params {
        let lane_sum = unpack_lane(words[1 + i / lanes], i % lanes, lane_bits);
        let q_sum = lane_sum as i64 - (k * half) as i64;
        flat.push((q_sum as f64 / k as f64 / qmax * f64::from(cfg.clip)) as f32);
    }
    Ok(flat)
}

/// Rounds a decrypted slot back to its packed integer, rejecting values
/// the quantized-sum encoding cannot produce.
fn round_packed_word(v: f64, lane_bits: u32, lanes: usize) -> Result<u64, FheError> {
    let r = v.round();
    let cap = (1u64 << (lane_bits as usize * lanes.max(1)).min(63)) as f64;
    if !(r.is_finite() && (0.0..cap).contains(&r) && (v - r).abs() < 0.45) {
        return Err(FheError::Deserialize(format!(
            "slot value {v} outside the packed integer range (noise budget or layout mismatch)"
        )));
    }
    Ok(r as u64)
}

/// Homomorphically sums packed models: `Σᵢ Enc(LMᵢ)`, ciphertext by
/// ciphertext — the lane-safe aggregation for [`PackingLayout::
/// BitInterleaved`] (no plaintext multiply ever touches the packed
/// slots). The mean is recovered at decryption from the in-band
/// contributor counter ([`decrypt_model_with`]).
///
/// # Errors
///
/// Returns [`FheError`] on empty input, inconsistent ciphertext counts,
/// or incompatible ciphertexts.
pub fn homomorphic_sum(
    ctx: &CkksContext,
    client_models: &[Vec<CkksCiphertext>],
) -> Result<Vec<CkksCiphertext>, FheError> {
    if client_models.is_empty() {
        return Err(FheError::InvalidParams("no client models to aggregate".into()));
    }
    let chunks = client_models[0].len();
    if client_models.iter().any(|m| m.len() != chunks) {
        return Err(FheError::InvalidParams(
            "clients submitted differing ciphertext counts".into(),
        ));
    }
    // Chunks aggregate independently; clients are accumulated in
    // submission order, so the sum is degree-independent.
    rhychee_par::map(ctx.parallelism(), chunks, |chunk_idx| {
        let mut acc = client_models[0][chunk_idx].clone();
        for client in &client_models[1..] {
            ctx.add_assign(&mut acc, &client[chunk_idx])?;
        }
        Ok(acc)
    })
    .into_iter()
    .collect()
}

/// Encrypts a flat model with maximum packing under the public key.
///
/// # Errors
///
/// Propagates [`FheError`] from encryption.
pub fn encrypt_model<R: Rng + ?Sized>(
    ctx: &CkksContext,
    pk: &CkksPublicKey,
    flat: &[f32],
    rng: &mut R,
) -> Result<Vec<CkksCiphertext>, FheError> {
    let chunks = chunk_params(flat, ctx.slot_count());
    // The RNG draws happen sequentially in chunk order — exactly the
    // stream `ctx.encrypt` would consume — so the ciphertexts are
    // bit-identical for every parallelism degree; only the
    // deterministic polynomial arithmetic fans out.
    let noises: Vec<_> = chunks.iter().map(|_| ctx.sample_encrypt_noise(rng)).collect();
    rhychee_par::map(ctx.parallelism(), chunks.len(), |i| {
        ctx.encrypt_with_noise(pk, &chunks[i], &noises[i])
    })
    .into_iter()
    .collect()
}

/// Encrypts a flat model with maximum packing under the *secret* key,
/// producing seeded ciphertexts eligible for the seed-compressed wire
/// format ([`rhychee_fhe::ckks::CkksContext::serialize_seeded`]).
///
/// Rhychee-FL's shared-secret-key deployment (paper §IV-A) lets every
/// client encrypt symmetrically, so uploads can ship a 32-byte seed in
/// place of the full `c1` polynomial — roughly halving upload bytes.
///
/// # Errors
///
/// Propagates [`FheError`] from encryption.
pub fn encrypt_model_symmetric<R: Rng + ?Sized>(
    ctx: &CkksContext,
    sk: &CkksSecretKey,
    flat: &[f32],
    rng: &mut R,
) -> Result<Vec<CkksCiphertext>, FheError> {
    let chunks = chunk_params(flat, ctx.slot_count());
    // Same sequential-draw / parallel-arithmetic split as
    // `encrypt_model`: seeds and noise come off the RNG in chunk order,
    // so the ciphertexts are bit-identical for every parallelism degree.
    let noises: Vec<_> = chunks.iter().map(|_| ctx.sample_symmetric_noise(rng)).collect();
    rhychee_par::map(ctx.parallelism(), chunks.len(), |i| {
        ctx.encrypt_symmetric_with_noise(sk, &chunks[i], &noises[i])
    })
    .into_iter()
    .collect()
}

/// Decrypts a packed model back to a flat parameter vector of length
/// `num_params`.
///
/// # Errors
///
/// Returns [`FheError::Deserialize`] if the ciphertexts carry fewer
/// than `num_params` slots — e.g. a truncated or mismatched payload
/// received over the wire.
pub fn decrypt_model(
    ctx: &CkksContext,
    sk: &CkksSecretKey,
    cts: &[CkksCiphertext],
    num_params: usize,
) -> Result<Vec<f32>, FheError> {
    // Ciphertexts decrypt independently; concatenation order is fixed,
    // so the flat model is bit-identical for every degree.
    let decrypted = rhychee_par::map(ctx.parallelism(), cts.len(), |i| ctx.decrypt(sk, &cts[i]));
    let mut flat = Vec::with_capacity(num_params);
    for values in decrypted {
        for v in values {
            if flat.len() == num_params {
                break;
            }
            flat.push(v as f32);
        }
    }
    if flat.len() != num_params {
        return Err(FheError::Deserialize(format!(
            "ciphertexts carry {} parameters, expected {num_params}",
            flat.len()
        )));
    }
    Ok(flat)
}

/// Homomorphically averages packed models from several clients:
/// `HomMul(Σᵢ Enc(LMᵢ), 1/P)` (paper Eq. 2), ciphertext by ciphertext.
///
/// # Errors
///
/// Returns [`FheError`] if clients submitted inconsistent ciphertext
/// counts or incompatible ciphertexts.
pub fn homomorphic_average(
    ctx: &CkksContext,
    client_models: &[Vec<CkksCiphertext>],
) -> Result<Vec<CkksCiphertext>, FheError> {
    let p = client_models.len();
    if p == 0 {
        return Err(FheError::InvalidParams("no client models to aggregate".into()));
    }
    homomorphic_weighted_average(ctx, client_models, &vec![1.0 / p as f64; p])
}

/// Homomorphically computes a weighted average `Σᵢ wᵢ · Enc(LMᵢ)`.
///
/// Generalizes [`homomorphic_average`] to sample-count-weighted FedAvg
/// (McMahan et al.): each client's ciphertexts are scaled by its public
/// plaintext weight before summation. Weights must sum to ≈ 1 so the
/// result stays in the global model's dynamic range.
///
/// # Errors
///
/// Returns [`FheError`] on empty input, mismatched weight/model counts,
/// inconsistent ciphertext counts, or incompatible ciphertexts.
pub fn homomorphic_weighted_average(
    ctx: &CkksContext,
    client_models: &[Vec<CkksCiphertext>],
    weights: &[f64],
) -> Result<Vec<CkksCiphertext>, FheError> {
    if client_models.is_empty() {
        return Err(FheError::InvalidParams("no client models to aggregate".into()));
    }
    if client_models.len() != weights.len() {
        return Err(FheError::InvalidParams(format!(
            "{} models but {} weights",
            client_models.len(),
            weights.len()
        )));
    }
    let chunks = client_models[0].len();
    if client_models.iter().any(|m| m.len() != chunks) {
        return Err(FheError::InvalidParams(
            "clients submitted differing ciphertext counts".into(),
        ));
    }
    // Chunks aggregate independently; within a chunk, clients are
    // accumulated in submission order, so the packed global model is
    // bit-identical for every parallelism degree.
    rhychee_par::map(ctx.parallelism(), chunks, |chunk_idx| {
        let mut acc = ctx.mul_scalar(&client_models[0][chunk_idx], weights[0]);
        for (client, &w) in client_models[1..].iter().zip(&weights[1..]) {
            let scaled = ctx.mul_scalar(&client[chunk_idx], w);
            ctx.add_assign(&mut acc, &scaled)?;
        }
        Ok(acc)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rhychee_fhe::params::CkksParams;

    fn setup() -> (CkksContext, CkksSecretKey, CkksPublicKey, StdRng) {
        let ctx = CkksContext::new(CkksParams::toy()).expect("valid");
        let mut rng = StdRng::seed_from_u64(1);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        (ctx, sk, pk, rng)
    }

    #[test]
    fn chunking_covers_all_params() {
        let flat: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let chunks = chunk_params(&flat, 256);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 256);
        assert_eq!(chunks[3].len(), 1000 - 3 * 256);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 1000);
    }

    #[test]
    fn ciphertext_count_formula() {
        // The paper's headline numbers: D·L = 20,000 at N/2 = 4096 slots
        // → 5 ciphertexts; the 43,484-param CNN → 11.
        assert_eq!(ciphertexts_needed(20_000, 4096), 5);
        assert_eq!(ciphertexts_needed(43_484, 4096), 11);
        assert_eq!(ciphertexts_needed(1, 4096), 1);
        assert_eq!(ciphertexts_needed(4096, 4096), 1);
        assert_eq!(ciphertexts_needed(4097, 4096), 2);
    }

    #[test]
    fn encrypt_decrypt_model_round_trip() {
        let (ctx, sk, pk, mut rng) = setup();
        let flat: Vec<f32> = (0..700).map(|i| (i as f32 * 0.01).sin()).collect();
        let cts = encrypt_model(&ctx, &pk, &flat, &mut rng).expect("encrypt");
        assert_eq!(cts.len(), ciphertexts_needed(700, ctx.slot_count()));
        let back = decrypt_model(&ctx, &sk, &cts, 700).expect("decrypt");
        for (a, b) in flat.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn symmetric_model_round_trip_and_seeded_bytes() {
        let (ctx, sk, _, mut rng) = setup();
        let flat: Vec<f32> = (0..700).map(|i| (i as f32 * 0.01).cos()).collect();
        let cts = encrypt_model_symmetric(&ctx, &sk, &flat, &mut rng).expect("encrypt");
        assert!(cts.iter().all(rhychee_fhe::ckks::CkksCiphertext::is_seeded));
        let back = decrypt_model(&ctx, &sk, &cts, 700).expect("decrypt");
        for (a, b) in flat.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // The seeded wire format carries one packed component instead of
        // two, so a full-model upload shrinks by ~2×.
        let canonical = upload_bytes_canonical(&ctx, 700);
        let seeded = upload_bytes_seeded(&ctx, 700);
        assert_eq!(
            seeded,
            cts.iter().map(|ct| ctx.serialize_seeded(ct).expect("seeded").len()).sum::<usize>()
        );
        assert!(seeded * 2 < canonical + 128 * cts.len(), "{seeded} vs {canonical}");
    }

    #[test]
    fn homomorphic_average_matches_plaintext() {
        let (ctx, sk, pk, mut rng) = setup();
        let p = 4;
        let models: Vec<Vec<f32>> = (0..p)
            .map(|c| (0..300).map(|i| ((c * 300 + i) as f32 * 0.01).cos()).collect())
            .collect();
        let encrypted: Vec<Vec<CkksCiphertext>> = models
            .iter()
            .map(|m| encrypt_model(&ctx, &pk, m, &mut rng).expect("encrypt"))
            .collect();
        let global = homomorphic_average(&ctx, &encrypted).expect("aggregate");
        let back = decrypt_model(&ctx, &sk, &global, 300).expect("decrypt");
        for i in 0..300 {
            let expected: f32 = models.iter().map(|m| m[i]).sum::<f32>() / p as f32;
            assert!((back[i] - expected).abs() < 1e-2, "param {i}: {} vs {expected}", back[i]);
        }
    }

    #[test]
    fn weighted_average_matches_plaintext() {
        let (ctx, sk, pk, mut rng) = setup();
        let models: Vec<Vec<f32>> = vec![vec![1.0; 100], vec![5.0; 100], vec![9.0; 100]];
        let weights = [0.5f64, 0.3, 0.2];
        let encrypted: Vec<Vec<CkksCiphertext>> = models
            .iter()
            .map(|m| encrypt_model(&ctx, &pk, m, &mut rng).expect("encrypt"))
            .collect();
        let global = homomorphic_weighted_average(&ctx, &encrypted, &weights).expect("aggregate");
        let back = decrypt_model(&ctx, &sk, &global, 100).expect("decrypt");
        let expected = 0.5 * 1.0 + 0.3 * 5.0 + 0.2 * 9.0;
        for v in &back {
            assert!((v - expected as f32).abs() < 1e-2, "{v} vs {expected}");
        }
    }

    #[test]
    fn weighted_average_rejects_mismatched_weights() {
        let (ctx, _, pk, mut rng) = setup();
        let a = encrypt_model(&ctx, &pk, &[1.0; 10], &mut rng).expect("encrypt");
        assert!(homomorphic_weighted_average(&ctx, &[a], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn aggregation_rejects_inconsistent_counts() {
        let (ctx, _, pk, mut rng) = setup();
        let a = encrypt_model(&ctx, &pk, &vec![1.0; 300], &mut rng).expect("encrypt");
        let b = encrypt_model(&ctx, &pk, &vec![1.0; 600], &mut rng).expect("encrypt");
        assert!(homomorphic_average(&ctx, &[a, b]).is_err());
        assert!(homomorphic_average(&ctx, &[]).is_err());
    }

    #[test]
    fn interleaved_single_model_round_trip_is_exact_quantization() {
        let (ctx, sk, pk, mut rng) = setup();
        let cfg = PackingConfig::interleaved(8, 1.0, 4);
        let flat: Vec<f32> = (0..700).map(|i| (i as f32 * 0.013).sin()).collect();
        let cts = encrypt_model_with(&ctx, &pk, &flat, &cfg, &mut rng).expect("encrypt");
        assert_eq!(cts.len(), ciphertexts_needed_with(&cfg, 700, ctx.slot_count()));
        let back = decrypt_model_with(&ctx, &sk, &cts, 700, &cfg).expect("decrypt");
        // k = 1: the round trip must reproduce quantize→dequantize
        // exactly — CKKS noise is absorbed by the integer rounding.
        let qmax = 127.0f32;
        for (a, b) in flat.iter().zip(&back) {
            let expected = (a * qmax).round().clamp(-qmax, qmax) / qmax;
            assert_eq!(*b, expected, "coordinate {a}");
        }
    }

    #[test]
    fn interleaved_sum_recovers_mean_within_quantization_error() {
        let (ctx, sk, pk, mut rng) = setup();
        let p = 4;
        let cfg = PackingConfig::interleaved(8, 1.0, p);
        let models: Vec<Vec<f32>> = (0..p)
            .map(|c| (0..300).map(|i| ((c * 300 + i) as f32 * 0.01).cos() * 0.9).collect())
            .collect();
        let encrypted: Vec<Vec<CkksCiphertext>> = models
            .iter()
            .map(|m| encrypt_model_with(&ctx, &pk, m, &cfg, &mut rng).expect("encrypt"))
            .collect();
        let global = homomorphic_sum(&ctx, &encrypted).expect("sum");
        let back = decrypt_model_with(&ctx, &sk, &global, 300, &cfg).expect("decrypt");
        // The counter lane carried k = 4, so the mean comes back within
        // one quantization step of the plaintext FedAvg.
        let step = 1.0f32 / 127.0;
        for i in 0..300 {
            let expected: f32 = models.iter().map(|m| m[i]).sum::<f32>() / p as f32;
            assert!((back[i] - expected).abs() <= step, "param {i}: {} vs {expected}", back[i]);
        }
    }

    #[test]
    fn interleaved_partial_quorum_self_describes() {
        // Sum only 3 of the 4 provisioned clients: the counter lane
        // must report 3 and the mean divide by 3, no side channel.
        let (ctx, sk, pk, mut rng) = setup();
        let cfg = PackingConfig::interleaved(8, 1.0, 4);
        let models: Vec<Vec<f32>> = vec![vec![0.3; 50], vec![0.6; 50], vec![-0.3; 50]];
        let encrypted: Vec<Vec<CkksCiphertext>> = models
            .iter()
            .map(|m| encrypt_model_with(&ctx, &pk, m, &cfg, &mut rng).expect("encrypt"))
            .collect();
        let global = homomorphic_sum(&ctx, &encrypted).expect("sum");
        let back = decrypt_model_with(&ctx, &sk, &global, 50, &cfg).expect("decrypt");
        for v in &back {
            assert!((v - 0.2).abs() <= 1.0 / 127.0, "{v}");
        }
    }

    #[test]
    fn interleaved_cuts_ciphertexts_and_bytes_for_2000_params() {
        let (ctx, _, pk, mut rng) = setup();
        let dense = PackingConfig::dense();
        let cfg = PackingConfig::interleaved(8, 1.0, 4);
        let slots = ctx.slot_count();
        let dense_cts = ciphertexts_needed_with(&dense, 2000, slots);
        let inter_cts = ciphertexts_needed_with(&cfg, 2000, slots);
        assert_eq!(dense_cts, ciphertexts_needed(2000, slots));
        // 3 lanes/slot at bits=8, P=4: ⌈(1 + ⌈2000/3⌉)/256⌉ = 3 vs 8.
        assert!(inter_cts < dense_cts, "{inter_cts} vs {dense_cts}");
        assert!(
            upload_bytes_canonical_with(&ctx, &cfg, 2000)
                < upload_bytes_canonical_with(&ctx, &dense, 2000)
        );
        assert!(
            upload_bytes_seeded_with(&ctx, &cfg, 2000)
                < upload_bytes_seeded_with(&ctx, &dense, 2000)
        );
        assert_eq!(
            upload_bytes_canonical_with(&ctx, &dense, 2000),
            upload_bytes_canonical(&ctx, 2000)
        );
        // The analytical byte model must reconcile exactly with a real
        // serialized upload (EXPERIMENTS.md Table I accounting).
        let flat: Vec<f32> = (0..2000).map(|i| ((i % 89) as f32 / 89.0) - 0.5).collect();
        let cts = encrypt_model_with(&ctx, &pk, &flat, &cfg, &mut rng).expect("encrypt");
        assert_eq!(cts.len(), inter_cts);
        assert_eq!(
            cts.iter().map(|ct| ctx.serialize(ct).len()).sum::<usize>(),
            upload_bytes_canonical_with(&ctx, &cfg, 2000),
            "serialized interleaved upload diverged from the analytical model"
        );
    }

    #[test]
    fn interleaved_symmetric_uploads_stay_seeded() {
        let (ctx, sk, _, mut rng) = setup();
        let cfg = PackingConfig::interleaved(8, 1.0, 2);
        let flat: Vec<f32> = (0..100).map(|i| (i as f32 * 0.07).sin()).collect();
        let cts = encrypt_model_symmetric_with(&ctx, &sk, &flat, &cfg, &mut rng).expect("encrypt");
        assert!(cts.iter().all(rhychee_fhe::ckks::CkksCiphertext::is_seeded));
        assert_eq!(
            upload_bytes_seeded_with(&ctx, &cfg, 100),
            cts.iter().map(|ct| ctx.serialize_seeded(ct).expect("seeded").len()).sum::<usize>()
        );
        let back = decrypt_model_with(&ctx, &sk, &cts, 100, &cfg).expect("decrypt");
        for (a, b) in flat.iter().zip(&back) {
            assert!((a - b).abs() <= 0.5 / 127.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn interleaved_rejects_bad_configs_and_counters() {
        let (ctx, sk, pk, mut rng) = setup();
        let flat = vec![0.5f32; 10];
        // Invalid configs refuse to encrypt.
        for bad in [
            PackingConfig::interleaved(1, 1.0, 4),
            PackingConfig::interleaved(31, 1.0, 4),
            PackingConfig::interleaved(8, 0.0, 4),
            PackingConfig::interleaved(8, f32::NAN, 4),
            PackingConfig::interleaved(8, 1.0, 0),
        ] {
            assert!(encrypt_model_with(&ctx, &pk, &flat, &bad, &mut rng).is_err(), "{bad:?}");
        }
        // Summing more uploads than max_clients overflows the counter
        // check at decrypt time.
        let cfg = PackingConfig::interleaved(8, 1.0, 2);
        let encrypted: Vec<_> = (0..3)
            .map(|_| encrypt_model_with(&ctx, &pk, &flat, &cfg, &mut rng).expect("encrypt"))
            .collect();
        let over = homomorphic_sum(&ctx, &encrypted).expect("sum");
        assert!(decrypt_model_with(&ctx, &sk, &over, 10, &cfg).is_err(), "counter > max_clients");
        // Too few ciphertexts for the declared parameter count.
        let one = encrypt_model_with(&ctx, &pk, &flat, &cfg, &mut rng).expect("encrypt");
        assert!(decrypt_model_with(&ctx, &sk, &one, 10_000, &cfg).is_err(), "short payload");
        // A dense ciphertext stream is not a packed integer stream.
        let dense_cts = encrypt_model(&ctx, &pk, &[0.37f32; 10], &mut rng).expect("encrypt");
        assert!(decrypt_model_with(&ctx, &sk, &dense_cts, 10, &cfg).is_err(), "layout mismatch");
    }

    #[test]
    fn packing_is_maximal() {
        let (ctx, _, pk, mut rng) = setup();
        // One model the size of exactly 2.5 ciphertexts.
        let n = ctx.slot_count() * 5 / 2;
        let cts = encrypt_model(&ctx, &pk, &vec![0.5; n], &mut rng).expect("encrypt");
        assert_eq!(cts.len(), 3, "⌈2.5⌉ = 3 ciphertexts, no per-row waste");
    }
}
