//! Maximum-packing of model parameters into CKKS ciphertext slots
//! (paper §IV-A step 2).
//!
//! A naive design would encrypt each class hypervector as its own
//! ciphertext, wasting most of the `N/2` slots. Rhychee-FL instead
//! flattens the whole `L × D` model and fills every slot of every
//! ciphertext, needing exactly `⌈DL / (N/2)⌉` ciphertexts.

use rand::Rng;

use rhychee_fhe::ckks::{CkksCiphertext, CkksContext, CkksPublicKey, CkksSecretKey};
use rhychee_fhe::FheError;

/// Bytes needed to upload a packed model in the canonical (full `c1`)
/// wire format.
pub fn upload_bytes_canonical(ctx: &CkksContext, num_params: usize) -> usize {
    ciphertexts_needed(num_params, ctx.slot_count()) * ctx.serialized_len(ctx.primes().len())
}

/// Bytes needed to upload a packed model in the seed-compressed format
/// (fresh symmetric ciphertexts only): roughly half the canonical size,
/// since a 32-byte seed stands in for the full `c1` component.
pub fn upload_bytes_seeded(ctx: &CkksContext, num_params: usize) -> usize {
    ciphertexts_needed(num_params, ctx.slot_count()) * ctx.serialized_len_seeded(ctx.primes().len())
}

/// Splits a flat parameter vector into slot-sized chunks (the last chunk
/// zero-padded implicitly by the encoder).
pub fn chunk_params(flat: &[f32], slots: usize) -> Vec<Vec<f64>> {
    assert!(slots > 0, "slot count must be positive");
    flat.chunks(slots).map(|c| c.iter().map(|&v| f64::from(v)).collect()).collect()
}

/// Number of ciphertexts required for `num_params` parameters:
/// `⌈DL / (N/2)⌉`.
pub fn ciphertexts_needed(num_params: usize, slots: usize) -> usize {
    num_params.div_ceil(slots)
}

/// Encrypts a flat model with maximum packing under the public key.
///
/// # Errors
///
/// Propagates [`FheError`] from encryption.
pub fn encrypt_model<R: Rng + ?Sized>(
    ctx: &CkksContext,
    pk: &CkksPublicKey,
    flat: &[f32],
    rng: &mut R,
) -> Result<Vec<CkksCiphertext>, FheError> {
    let chunks = chunk_params(flat, ctx.slot_count());
    // The RNG draws happen sequentially in chunk order — exactly the
    // stream `ctx.encrypt` would consume — so the ciphertexts are
    // bit-identical for every parallelism degree; only the
    // deterministic polynomial arithmetic fans out.
    let noises: Vec<_> = chunks.iter().map(|_| ctx.sample_encrypt_noise(rng)).collect();
    rhychee_par::map(ctx.parallelism(), chunks.len(), |i| {
        ctx.encrypt_with_noise(pk, &chunks[i], &noises[i])
    })
    .into_iter()
    .collect()
}

/// Encrypts a flat model with maximum packing under the *secret* key,
/// producing seeded ciphertexts eligible for the seed-compressed wire
/// format ([`rhychee_fhe::ckks::CkksContext::serialize_seeded`]).
///
/// Rhychee-FL's shared-secret-key deployment (paper §IV-A) lets every
/// client encrypt symmetrically, so uploads can ship a 32-byte seed in
/// place of the full `c1` polynomial — roughly halving upload bytes.
///
/// # Errors
///
/// Propagates [`FheError`] from encryption.
pub fn encrypt_model_symmetric<R: Rng + ?Sized>(
    ctx: &CkksContext,
    sk: &CkksSecretKey,
    flat: &[f32],
    rng: &mut R,
) -> Result<Vec<CkksCiphertext>, FheError> {
    let chunks = chunk_params(flat, ctx.slot_count());
    // Same sequential-draw / parallel-arithmetic split as
    // `encrypt_model`: seeds and noise come off the RNG in chunk order,
    // so the ciphertexts are bit-identical for every parallelism degree.
    let noises: Vec<_> = chunks.iter().map(|_| ctx.sample_symmetric_noise(rng)).collect();
    rhychee_par::map(ctx.parallelism(), chunks.len(), |i| {
        ctx.encrypt_symmetric_with_noise(sk, &chunks[i], &noises[i])
    })
    .into_iter()
    .collect()
}

/// Decrypts a packed model back to a flat parameter vector of length
/// `num_params`.
///
/// # Errors
///
/// Returns [`FheError::Deserialize`] if the ciphertexts carry fewer
/// than `num_params` slots — e.g. a truncated or mismatched payload
/// received over the wire.
pub fn decrypt_model(
    ctx: &CkksContext,
    sk: &CkksSecretKey,
    cts: &[CkksCiphertext],
    num_params: usize,
) -> Result<Vec<f32>, FheError> {
    // Ciphertexts decrypt independently; concatenation order is fixed,
    // so the flat model is bit-identical for every degree.
    let decrypted = rhychee_par::map(ctx.parallelism(), cts.len(), |i| ctx.decrypt(sk, &cts[i]));
    let mut flat = Vec::with_capacity(num_params);
    for values in decrypted {
        for v in values {
            if flat.len() == num_params {
                break;
            }
            flat.push(v as f32);
        }
    }
    if flat.len() != num_params {
        return Err(FheError::Deserialize(format!(
            "ciphertexts carry {} parameters, expected {num_params}",
            flat.len()
        )));
    }
    Ok(flat)
}

/// Homomorphically averages packed models from several clients:
/// `HomMul(Σᵢ Enc(LMᵢ), 1/P)` (paper Eq. 2), ciphertext by ciphertext.
///
/// # Errors
///
/// Returns [`FheError`] if clients submitted inconsistent ciphertext
/// counts or incompatible ciphertexts.
pub fn homomorphic_average(
    ctx: &CkksContext,
    client_models: &[Vec<CkksCiphertext>],
) -> Result<Vec<CkksCiphertext>, FheError> {
    let p = client_models.len();
    if p == 0 {
        return Err(FheError::InvalidParams("no client models to aggregate".into()));
    }
    homomorphic_weighted_average(ctx, client_models, &vec![1.0 / p as f64; p])
}

/// Homomorphically computes a weighted average `Σᵢ wᵢ · Enc(LMᵢ)`.
///
/// Generalizes [`homomorphic_average`] to sample-count-weighted FedAvg
/// (McMahan et al.): each client's ciphertexts are scaled by its public
/// plaintext weight before summation. Weights must sum to ≈ 1 so the
/// result stays in the global model's dynamic range.
///
/// # Errors
///
/// Returns [`FheError`] on empty input, mismatched weight/model counts,
/// inconsistent ciphertext counts, or incompatible ciphertexts.
pub fn homomorphic_weighted_average(
    ctx: &CkksContext,
    client_models: &[Vec<CkksCiphertext>],
    weights: &[f64],
) -> Result<Vec<CkksCiphertext>, FheError> {
    if client_models.is_empty() {
        return Err(FheError::InvalidParams("no client models to aggregate".into()));
    }
    if client_models.len() != weights.len() {
        return Err(FheError::InvalidParams(format!(
            "{} models but {} weights",
            client_models.len(),
            weights.len()
        )));
    }
    let chunks = client_models[0].len();
    if client_models.iter().any(|m| m.len() != chunks) {
        return Err(FheError::InvalidParams(
            "clients submitted differing ciphertext counts".into(),
        ));
    }
    // Chunks aggregate independently; within a chunk, clients are
    // accumulated in submission order, so the packed global model is
    // bit-identical for every parallelism degree.
    rhychee_par::map(ctx.parallelism(), chunks, |chunk_idx| {
        let mut acc = ctx.mul_scalar(&client_models[0][chunk_idx], weights[0]);
        for (client, &w) in client_models[1..].iter().zip(&weights[1..]) {
            let scaled = ctx.mul_scalar(&client[chunk_idx], w);
            ctx.add_assign(&mut acc, &scaled)?;
        }
        Ok(acc)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rhychee_fhe::params::CkksParams;

    fn setup() -> (CkksContext, CkksSecretKey, CkksPublicKey, StdRng) {
        let ctx = CkksContext::new(CkksParams::toy()).expect("valid");
        let mut rng = StdRng::seed_from_u64(1);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        (ctx, sk, pk, rng)
    }

    #[test]
    fn chunking_covers_all_params() {
        let flat: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let chunks = chunk_params(&flat, 256);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 256);
        assert_eq!(chunks[3].len(), 1000 - 3 * 256);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 1000);
    }

    #[test]
    fn ciphertext_count_formula() {
        // The paper's headline numbers: D·L = 20,000 at N/2 = 4096 slots
        // → 5 ciphertexts; the 43,484-param CNN → 11.
        assert_eq!(ciphertexts_needed(20_000, 4096), 5);
        assert_eq!(ciphertexts_needed(43_484, 4096), 11);
        assert_eq!(ciphertexts_needed(1, 4096), 1);
        assert_eq!(ciphertexts_needed(4096, 4096), 1);
        assert_eq!(ciphertexts_needed(4097, 4096), 2);
    }

    #[test]
    fn encrypt_decrypt_model_round_trip() {
        let (ctx, sk, pk, mut rng) = setup();
        let flat: Vec<f32> = (0..700).map(|i| (i as f32 * 0.01).sin()).collect();
        let cts = encrypt_model(&ctx, &pk, &flat, &mut rng).expect("encrypt");
        assert_eq!(cts.len(), ciphertexts_needed(700, ctx.slot_count()));
        let back = decrypt_model(&ctx, &sk, &cts, 700).expect("decrypt");
        for (a, b) in flat.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn symmetric_model_round_trip_and_seeded_bytes() {
        let (ctx, sk, _, mut rng) = setup();
        let flat: Vec<f32> = (0..700).map(|i| (i as f32 * 0.01).cos()).collect();
        let cts = encrypt_model_symmetric(&ctx, &sk, &flat, &mut rng).expect("encrypt");
        assert!(cts.iter().all(rhychee_fhe::ckks::CkksCiphertext::is_seeded));
        let back = decrypt_model(&ctx, &sk, &cts, 700).expect("decrypt");
        for (a, b) in flat.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // The seeded wire format carries one packed component instead of
        // two, so a full-model upload shrinks by ~2×.
        let canonical = upload_bytes_canonical(&ctx, 700);
        let seeded = upload_bytes_seeded(&ctx, 700);
        assert_eq!(
            seeded,
            cts.iter().map(|ct| ctx.serialize_seeded(ct).expect("seeded").len()).sum::<usize>()
        );
        assert!(seeded * 2 < canonical + 128 * cts.len(), "{seeded} vs {canonical}");
    }

    #[test]
    fn homomorphic_average_matches_plaintext() {
        let (ctx, sk, pk, mut rng) = setup();
        let p = 4;
        let models: Vec<Vec<f32>> = (0..p)
            .map(|c| (0..300).map(|i| ((c * 300 + i) as f32 * 0.01).cos()).collect())
            .collect();
        let encrypted: Vec<Vec<CkksCiphertext>> = models
            .iter()
            .map(|m| encrypt_model(&ctx, &pk, m, &mut rng).expect("encrypt"))
            .collect();
        let global = homomorphic_average(&ctx, &encrypted).expect("aggregate");
        let back = decrypt_model(&ctx, &sk, &global, 300).expect("decrypt");
        for i in 0..300 {
            let expected: f32 = models.iter().map(|m| m[i]).sum::<f32>() / p as f32;
            assert!((back[i] - expected).abs() < 1e-2, "param {i}: {} vs {expected}", back[i]);
        }
    }

    #[test]
    fn weighted_average_matches_plaintext() {
        let (ctx, sk, pk, mut rng) = setup();
        let models: Vec<Vec<f32>> = vec![vec![1.0; 100], vec![5.0; 100], vec![9.0; 100]];
        let weights = [0.5f64, 0.3, 0.2];
        let encrypted: Vec<Vec<CkksCiphertext>> = models
            .iter()
            .map(|m| encrypt_model(&ctx, &pk, m, &mut rng).expect("encrypt"))
            .collect();
        let global = homomorphic_weighted_average(&ctx, &encrypted, &weights).expect("aggregate");
        let back = decrypt_model(&ctx, &sk, &global, 100).expect("decrypt");
        let expected = 0.5 * 1.0 + 0.3 * 5.0 + 0.2 * 9.0;
        for v in &back {
            assert!((v - expected as f32).abs() < 1e-2, "{v} vs {expected}");
        }
    }

    #[test]
    fn weighted_average_rejects_mismatched_weights() {
        let (ctx, _, pk, mut rng) = setup();
        let a = encrypt_model(&ctx, &pk, &[1.0; 10], &mut rng).expect("encrypt");
        assert!(homomorphic_weighted_average(&ctx, &[a], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn aggregation_rejects_inconsistent_counts() {
        let (ctx, _, pk, mut rng) = setup();
        let a = encrypt_model(&ctx, &pk, &vec![1.0; 300], &mut rng).expect("encrypt");
        let b = encrypt_model(&ctx, &pk, &vec![1.0; 600], &mut rng).expect("encrypt");
        assert!(homomorphic_average(&ctx, &[a, b]).is_err());
        assert!(homomorphic_average(&ctx, &[]).is_err());
    }

    #[test]
    fn packing_is_maximal() {
        let (ctx, _, pk, mut rng) = setup();
        // One model the size of exactly 2.5 ciphertexts.
        let n = ctx.slot_count() * 5 / 2;
        let cts = encrypt_model(&ctx, &pk, &vec![0.5; n], &mut rng).expect("encrypt");
        assert_eq!(cts.len(), 3, "⌈2.5⌉ = 3 ciphertexts, no per-row waste");
    }
}
