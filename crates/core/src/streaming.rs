//! Streaming homomorphic aggregation: fold each encrypted upload into
//! the running sum *as its frame arrives*, instead of collecting every
//! client's ciphertexts and aggregating after quorum.
//!
//! The batch path ([`packing::homomorphic_weighted_average`]) computes,
//! per residue, `Σᵢ (e·xᵢ) mod q` with `e = round(w·Δ)` — scaling each
//! upload and then adding in client-id order. The streaming path keeps
//! the raw modular sum `Σᵢ xᵢ` (folded zero-copy from wire bytes via
//! [`CkksContext::fold_view`]) and applies one `mul_scalar(·, w)` at
//! round close: `e·Σᵢxᵢ ≡ Σᵢ(e·xᵢ) (mod q)` by ring distributivity,
//! and modular addition is exactly associative and commutative, so the
//! closed sum is **bit-identical** to the batch aggregate for every
//! arrival order and parallelism degree (locked in by
//! tests/parallel_determinism.rs).
//!
//! Two consequences shape the API:
//!
//! * only uniform-weight rules stream ([`Aggregation::FedAvg`],
//!   [`Aggregation::FedProx`]): [`Aggregation::FedNova`] weights each
//!   client by its step count, unknown until the round closes, so
//!   [`StreamingAggregator::new`] rejects it and servers fall back to
//!   the batch reference path (as they do for plaintext `f32` models,
//!   whose float addition is not associative);
//! * the aggregator holds exactly one accumulator ciphertext per model
//!   chunk — server memory is O(1) in client count. Uploads live only
//!   for the duration of their fold.
//!
//! [`packing::homomorphic_weighted_average`]: crate::packing::homomorphic_weighted_average

use std::sync::atomic::{AtomicU64, Ordering};

use rhychee_fhe::ckks::{CkksCiphertext, CkksContext, CtView};
use rhychee_telemetry as telemetry;

use crate::config::Aggregation;
use crate::error::FlError;

/// Process-wide bytes held by live streaming accumulators, feeding the
/// `core.stream_accum` entry of the memory breakdown. Charged when an
/// aggregator materializes its per-chunk sums, released on drop.
static ACCUM_BYTES: AtomicU64 = AtomicU64::new(0);

/// Bytes currently held by live [`StreamingAggregator`] accumulators.
pub fn accumulator_bytes() -> u64 {
    ACCUM_BYTES.load(Ordering::Relaxed)
}

/// Incremental replacement for collect-then-aggregate: one accumulator
/// ciphertext per model chunk, a fold per arriving upload, one scalar
/// multiplication at close.
///
/// Acceptance semantics mirror [`ServerRound::accept`]: wrong-round and
/// duplicate uploads are rejected (`Ok(false)`, the caller NACKs them)
/// without touching the accumulator, and a fold that succeeded stays in
/// the sum even if its client later disconnects — exactly the batch
/// path's quorum accounting. [`StreamingAggregator::retract_upload`]
/// exists for deployments that prefer the opposite policy; it subtracts
/// a folded contribution back out bit-exactly.
///
/// [`ServerRound::accept`]: crate::round::ServerRound::accept
#[derive(Debug)]
pub struct StreamingAggregator {
    round: usize,
    acc: Vec<CkksCiphertext>,
    client_ids: Vec<usize>,
}

impl StreamingAggregator {
    /// Whether `aggregation` can stream at all: true for the
    /// uniform-weight rules, false for [`Aggregation::FedNova`] (its
    /// per-client weights are unknown until every step count is in).
    pub fn supports(aggregation: Aggregation) -> bool {
        !matches!(aggregation, Aggregation::FedNova)
    }

    /// Creates an empty aggregator for `round`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] when `aggregation` cannot
    /// stream (see [`StreamingAggregator::supports`]); use the batch
    /// path instead.
    pub fn new(round: usize, aggregation: Aggregation) -> Result<Self, FlError> {
        if !Self::supports(aggregation) {
            return Err(FlError::InvalidConfig(
                "FedNova weights depend on step counts unknown until round close; \
                 use the batch aggregation path"
                    .into(),
            ));
        }
        telemetry::mem::register_source("core.stream_accum", accumulator_bytes);
        Ok(StreamingAggregator { round, acc: Vec::new(), client_ids: Vec::new() })
    }

    /// Heap bytes this aggregator's accumulator ciphertexts hold — the
    /// O(1)-in-client-count resident cost of the streaming path.
    pub fn heap_bytes(&self) -> u64 {
        self.acc.iter().map(CkksCiphertext::heap_bytes).sum()
    }

    /// The round this aggregator folds for.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Uploads folded into the sum so far. Matches the batch path's
    /// `received()`: a fold is never un-counted by a later disconnect.
    pub fn received(&self) -> usize {
        self.client_ids.len()
    }

    /// Ids of the clients whose uploads were folded, in arrival order.
    pub fn client_ids(&self) -> &[usize] {
        &self.client_ids
    }

    /// Folds one client's upload (one view per model chunk) into the
    /// running sum, zero-copy from the wire bytes.
    ///
    /// Returns `Ok(false)` — a NACK, accumulator untouched — for a
    /// wrong-round upload, a duplicate client id, an empty or
    /// wrong-chunk-count payload, or chunks incompatible with the
    /// accumulator (level/scale/domain). Every view is checked *before*
    /// any chunk folds, so a rejected upload can never leave the sum
    /// half-updated. Chunks fold in parallel at the context's
    /// [`Parallelism`](rhychee_par::Parallelism); each chunk owns its
    /// accumulator slot, so the result is degree-independent.
    ///
    /// # Errors
    ///
    /// This method itself never errors; the `Result` keeps the
    /// signature open for future invariant checks that would need
    /// [`FlError::StreamingAbort`].
    pub fn fold_upload(
        &mut self,
        ctx: &CkksContext,
        client_id: usize,
        round: usize,
        views: &[CtView<'_>],
    ) -> Result<bool, FlError> {
        if round != self.round || self.client_ids.contains(&client_id) || views.is_empty() {
            return Ok(false);
        }
        if self.acc.is_empty() {
            // First accepted upload defines the model shape; its own
            // all-zero accumulators are compatible by construction.
            self.acc = views.iter().map(|v| ctx.accumulator_for(v)).collect();
            ACCUM_BYTES.fetch_add(self.heap_bytes(), Ordering::Relaxed);
        } else {
            if views.len() != self.acc.len() {
                return Ok(false);
            }
            if self.acc.iter().zip(views).any(|(ct, v)| ctx.check_view(ct, v).is_err()) {
                return Ok(false);
            }
        }
        rhychee_par::for_each_mut(ctx.parallelism(), &mut self.acc, |i, ct| {
            ctx.fold_view(ct, &views[i]).expect("views validated before folding");
        });
        self.client_ids.push(client_id);
        telemetry::count("fl.agg.folds", 1);
        Ok(true)
    }

    /// Retracts a previously folded upload — the exact modular inverse
    /// of [`StreamingAggregator::fold_upload`], for policies that evict
    /// a dropped client's contribution instead of keeping it. Requires
    /// the same views that were folded (the aggregator keeps none, by
    /// design: that is the O(1) memory claim).
    ///
    /// Returns `Ok(false)` when `client_id` was never folded.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::StreamingAbort`] when the views no longer
    /// match the accumulator shape — a folded-then-mismatched retract
    /// means the sum can no longer be trusted and the round must
    /// restart.
    pub fn retract_upload(
        &mut self,
        ctx: &CkksContext,
        client_id: usize,
        views: &[CtView<'_>],
    ) -> Result<bool, FlError> {
        let Some(pos) = self.client_ids.iter().position(|&id| id == client_id) else {
            return Ok(false);
        };
        if views.len() != self.acc.len()
            || self.acc.iter().zip(views).any(|(ct, v)| ctx.check_view(ct, v).is_err())
        {
            return Err(FlError::StreamingAbort(format!(
                "retract of client {client_id} does not match the folded accumulator shape"
            )));
        }
        rhychee_par::for_each_mut(ctx.parallelism(), &mut self.acc, |i, ct| {
            ctx.unfold_view(ct, &views[i]).expect("views validated before unfolding");
        });
        self.client_ids.remove(pos);
        Ok(true)
    }

    /// Closes the round: applies the uniform weight `1/P` to each chunk
    /// of the summed ciphertexts and returns the aggregate — the same
    /// `HomMul(Σᵢ Enc(LMᵢ), 1/P)` as the batch path (paper Eq. 2),
    /// byte-identical to it.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::StreamingAbort`] when no upload was ever
    /// folded (callers enforce quorum before closing, so this is an
    /// invariant breach, not a recoverable state).
    pub fn finish(self, ctx: &CkksContext) -> Result<Vec<CkksCiphertext>, FlError> {
        if self.client_ids.is_empty() {
            return Err(FlError::StreamingAbort(
                "closing a streamed round that folded no uploads".into(),
            ));
        }
        let w = 1.0 / self.client_ids.len() as f64;
        Ok(rhychee_par::map(ctx.parallelism(), self.acc.len(), |i| ctx.mul_scalar(&self.acc[i], w)))
    }

    /// Closes the round *without* the `1/P` plaintext multiply,
    /// returning the raw encrypted sum — the finalizer for
    /// bit-interleaved uploads, whose packed lanes a `mul_scalar` would
    /// smear across boundaries. The contributor count rides in-band
    /// (counter lane), so decryption recovers the mean on its own.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::StreamingAbort`] when no upload was ever
    /// folded, exactly as [`StreamingAggregator::finish`].
    pub fn finish_sum(self) -> Result<Vec<CkksCiphertext>, FlError> {
        if self.client_ids.is_empty() {
            return Err(FlError::StreamingAbort(
                "closing a streamed round that folded no uploads".into(),
            ));
        }
        Ok(self.acc.clone())
    }
}

impl Drop for StreamingAggregator {
    fn drop(&mut self) {
        // The accumulator shape is fixed at first fold, so the bytes
        // charged there are exactly what is released here.
        ACCUM_BYTES.fetch_sub(self.heap_bytes(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rhychee_fhe::params::CkksParams;
    use rhychee_par::Parallelism;

    use crate::packing;

    use super::*;

    /// Per-client serialized chunk blobs (outer: client, inner: chunk).
    type Blobs = Vec<Vec<Vec<u8>>>;

    /// Encrypts `clients` random models (two chunks each) and returns
    /// `(ctx, per-client serialized chunk blobs, per-client ciphertexts)`.
    fn encrypted_uploads(
        clients: usize,
        par: Parallelism,
    ) -> (CkksContext, Blobs, Vec<Vec<CkksCiphertext>>) {
        let ctx = CkksContext::with_parallelism(CkksParams::toy(), par).expect("params");
        let mut rng = StdRng::seed_from_u64(99);
        let (_, pk) = ctx.generate_keys(&mut rng);
        let num_params = ctx.slot_count() + 7; // force two chunks
        let mut blobs = Vec::new();
        let mut models = Vec::new();
        for c in 0..clients {
            let mut crng = StdRng::seed_from_u64(1000 + c as u64);
            let flat: Vec<f32> = (0..num_params).map(|_| crng.gen_range(-1.0..1.0)).collect();
            let cts = packing::encrypt_model(&ctx, &pk, &flat, &mut crng).expect("encrypt");
            blobs.push(cts.iter().map(|ct| ctx.serialize(ct)).collect());
            models.push(cts);
        }
        (ctx, blobs, models)
    }

    #[test]
    fn finish_sum_preserves_interleaved_lanes() {
        // Fold bit-interleaved uploads and close with `finish_sum`: the
        // raw encrypted sum must decrypt to the exact per-coordinate
        // mean — the `1/P` multiply of `finish` would smear lanes.
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let mut rng = StdRng::seed_from_u64(77);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let p = 3;
        let cfg = packing::PackingConfig::interleaved(8, 1.0, p);
        let num_params = 2 * ctx.slot_count(); // multiple chunks
        let mut agg = StreamingAggregator::new(0, Aggregation::FedAvg).expect("fedavg");
        let mut plain: Vec<Vec<f32>> = Vec::new();
        for c in 0..p {
            let mut crng = StdRng::seed_from_u64(500 + c as u64);
            let flat: Vec<f32> = (0..num_params).map(|_| crng.gen_range(-1.0..1.0)).collect();
            let cts =
                packing::encrypt_model_with(&ctx, &pk, &flat, &cfg, &mut crng).expect("encrypt");
            let blobs: Vec<Vec<u8>> = cts.iter().map(|ct| ctx.serialize(ct)).collect();
            let views: Vec<CtView<'_>> =
                blobs.iter().map(|b| ctx.view_serialized(b).expect("view")).collect();
            assert!(agg.fold_upload(&ctx, c, 0, &views).expect("fold"));
            plain.push(flat);
        }
        let sum = agg.finish_sum().expect("finish");
        let back = packing::decrypt_model_with(&ctx, &sk, &sum, num_params, &cfg).expect("decrypt");
        let step = 1.0f32 / 127.0;
        for i in 0..num_params {
            let mean: f32 = plain.iter().map(|m| m[i]).sum::<f32>() / p as f32;
            assert!((back[i] - mean).abs() <= step, "param {i}: {} vs {mean}", back[i]);
        }
    }

    #[test]
    fn streamed_sum_is_bit_identical_to_batch_across_orders() {
        let (ctx, blobs, models) = encrypted_uploads(4, Parallelism::Fixed(1));
        let weights = vec![0.25; 4];
        let batch = packing::homomorphic_weighted_average(&ctx, &models, &weights).expect("batch");
        let batch_bytes: Vec<Vec<u8>> = batch.iter().map(|ct| ctx.serialize(ct)).collect();

        for order in [[0usize, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]] {
            let mut agg = StreamingAggregator::new(0, Aggregation::FedAvg).expect("fedavg");
            for &c in &order {
                let views: Vec<CtView<'_>> =
                    blobs[c].iter().map(|b| ctx.view_serialized(b).expect("view")).collect();
                assert!(agg.fold_upload(&ctx, c, 0, &views).expect("fold"));
            }
            assert_eq!(agg.received(), 4);
            let streamed = agg.finish(&ctx).expect("finish");
            let streamed_bytes: Vec<Vec<u8>> =
                streamed.iter().map(|ct| ctx.serialize(ct)).collect();
            assert_eq!(streamed_bytes, batch_bytes, "order {order:?} diverged from batch");
        }
    }

    #[test]
    fn rejects_wrong_round_duplicates_and_shape_mismatches() {
        let (ctx, blobs, _) = encrypted_uploads(2, Parallelism::Fixed(1));
        let mut agg = StreamingAggregator::new(3, Aggregation::FedProx { mu: 0.1 }).expect("prox");
        let views: Vec<CtView<'_>> =
            blobs[0].iter().map(|b| ctx.view_serialized(b).expect("view")).collect();
        assert!(!agg.fold_upload(&ctx, 0, 2, &views).expect("wrong round"), "wrong round NACKs");
        assert!(agg.fold_upload(&ctx, 0, 3, &views).expect("fold"));
        assert!(!agg.fold_upload(&ctx, 0, 3, &views).expect("dup"), "duplicate NACKs");
        // Wrong chunk count: one view instead of two.
        assert!(!agg.fold_upload(&ctx, 1, 3, &views[..1]).expect("short"), "short payload NACKs");
        assert!(!agg.fold_upload(&ctx, 1, 3, &[]).expect("empty"), "empty payload NACKs");
        assert_eq!(agg.received(), 1);
        assert_eq!(agg.client_ids(), &[0]);
    }

    #[test]
    fn fednova_cannot_stream() {
        let err = StreamingAggregator::new(0, Aggregation::FedNova).expect_err("rejected");
        assert!(matches!(err, FlError::InvalidConfig(_)));
        assert!(!StreamingAggregator::supports(Aggregation::FedNova));
        assert!(StreamingAggregator::supports(Aggregation::FedAvg));
    }

    #[test]
    fn finishing_an_empty_round_aborts() {
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let agg = StreamingAggregator::new(0, Aggregation::FedAvg).expect("fedavg");
        let err = agg.finish(&ctx).expect_err("no uploads");
        assert!(matches!(err, FlError::StreamingAbort(_)));
        assert!(err.to_string().contains("streaming aggregation aborted"));
    }

    #[test]
    fn accumulator_bytes_track_aggregator_lifetime() {
        let (ctx, blobs, _) = encrypted_uploads(1, Parallelism::Fixed(1));
        let mut agg = StreamingAggregator::new(0, Aggregation::FedAvg).expect("fedavg");
        assert_eq!(agg.heap_bytes(), 0, "no accumulator before the first fold");
        let views: Vec<CtView<'_>> =
            blobs[0].iter().map(|b| ctx.view_serialized(b).expect("view")).collect();
        assert!(agg.fold_upload(&ctx, 0, 0, &views).expect("fold"));
        let held = agg.heap_bytes();
        assert!(held > 0, "materialized accumulator holds heap bytes");
        // The global counter is Σ bytes of live aggregators, so while
        // ours is alive it must cover at least our contribution — true
        // even with sibling tests charging/releasing concurrently.
        let charged = accumulator_bytes();
        assert!(charged >= held, "global counter covers this aggregator: {charged} < {held}");
    }

    #[test]
    fn retract_restores_the_sum_exactly() {
        let (ctx, blobs, models) = encrypted_uploads(3, Parallelism::Auto);
        let mut agg = StreamingAggregator::new(0, Aggregation::FedAvg).expect("fedavg");
        for (c, blob) in blobs.iter().enumerate() {
            let views: Vec<CtView<'_>> =
                blob.iter().map(|b| ctx.view_serialized(b).expect("view")).collect();
            assert!(agg.fold_upload(&ctx, c, 0, &views).expect("fold"));
        }
        // Retract client 1: the close must equal a batch over {0, 2}.
        let views1: Vec<CtView<'_>> =
            blobs[1].iter().map(|b| ctx.view_serialized(b).expect("view")).collect();
        assert!(agg.retract_upload(&ctx, 1, &views1).expect("retract"));
        assert!(!agg.retract_upload(&ctx, 1, &views1).expect("gone"), "double retract NACKs");
        assert_eq!(agg.received(), 2);
        let streamed = agg.finish(&ctx).expect("finish");

        let subset = vec![models[0].clone(), models[2].clone()];
        let batch =
            packing::homomorphic_weighted_average(&ctx, &subset, &[0.5, 0.5]).expect("batch");
        for (s, b) in streamed.iter().zip(&batch) {
            assert_eq!(ctx.serialize(s), ctx.serialize(b));
        }
    }
}
