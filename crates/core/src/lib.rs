//! # Rhychee-FL core
//!
//! The paper's primary contribution: a privacy-preserving federated-
//! learning framework combining hyperdimensional computing (HDC) with
//! fully homomorphic encryption (FHE).
//!
//! One aggregation round (paper Fig. 1):
//!
//! 1. **Local training** — each client updates its class hypervectors on
//!    its local shard (Eq. 1);
//! 2. **Local model collection** — clients encrypt their models under a
//!    shared CKKS key with *maximum slot packing* and upload them;
//! 3. **Homomorphic aggregation** — the server computes
//!    `HomMul(Σᵢ Enc(LMᵢ), 1/P)` without decrypting (Eq. 2);
//! 4. **Global model distribution** — clients decrypt the new global
//!    model and continue.
//!
//! Modules:
//!
//! * [`config`] — run configuration (builder; paper defaults)
//! * [`framework`] — the orchestrator with plaintext / CKKS / LWE
//!   pipelines
//! * [`packing`] — maximum ciphertext packing (⌈DL/(N/2)⌉ ciphertexts)
//! * [`round`] — reusable `ClientLocal`/`ServerRound` building blocks
//!   (shared with the networked `rhychee-net` runtime)
//! * [`streaming`] — [`StreamingAggregator`]: per-frame zero-copy
//!   folding of encrypted uploads, bit-identical to batch aggregation
//! * [`nn_fl`] — CNN / MLP / logistic-regression FedAvg baselines
//! * [`noisy`] — end-to-end encrypted FL across a noisy packet channel
//! * [`error`] — framework errors
//!
//! # Examples
//!
//! ```
//! use rhychee_core::{FlConfig, Framework};
//! use rhychee_data::{DatasetKind, SyntheticConfig};
//! use rhychee_fhe::params::CkksParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SyntheticConfig::small(DatasetKind::Har).generate(1)?;
//! let config = FlConfig::builder().clients(4).rounds(2).hd_dim(256).seed(1).build()?;
//! // The full encrypted pipeline; use `hdc_plaintext` for ablations.
//! let mut fed = Framework::hdc_encrypted(config, &data, CkksParams::toy())?;
//! let report = fed.run()?;
//! println!("final accuracy: {:.3}", report.final_accuracy);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod error;
pub mod framework;
pub mod nn_fl;
pub mod noisy;
pub mod packing;
pub mod round;
pub mod streaming;

pub use config::{Aggregation, EncoderKind, FlConfig, FlConfigBuilder};
pub use error::FlError;
pub use framework::{Framework, RoundHooks, RoundReport, RunReport};
pub use nn_fl::{NnFederation, NnModelKind, SgdConfig};
pub use noisy::{ChannelStats, NoisyChannelConfig, NoisyFederation};
pub use rhychee_par::Parallelism;
pub use round::{
    client_rng, derive_ckks_keys, prepare, ClientLocal, ClientUpdate, FedSetup, ServerRound,
};
pub use streaming::StreamingAggregator;
