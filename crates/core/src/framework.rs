//! The Rhychee-FL orchestrator: clients, server, and the per-round
//! aggregation loop of paper §IV-A.
//!
//! Supports three transport pipelines over the same HDC learner:
//!
//! * **plaintext** — FedAvg on raw parameters (the paper's Fig. 2/3
//!   accuracy studies, "conducted in non-encrypted data");
//! * **CKKS** — packed RLWE ciphertexts, homomorphic averaging (Eq. 2);
//! * **LWE/TFHE** — per-parameter ciphertexts with fixed-point
//!   quantization (the design-space alternative of Table I).
//!
//! The per-round mechanics live in [`crate::round`]
//! ([`ClientLocal`]/[`ServerRound`]) and are shared with the networked
//! runtime in `rhychee-net`; this type wires them together in a single
//! process. Because every randomness stream is salted off the run seed
//! (see [`crate::round`]), a networked run reproduces this framework's
//! global model bit for bit.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rhychee_telemetry as telemetry;

use rhychee_data::TrainTest;
use rhychee_fhe::ckks::{CkksContext, CkksPublicKey, CkksSecretKey};
use rhychee_fhe::lwe::{LweContext, LweSecretKey};
use rhychee_fhe::params::{CkksParams, LweParams};
use rhychee_hdc::model::{EncodedDataset, HdcModel};
use rhychee_hdc::quantize::QuantizedModel;

use crate::config::FlConfig;
use crate::error::FlError;
use crate::packing;
use crate::round::{self, ClientLocal, ClientUpdate, ServerRound};

/// Salt for the participant-sampling stream (kept apart from setup and
/// key material so pipelines can be compared round for round).
const SAMPLING_SALT: u64 = 0xA076_1D64_78BD_642F;

/// Presence hook: `(round, participant ids)`; edits the list in place.
pub type PresenceHook = Box<dyn FnMut(usize, &mut Vec<usize>)>;
/// Updates tap: `(round, plaintext updates)`; mutates the batch in place.
pub type UpdatesTapHook = Box<dyn FnMut(usize, &mut Vec<ClientUpdate<Vec<f32>>>)>;
/// Aggregation override: `(round, updates, weights)`; `Some` replaces
/// the configured rule.
pub type AggregateOverrideHook =
    Box<dyn FnMut(usize, &[ClientUpdate<Vec<f32>>], &[f64]) -> Option<Vec<f32>>>;

/// Callbacks a scenario driver installs around the round loop.
///
/// The hooks expose the three seams a perturbation layer needs without
/// the framework knowing anything about scenarios: who participates
/// (churn), what each client uploads (Byzantine attacks, client-side
/// defenses), and how the server aggregates (robust aggregation). All
/// hooks are deterministic functions of their arguments plus whatever
/// seeded state the closure captured, so a hooked run replays
/// bit-identically — the framework itself draws no extra randomness on
/// their behalf.
#[derive(Default)]
pub struct RoundHooks {
    /// Edits the participant list after sampling (arrival / departure /
    /// rejoin). Ids are sanitized afterwards: out-of-range ids are
    /// dropped, duplicates removed, order normalized to ascending.
    pub presence: Option<PresenceHook>,
    /// Mutates the round's plaintext updates *before* encryption — the
    /// seam where Byzantine clients corrupt their uploads (and where a
    /// batch defense may clip them). Receives every update at once so
    /// defenses can compute batch statistics (e.g. the median norm).
    pub updates_tap: Option<UpdatesTapHook>,
    /// Replaces the server-side aggregation for the plaintext pipeline
    /// (e.g. coordinate-wise trimmed mean). Returning `None` falls back
    /// to the configured aggregation rule. Encrypted pipelines ignore
    /// this hook: the server cannot run order statistics on
    /// ciphertexts, which is exactly the robustness/privacy tension the
    /// scenario engine measures.
    pub aggregate_override: Option<AggregateOverrideHook>,
}

impl std::fmt::Debug for RoundHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundHooks")
            .field("presence", &self.presence.is_some())
            .field("updates_tap", &self.updates_tap.is_some())
            .field("aggregate_override", &self.aggregate_override.is_some())
            .finish()
    }
}

/// Measurements from one aggregation round.
#[derive(Debug, Clone, Default)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: usize,
    /// Number of client updates that entered aggregation this round
    /// (after participation sampling, churn, and any defense that drops
    /// updates outright).
    pub participants: usize,
    /// Global-model accuracy on the held-out test set after the round.
    pub accuracy: f64,
    /// Bits uploaded per client this round.
    pub upload_bits_per_client: u64,
    /// Bits downloaded per client this round.
    pub download_bits_per_client: u64,
    /// Wall time spent in local training (all clients).
    pub train_time: Duration,
    /// Wall time spent encrypting local models (all clients).
    pub encrypt_time: Duration,
    /// Wall time spent in server-side aggregation.
    pub aggregate_time: Duration,
    /// Wall time spent decrypting the global model (one client).
    pub decrypt_time: Duration,
}

/// Full-run measurements.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-round reports in order.
    pub rounds: Vec<RoundReport>,
    /// Accuracy after the final round.
    pub final_accuracy: f64,
}

impl RunReport {
    /// First round (1-based) at which accuracy reached `target`, if any —
    /// the metric behind the paper's Fig. 3 "rounds to 90%" markers.
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.rounds.iter().position(|r| r.accuracy >= target).map(|i| i + 1)
    }

    /// Total bits uploaded per client over the run.
    pub fn total_upload_bits_per_client(&self) -> u64 {
        self.rounds.iter().map(|r| r.upload_bits_per_client).sum()
    }
}

/// Transport pipeline for model exchange.
enum Pipeline {
    /// Raw parameter exchange (no encryption).
    Plaintext,
    /// Packed CKKS ciphertexts with homomorphic averaging. The packing
    /// config selects dense slots (weighted average server-side) or
    /// bit-interleaved lanes (homomorphic sum, mean after decryption).
    Ckks {
        ctx: Box<CkksContext>,
        sk: CkksSecretKey,
        pk: CkksPublicKey,
        packing: packing::PackingConfig,
    },
    /// Per-parameter LWE ciphertexts over quantized weights.
    Lwe { ctx: LweContext, sk: LweSecretKey, quant_bits: u32 },
}

/// The Rhychee-FL federated system (server + clients simulation).
///
/// # Examples
///
/// ```
/// use rhychee_core::{FlConfig, Framework};
/// use rhychee_data::{DatasetKind, SyntheticConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = SyntheticConfig::small(DatasetKind::Har).generate(3)?;
/// let config = FlConfig::builder().clients(4).rounds(2).hd_dim(256).seed(3).build()?;
/// let mut fw = Framework::hdc_plaintext(config, &data)?;
/// let report = fw.run()?;
/// assert!(report.final_accuracy > 0.5);
/// # Ok(())
/// # }
/// ```
pub struct Framework {
    config: FlConfig,
    clients: Vec<ClientLocal>,
    test: EncodedDataset,
    global: Vec<f32>,
    classes: usize,
    pipeline: Pipeline,
    rng: StdRng,
    next_round: usize,
    hooks: RoundHooks,
}

impl Framework {
    /// Builds a plaintext-aggregation federation (paper Fig. 2/3 setting).
    ///
    /// # Errors
    ///
    /// Returns [`FlError`] on invalid config or insufficient data.
    pub fn hdc_plaintext(config: FlConfig, data: &TrainTest) -> Result<Self, FlError> {
        Self::build(config, data, Pipeline::Plaintext)
    }

    /// Builds the full Rhychee-FL pipeline: encrypted aggregation under
    /// CKKS with maximum packing.
    ///
    /// Key sharing (paper §IV-A) is simulated: every client holds the
    /// shared secret key; the server only ever touches ciphertexts and
    /// the public key.
    ///
    /// # Errors
    ///
    /// Returns [`FlError`] on invalid config or FHE parameters.
    pub fn hdc_encrypted(
        config: FlConfig,
        data: &TrainTest,
        params: CkksParams,
    ) -> Result<Self, FlError> {
        let ctx = CkksContext::with_parallelism(params, config.parallelism)?;
        let (sk, pk) = round::derive_ckks_keys(&ctx, config.seed);
        let packing = packing::PackingConfig::dense();
        Self::build(config, data, Pipeline::Ckks { ctx: Box::new(ctx), sk, pk, packing })
    }

    /// Builds the encrypted CKKS federation with bit-interleaved slot
    /// packing: coordinates quantized to `bits` bits (clipped to
    /// `[-clip, clip]`), several per slot, aggregated by homomorphic
    /// sum with the mean recovered after decryption from the in-band
    /// contributor counter. Fewer ciphertexts — and fewer NTTs — per
    /// round than [`Framework::hdc_encrypted`].
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] for non-uniform aggregation
    /// rules (FedNova weights cannot ride a lane-packed sum) and
    /// [`FlError`] on invalid packing or FHE parameters.
    pub fn hdc_encrypted_interleaved(
        config: FlConfig,
        data: &TrainTest,
        params: CkksParams,
        bits: u32,
        clip: f32,
    ) -> Result<Self, FlError> {
        if matches!(config.aggregation, crate::config::Aggregation::FedNova) {
            return Err(FlError::InvalidConfig(
                "bit-interleaved packing aggregates by uniform sum; FedNova's per-client \
                 weights require the dense layout"
                    .into(),
            ));
        }
        let packing = packing::PackingConfig::interleaved(bits, clip, config.clients);
        packing.validate()?;
        let ctx = CkksContext::with_parallelism(params, config.parallelism)?;
        let (sk, pk) = round::derive_ckks_keys(&ctx, config.seed);
        Self::build(config, data, Pipeline::Ckks { ctx: Box::new(ctx), sk, pk, packing })
    }

    /// Builds an encrypted federation over the single-value LWE scheme,
    /// quantizing each parameter to `quant_bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoiseBudget`] if the parameter set cannot
    /// absorb `clients` additions, [`FlError::InvalidConfig`] if the
    /// plaintext modulus cannot hold the sum of quantized values.
    pub fn hdc_encrypted_lwe(
        config: FlConfig,
        data: &TrainTest,
        params: LweParams,
        quant_bits: u32,
    ) -> Result<Self, FlError> {
        let needed = (config.clients as u64) << quant_bits;
        if params.plaintext_modulus < needed {
            return Err(FlError::InvalidConfig(format!(
                "plaintext modulus {} cannot hold {} clients at {} bits (needs >= {needed}); \
                 use lwe_fl_params()",
                params.plaintext_modulus, config.clients, quant_bits
            )));
        }
        if params.max_additions() < config.clients {
            return Err(FlError::NoiseBudget {
                clients: config.clients,
                budget: params.max_additions(),
            });
        }
        let ctx = LweContext::new(params)?;
        let mut key_rng = StdRng::seed_from_u64(config.seed ^ round::LWE_KEY_SALT);
        let sk = ctx.generate_key(&mut key_rng);
        Self::build(config, data, Pipeline::Lwe { ctx, sk, quant_bits })
    }

    /// LWE parameters sized for a federation: plaintext modulus holding
    /// `clients · 2^quant_bits` and a ciphertext modulus with noise room.
    pub fn lwe_fl_params(clients: usize, quant_bits: u32) -> LweParams {
        let t = ((clients as u64) << quant_bits).next_power_of_two();
        // Keep Δ = q/t at 128 for comfortable noise margin.
        let q_bits = t.trailing_zeros() + 7;
        LweParams { dimension: 534, log_q: q_bits, plaintext_modulus: t, sigma_int: 0.6 }
    }

    fn build(config: FlConfig, data: &TrainTest, pipeline: Pipeline) -> Result<Self, FlError> {
        let round::FedSetup { shards, test, classes } = round::prepare(&config, data)?;
        let clients: Vec<ClientLocal> = shards
            .into_iter()
            .enumerate()
            .map(|(id, data)| ClientLocal::new(id, data, classes, &config))
            .collect();
        let global = vec![0.0; classes * config.hd_dim];
        let rng = StdRng::seed_from_u64(config.seed ^ SAMPLING_SALT);
        Ok(Framework {
            config,
            clients,
            test,
            global,
            classes,
            pipeline,
            rng,
            next_round: 0,
            hooks: RoundHooks::default(),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// Installs scenario hooks (replacing any previous set) — see
    /// [`RoundHooks`] for the three seams they cover.
    pub fn set_hooks(&mut self, hooks: RoundHooks) {
        self.hooks = hooks;
    }

    /// Trainable parameter count `D × L`.
    pub fn num_parameters(&self) -> usize {
        self.global.len()
    }

    /// Current global model as an [`HdcModel`].
    pub fn global_model(&self) -> HdcModel {
        HdcModel::from_flat(&self.global, self.classes, self.config.hd_dim)
    }

    /// Accuracy of the current global model on the test set.
    pub fn global_accuracy(&self) -> f64 {
        self.global_model().accuracy(&self.test)
    }

    /// Bits a client uploads per round under the active pipeline.
    pub fn upload_bits_per_round(&self) -> u64 {
        let n = self.num_parameters() as u64;
        match &self.pipeline {
            Pipeline::Plaintext => n * 32,
            Pipeline::Ckks { ctx, packing, .. } => {
                packing::ciphertexts_needed_with(packing, n as usize, ctx.slot_count()) as u64
                    * ctx.params().ciphertext_bits()
            }
            Pipeline::Lwe { ctx, .. } => n * ctx.params().ciphertext_bits(),
        }
    }

    /// Executes one aggregation round (paper Fig. 1: local training →
    /// collection → homomorphic aggregation → distribution).
    ///
    /// # Errors
    ///
    /// Propagates FHE errors from the encrypted pipelines.
    pub fn run_round(&mut self) -> Result<RoundReport, FlError> {
        let round = self.next_round;
        self.next_round += 1;
        let mut report = RoundReport { round, ..RoundReport::default() };
        let round_span = telemetry::span("round");

        // Client sampling (participation < 1.0 is an extension; the paper
        // aggregates all clients every round).
        let mut participants = self.sample_participants();
        if let Some(presence) = self.hooks.presence.as_mut() {
            presence(round, &mut participants);
            let total = self.clients.len();
            participants.retain(|&id| id < total);
            participants.sort_unstable();
            participants.dedup();
        }

        // 1. Local training.
        let span = telemetry::span("local_train");
        let mut trained = self.train_locals(round, &participants);
        report.train_time = span.finish();

        if let Some(tap) = self.hooks.updates_tap.as_mut() {
            tap(round, &mut trained);
        }
        report.participants = trained.len();

        // A round every client sat out (total churn) leaves the global
        // model untouched rather than averaging over nothing.
        if trained.is_empty() {
            report.upload_bits_per_client = 0;
            report.download_bits_per_client = 0;
            report.accuracy = self.global_accuracy();
            round_span.finish();
            return Ok(report);
        }

        // 2–4. Collection, aggregation, distribution.
        let new_global = match &self.pipeline {
            Pipeline::Plaintext => {
                let span = telemetry::span("aggregate");
                let mut sr = ServerRound::new(round, self.config.aggregation);
                for u in trained {
                    sr.accept(u);
                }
                let overridden = self
                    .hooks
                    .aggregate_override
                    .as_mut()
                    .and_then(|agg| agg(round, sr.updates(), &sr.weights()));
                let global = match overridden {
                    Some(g) => g,
                    None => sr.aggregate_with(self.config.parallelism)?,
                };
                report.aggregate_time = span.finish();
                global
            }
            Pipeline::Ckks { ctx, sk, pk, packing } => {
                // Keep the plaintext updates around while telemetry is on
                // so the decrypted aggregate can be checked against the
                // exact plaintext FedAvg (the `fl.decrypt_error.max`
                // noise-budget gauge, DESIGN.md §10).
                let plain_updates = telemetry::enabled().then(|| trained.clone());
                let span = telemetry::span("encrypt");
                let mut sr = ServerRound::new(round, self.config.aggregation);
                for u in trained {
                    let cts = packing::encrypt_model_with(
                        ctx,
                        pk,
                        &u.payload,
                        packing,
                        self.clients[u.client_id].rng_mut(),
                    )?;
                    sr.accept(ClientUpdate {
                        client_id: u.client_id,
                        round: u.round,
                        steps: u.steps,
                        payload: cts,
                    });
                }
                report.encrypt_time = span.finish();

                // Interleaved lanes survive only pure additions, so the
                // plaintext `1/P` moves to after decryption (driven by
                // the in-band contributor counter).
                let span = telemetry::span("aggregate");
                let global_ct = if packing.is_interleaved() {
                    sr.aggregate_ckks_sum(ctx)?
                } else {
                    sr.aggregate_ckks(ctx)?
                };
                report.aggregate_time = span.finish();

                let span = telemetry::span("decrypt");
                let global =
                    packing::decrypt_model_with(ctx, sk, &global_ct, self.global.len(), packing)?;
                report.decrypt_time = span.finish();

                if let Some(updates) = plain_updates {
                    let mut plain_sr = ServerRound::new(round, self.config.aggregation);
                    for u in updates {
                        plain_sr.accept(u);
                    }
                    let expected = plain_sr.aggregate_with(self.config.parallelism)?;
                    let max_err = global
                        .iter()
                        .zip(&expected)
                        .map(|(&got, &want)| f64::from((got - want).abs()))
                        .fold(0.0f64, f64::max);
                    telemetry::gauge("fl.decrypt_error.max", max_err);
                }
                global
            }
            Pipeline::Lwe { ctx, sk, quant_bits } => {
                let bits = *quant_bits;
                let p = trained.len() as u64;
                let span = telemetry::span("encrypt");
                // Quantize every client model with a common scale so sums
                // are meaningful: use the max dynamic range.
                let quantized: Vec<QuantizedModel> = trained
                    .iter()
                    .map(|u| {
                        let model =
                            HdcModel::from_flat(&u.payload, self.classes, self.config.hd_dim);
                        QuantizedModel::quantize(&model, bits)
                    })
                    .collect();
                let scale = quantized.iter().map(QuantizedModel::scale).fold(f64::MAX, f64::min);
                let encrypted: Result<Vec<Vec<_>>, _> = quantized
                    .iter()
                    .zip(&trained)
                    .map(|(q, u)| {
                        let rng = self.clients[u.client_id].rng_mut();
                        q.to_offset_encoded().iter().map(|&v| ctx.encrypt(sk, v, rng)).collect()
                    })
                    .collect();
                let encrypted = encrypted?;
                report.encrypt_time = span.finish();

                let span = telemetry::span("aggregate");
                let n = self.global.len();
                let mut sums = encrypted[0].clone();
                for client in &encrypted[1..] {
                    for (acc, ct) in sums.iter_mut().zip(client) {
                        ctx.add_assign(acc, ct)?;
                    }
                }
                report.aggregate_time = span.finish();

                let span = telemetry::span("decrypt");
                let offset = (1i64 << (bits - 1)) * p as i64;
                let global: Vec<f32> = (0..n)
                    .map(|i| {
                        let sum = ctx.decrypt(sk, &sums[i]) as i64 - offset;
                        (sum as f64 / (p as f64 * scale)) as f32
                    })
                    .collect();
                report.decrypt_time = span.finish();
                global
            }
        };

        self.global = new_global;
        self.distribute_global(&participants);

        report.upload_bits_per_client = self.upload_bits_per_round();
        report.download_bits_per_client = report.upload_bits_per_client;
        report.accuracy = self.global_accuracy();
        round_span.finish();
        Ok(report)
    }

    /// Runs all configured rounds and collects the reports.
    ///
    /// # Errors
    ///
    /// Propagates the first round error.
    pub fn run(&mut self) -> Result<RunReport, FlError> {
        let mut report = RunReport::default();
        for _ in 0..self.config.rounds {
            report.rounds.push(self.run_round()?);
        }
        report.final_accuracy = report.rounds.last().map_or(0.0, |r| r.accuracy);
        Ok(report)
    }

    fn sample_participants(&mut self) -> Vec<usize> {
        let total = self.clients.len();
        let count = ((total as f64 * self.config.participation).ceil() as usize).clamp(1, total);
        let mut ids: Vec<usize> = (0..total).collect();
        if count < total {
            ids.shuffle(&mut self.rng);
            ids.truncate(count);
            ids.sort_unstable();
        }
        ids
    }

    /// Runs local training on the selected clients; returns their
    /// updates as the server would receive them.
    fn train_locals(
        &mut self,
        round: usize,
        participants: &[usize],
    ) -> Vec<ClientUpdate<Vec<f32>>> {
        let cfg = self.config.clone();
        let global = self.global.clone();
        participants
            .iter()
            .map(|&id| {
                let client = &mut self.clients[id];
                let flat = client.train(&global, &cfg);
                ClientUpdate { client_id: id, round, steps: client.last_steps(), payload: flat }
            })
            .collect()
    }

    fn distribute_global(&mut self, participants: &[usize]) {
        for &id in participants {
            self.clients[id].load_global(&self.global);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Aggregation, EncoderKind};
    use rhychee_data::{DatasetKind, SyntheticConfig};

    fn small_data(kind: DatasetKind) -> TrainTest {
        SyntheticConfig { kind, train_samples: 300, test_samples: 120 }
            .generate(11)
            .expect("generate")
    }

    fn small_config(clients: usize, rounds: usize) -> FlConfig {
        FlConfig::builder()
            .clients(clients)
            .rounds(rounds)
            .hd_dim(512)
            .seed(5)
            .build()
            .expect("valid")
    }

    #[test]
    fn plaintext_fl_converges() {
        let data = small_data(DatasetKind::Har);
        let mut fw = Framework::hdc_plaintext(small_config(5, 4), &data).expect("build");
        let report = fw.run().expect("run");
        assert_eq!(report.rounds.len(), 4);
        assert!(report.final_accuracy > 0.8, "accuracy {}", report.final_accuracy);
        // Accuracy is broadly non-decreasing (allow small dips).
        assert!(report.rounds[3].accuracy + 0.1 >= report.rounds[0].accuracy);
    }

    #[test]
    fn encrypted_fl_matches_plaintext_closely() {
        let data = small_data(DatasetKind::Har);
        let mut plain = Framework::hdc_plaintext(small_config(4, 3), &data).expect("build");
        let mut enc =
            Framework::hdc_encrypted(small_config(4, 3), &data, CkksParams::toy()).expect("build");
        let rp = plain.run().expect("run");
        let re = enc.run().expect("run");
        assert!(
            (rp.final_accuracy - re.final_accuracy).abs() < 0.08,
            "plaintext {} vs encrypted {}",
            rp.final_accuracy,
            re.final_accuracy
        );
    }

    #[test]
    fn interleaved_fl_matches_dense_within_quantization_error() {
        // The acceptance run for bit-interleaved packing: same
        // federation under the dense and interleaved CKKS pipelines.
        // Normalized uploads keep coordinates in [-1, 1], so clip = 1
        // loses nothing and the only divergence is the 10-bit grid.
        let data = small_data(DatasetKind::Har);
        let cfg = || {
            FlConfig::builder()
                .clients(4)
                .rounds(3)
                .hd_dim(512)
                .seed(5)
                .normalize(true)
                .build()
                .expect("valid")
        };
        let mut dense = Framework::hdc_encrypted(cfg(), &data, CkksParams::toy()).expect("build");
        let mut inter =
            Framework::hdc_encrypted_interleaved(cfg(), &data, CkksParams::toy(), 10, 1.0)
                .expect("build");
        let rd = dense.run().expect("dense run");
        let ri = inter.run().expect("interleaved run");
        assert!(
            (rd.final_accuracy - ri.final_accuracy).abs() < 0.05,
            "dense {} vs interleaved {}",
            rd.final_accuracy,
            ri.final_accuracy
        );
        // Fewer ciphertexts per upload must show up as fewer bits on
        // the wire: 2 lanes/slot at 10 bits, P=4 → roughly half.
        assert!(
            ri.total_upload_bits_per_client() < rd.total_upload_bits_per_client() * 3 / 4,
            "interleaved {} bits vs dense {} bits",
            ri.total_upload_bits_per_client(),
            rd.total_upload_bits_per_client()
        );
    }

    #[test]
    fn interleaved_rejects_fednova() {
        let data = small_data(DatasetKind::Har);
        let cfg = FlConfig::builder()
            .clients(4)
            .rounds(1)
            .hd_dim(512)
            .seed(5)
            .aggregation(Aggregation::FedNova)
            .build()
            .expect("valid");
        let err = Framework::hdc_encrypted_interleaved(cfg, &data, CkksParams::toy(), 10, 1.0);
        assert!(matches!(err, Err(FlError::InvalidConfig(_))));
    }

    #[test]
    fn lwe_pipeline_runs_and_learns() {
        let data = small_data(DatasetKind::Har);
        let mut cfg = small_config(4, 2);
        cfg.hd_dim = 128; // keep the per-parameter ciphertext count small
        let params = Framework::lwe_fl_params(4, 6);
        let mut fw = Framework::hdc_encrypted_lwe(cfg, &data, params, 6).expect("build");
        let report = fw.run().expect("run");
        assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn lwe_rejects_overflowing_setup() {
        let data = small_data(DatasetKind::Har);
        let params = LweParams::tfhe1(); // t = 16: too small for 4 clients at 6 bits
        let err = Framework::hdc_encrypted_lwe(small_config(4, 1), &data, params, 6);
        assert!(matches!(err, Err(FlError::InvalidConfig(_))));
    }

    #[test]
    fn upload_bits_formulas() {
        let data = small_data(DatasetKind::Har);
        let cfg = small_config(3, 1);
        let n = (cfg.hd_dim * 6) as u64;
        let plain = Framework::hdc_plaintext(cfg.clone(), &data).expect("build");
        assert_eq!(plain.upload_bits_per_round(), n * 32);
        let enc = Framework::hdc_encrypted(cfg, &data, CkksParams::toy()).expect("build");
        // toy: N = 512, slots = 256, log Q = 90.
        assert_eq!(enc.upload_bits_per_round(), n.div_ceil(256) * 2 * 512 * 90);
    }

    #[test]
    fn rounds_to_accuracy_metric() {
        let mut report = RunReport::default();
        for (i, acc) in [0.5, 0.85, 0.93, 0.95].iter().enumerate() {
            report.rounds.push(RoundReport { round: i, accuracy: *acc, ..Default::default() });
        }
        assert_eq!(report.rounds_to_accuracy(0.9), Some(3));
        assert_eq!(report.rounds_to_accuracy(0.99), None);
        assert_eq!(report.rounds_to_accuracy(0.4), Some(1));
    }

    #[test]
    fn participation_sampling() {
        let data = small_data(DatasetKind::Har);
        let mut cfg = small_config(10, 1);
        cfg.participation = 0.3;
        let mut fw = Framework::hdc_plaintext(cfg, &data).expect("build");
        let p = fw.sample_participants();
        assert_eq!(p.len(), 3);
        assert!(p.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
    }

    #[test]
    fn fednova_and_fedprox_run() {
        let data = small_data(DatasetKind::Har);
        for agg in [Aggregation::FedNova, Aggregation::FedProx { mu: 0.1 }] {
            let mut cfg = small_config(4, 2);
            cfg.aggregation = agg;
            let mut fw = Framework::hdc_plaintext(cfg, &data).expect("build");
            let report = fw.run().expect("run");
            assert!(report.final_accuracy > 0.6, "{agg:?}: {}", report.final_accuracy);
        }
    }

    #[test]
    fn too_few_samples_rejected() {
        let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 6, test_samples: 6 }
            .generate(1)
            .expect("generate");
        let err = Framework::hdc_plaintext(small_config(50, 1), &data);
        assert!(matches!(err, Err(FlError::DataError(_))));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = small_data(DatasetKind::Har);
        let run = |seed: u64| {
            let cfg = FlConfig::builder()
                .clients(4)
                .rounds(2)
                .hd_dim(256)
                .seed(seed)
                .build()
                .expect("valid");
            let mut fw = Framework::hdc_plaintext(cfg, &data).expect("build");
            fw.run().expect("run").final_accuracy
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn auto_encoder_picks_rbf_for_mnist() {
        let data = small_data(DatasetKind::Mnist);
        let mut cfg = small_config(3, 1);
        cfg.encoder = EncoderKind::Auto;
        let mut fw = Framework::hdc_plaintext(cfg, &data).expect("build");
        let report = fw.run().expect("run");
        assert!(report.final_accuracy > 0.3);
    }
}
