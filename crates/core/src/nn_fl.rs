//! Federated baselines over conventional neural models (CNN / MLP /
//! logistic regression), used as the comparison arm of Fig. 3–5 and
//! Table II.
//!
//! Runs FedAvg over [`rhychee_nn::Network`] parameters. The structure
//! mirrors [`Framework`](crate::framework::Framework) but trains with
//! minibatch SGD instead of HDC updates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rhychee_telemetry as telemetry;

use rhychee_data::partition::dirichlet_partition_indices;
use rhychee_data::TrainTest;
use rhychee_nn::Network;

use crate::config::FlConfig;
use crate::error::FlError;
use crate::framework::{RoundReport, RunReport};

/// Which baseline model the federation trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnModelKind {
    /// Two-conv + two-FC CNN (Li et al. baseline; 43,484 parameters).
    Cnn,
    /// Multilayer perceptron (PFMLP baseline).
    Mlp,
    /// Logistic regression (xMK-CKKS baseline).
    LogisticRegression,
}

/// SGD hyperparameters for the local solver.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { lr: 0.05, momentum: 0.9, batch_size: 32 }
    }
}

/// A FedAvg federation over a neural baseline.
///
/// # Examples
///
/// ```no_run
/// use rhychee_core::{FlConfig, NnFederation, NnModelKind};
/// use rhychee_data::{DatasetKind, SyntheticConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = SyntheticConfig::small(DatasetKind::Mnist).generate(1)?;
/// let config = FlConfig::builder().clients(4).rounds(3).build()?;
/// let mut fed = NnFederation::new(&config, &data, NnModelKind::Cnn, Default::default())?;
/// let report = fed.run()?;
/// println!("CNN FedAvg accuracy: {:.3}", report.final_accuracy);
/// # Ok(())
/// # }
/// ```
pub struct NnFederation {
    net: Network,
    global: Vec<f32>,
    shards: Vec<(Vec<Vec<f32>>, Vec<usize>)>,
    test_features: Vec<Vec<f32>>,
    test_labels: Vec<usize>,
    config: FlConfig,
    sgd: SgdConfig,
    rng: StdRng,
    next_round: usize,
}

impl NnFederation {
    /// Builds a federation of the given baseline over Dirichlet shards.
    ///
    /// # Errors
    ///
    /// Returns [`FlError`] on invalid config, insufficient data, or a
    /// model/dataset shape mismatch (the CNN requires 784-feature
    /// image-shaped inputs).
    pub fn new(
        config: &FlConfig,
        data: &TrainTest,
        kind: NnModelKind,
        sgd: SgdConfig,
    ) -> Result<Self, FlError> {
        config.validate()?;
        if data.train.len() < config.clients {
            return Err(FlError::DataError("fewer training samples than clients".into()));
        }
        let feature_dim = data.train.feature_dim();
        let classes = data.train.num_classes();
        if kind == NnModelKind::Cnn && feature_dim != 784 {
            return Err(FlError::DataError(format!(
                "CNN baseline expects 784 features (28x28 images), got {feature_dim}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let net = match kind {
            NnModelKind::Cnn => Network::cnn_mnist(&mut rng),
            NnModelKind::Mlp => Network::mlp(feature_dim, &[69], classes, &mut rng),
            NnModelKind::LogisticRegression => {
                Network::logistic_regression(feature_dim, classes, &mut rng)
            }
        };
        let global = net.flatten_params();
        let shards = dirichlet_partition_indices(
            data.train.labels(),
            classes,
            config.clients,
            config.dirichlet_alpha,
            &mut rng,
        )
        .into_iter()
        .map(|idx| {
            let feats = idx.iter().map(|&i| data.train.features()[i].clone()).collect();
            let labels = idx.iter().map(|&i| data.train.labels()[i]).collect();
            (feats, labels)
        })
        .collect();
        Ok(NnFederation {
            net,
            global,
            shards,
            test_features: data.test.features().to_vec(),
            test_labels: data.test.labels().to_vec(),
            config: config.clone(),
            sgd,
            rng,
            next_round: 0,
        })
    }

    /// Trainable parameter count of the federated model.
    pub fn num_parameters(&self) -> usize {
        self.global.len()
    }

    /// Accuracy of the current global model on the test set.
    pub fn global_accuracy(&mut self) -> f64 {
        self.net.load_params(&self.global.clone());
        self.net.accuracy(&self.test_features, &self.test_labels)
    }

    /// Executes one FedAvg round over all clients.
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for pipeline symmetry.
    pub fn run_round(&mut self) -> Result<RoundReport, FlError> {
        let round = self.next_round;
        self.next_round += 1;
        // Same span taxonomy as the HDC `Framework` round loop, so NN
        // baseline traces line up column-for-column in comparisons.
        let round_span = telemetry::span("round");
        let train_span = telemetry::span("local_train");
        let mut sum = vec![0.0f32; self.global.len()];
        let clients = self.shards.len();
        for c in 0..clients {
            self.net.load_params(&self.global.clone());
            self.net.reset_momentum();
            let (feats, labels) = &self.shards[c];
            for _ in 0..self.config.local_epochs {
                self.net.train_epoch(
                    feats,
                    labels,
                    self.sgd.batch_size,
                    self.sgd.lr,
                    self.sgd.momentum,
                    &mut self.rng,
                );
            }
            for (s, p) in sum.iter_mut().zip(self.net.flatten_params()) {
                *s += p;
            }
        }
        let train_time = train_span.finish();
        let aggregate_span = telemetry::span("aggregate");
        for s in sum.iter_mut() {
            *s /= clients as f32;
        }
        self.global = sum;
        let aggregate_time = aggregate_span.finish();
        let accuracy = self.global_accuracy();
        round_span.finish();
        Ok(RoundReport {
            round,
            accuracy,
            upload_bits_per_client: self.global.len() as u64 * 32,
            download_bits_per_client: self.global.len() as u64 * 32,
            train_time,
            aggregate_time,
            ..RoundReport::default()
        })
    }

    /// Runs all configured rounds.
    ///
    /// # Errors
    ///
    /// Propagates the first round error.
    pub fn run(&mut self) -> Result<RunReport, FlError> {
        let mut report = RunReport::default();
        for _ in 0..self.config.rounds {
            report.rounds.push(self.run_round()?);
        }
        report.final_accuracy = report.rounds.last().map_or(0.0, |r| r.accuracy);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhychee_data::{DatasetKind, SyntheticConfig};

    fn config(clients: usize, rounds: usize) -> FlConfig {
        FlConfig::builder().clients(clients).rounds(rounds).seed(3).build().expect("valid")
    }

    #[test]
    fn lr_federation_learns_har() {
        let data =
            SyntheticConfig { kind: DatasetKind::Har, train_samples: 300, test_samples: 120 }
                .generate(2)
                .expect("generate");
        let sgd = SgdConfig { lr: 0.1, momentum: 0.0, batch_size: 16 };
        let mut fed = NnFederation::new(&config(4, 5), &data, NnModelKind::LogisticRegression, sgd)
            .expect("build");
        assert_eq!(fed.num_parameters(), 561 * 6 + 6);
        let report = fed.run().expect("run");
        assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn mlp_federation_learns_mnist() {
        let data =
            SyntheticConfig { kind: DatasetKind::Mnist, train_samples: 300, test_samples: 120 }
                .generate(3)
                .expect("generate");
        let sgd = SgdConfig { lr: 0.1, momentum: 0.5, batch_size: 16 };
        let mut fed =
            NnFederation::new(&config(3, 4), &data, NnModelKind::Mlp, sgd).expect("build");
        let report = fed.run().expect("run");
        assert!(report.final_accuracy > 0.5, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn cnn_requires_image_features() {
        let data = SyntheticConfig { kind: DatasetKind::Har, train_samples: 60, test_samples: 30 }
            .generate(4)
            .expect("generate");
        let err = NnFederation::new(&config(2, 1), &data, NnModelKind::Cnn, SgdConfig::default());
        assert!(matches!(err, Err(FlError::DataError(_))));
    }

    #[test]
    fn cnn_round_produces_report() {
        let data =
            SyntheticConfig { kind: DatasetKind::Mnist, train_samples: 60, test_samples: 30 }
                .generate(5)
                .expect("generate");
        let mut fed =
            NnFederation::new(&config(2, 1), &data, NnModelKind::Cnn, SgdConfig::default())
                .expect("build");
        assert_eq!(fed.num_parameters(), 43_484);
        let r = fed.run_round().expect("round");
        assert!(r.accuracy >= 0.0 && r.accuracy <= 1.0);
        assert_eq!(r.upload_bits_per_client, 43_484 * 32);
    }
}
