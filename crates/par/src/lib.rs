//! Scoped thread pool and the unified [`Parallelism`] knob for Rhychee-FL.
//!
//! Every parallel code path in the workspace — HDC batch encoding, the
//! per-RNS-prime FHE kernels, per-chunk packing, and server-side
//! aggregation — is driven by one [`Parallelism`] value that flows down
//! from the entry points (`Framework`, `FlServer`, bench bins). The pool
//! itself is a process-wide singleton of spawn-once workers
//! ([`ThreadPool::global`]); the knob only decides how many *chunks* a
//! given operation is split into, so a `Fixed(1)` degree always runs
//! inline on the caller with zero pool traffic.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Helpers ([`for_each_mut`], [`parallel_for`],
//!    [`map`]) split work into contiguous index ranges with
//!    pre-assigned output slots. Results are bit-identical for every
//!    degree, including `Fixed(1)`.
//! 2. **No dependencies.** `std` only (plus the in-workspace telemetry
//!    crate for counters).
//! 3. **No deadlocks under nesting.** A thread waiting on a scope
//!    help-drains the shared queue, so nested scopes (e.g. a parallel
//!    decrypt whose per-ciphertext work itself parallelises over RNS
//!    primes) make progress even with zero idle workers.
//!
//! Panics in spawned tasks are caught, forwarded to the scope owner,
//! and re-thrown from [`ThreadPool::scope`] after all sibling tasks
//! finish (first panic wins).
//!
//! Telemetry: `par.tasks` counts pool-executed tasks, `par.steal_miss`
//! counts worker wake-ups that found an empty queue, and the
//! `par.workers` gauge records the pool size.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rhychee_telemetry as telemetry;

/// How many ways to split parallelisable work.
///
/// This is the single user-facing knob: `FlConfig`, `ServerConfig`, and
/// `CkksContext` all carry one. `Auto` resolves to the machine's core
/// count at call time; `Fixed(n)` pins the degree (floored at 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Use every available hardware thread.
    #[default]
    Auto,
    /// Split work `n` ways (`n = 1` means fully sequential, inline on
    /// the calling thread).
    Fixed(usize),
}

impl Parallelism {
    /// The effective degree: `Auto` resolves via
    /// [`std::thread::available_parallelism`], `Fixed(n)` floors at 1.
    pub fn degree(self) -> usize {
        match self {
            Parallelism::Auto => thread::available_parallelism().map_or(1, |n| n.get()),
            Parallelism::Fixed(n) => n.max(1),
        }
    }

    /// Shorthand for `Fixed(1)`.
    pub const fn sequential() -> Self {
        Parallelism::Fixed(1)
    }

    /// True when the effective degree is 1 (work runs inline).
    pub fn is_sequential(self) -> bool {
        self.degree() == 1
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// A boxed task. Tasks are `'static` from the queue's point of view;
/// scoped lifetimes are erased in [`Scope::spawn`] and re-guaranteed by
/// the scope's join barrier.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

/// A fixed set of spawn-once worker threads fed from one shared queue.
///
/// Use [`ThreadPool::global`] in library code; private pools are for
/// tests and benchmarks that need an isolated worker count.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `workers` dedicated threads (0 is valid: all
    /// work is then help-drained by threads waiting on scopes).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("rhychee-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn rhychee-par worker")
            })
            .collect();
        telemetry::gauge("par.workers", workers as f64);
        ThreadPool { shared, workers: handles }
    }

    /// The process-wide pool, created on first use with
    /// `max(available_parallelism, 4) - 1` workers. The floor lets an
    /// explicit `Fixed(n)` degree exercise real cross-thread execution
    /// even on small hosts; idle workers cost nothing but a parked
    /// thread.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let hw = thread::available_parallelism().map_or(1, |n| n.get());
            ThreadPool::new(hw.max(4) - 1)
        })
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be
    /// spawned, then joins every spawned task before returning.
    ///
    /// If any task panicked, the first panic is resumed here (after all
    /// siblings finish, so borrowed data is never observed by a live
    /// task past this call). A panic in `f` itself is also deferred
    /// until spawned tasks drain.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope { pool: self, state: Arc::clone(&state), _env: PhantomData };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait(&state);
        if let Some(payload) = state.panic.lock().unwrap().take() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    fn inject(&self, job: Job) {
        let mut queue = self.shared.queue.lock().unwrap();
        queue.push_back(job);
        // Tasks are coarse chunks, so a gauge store per enqueue is cheap
        // relative to the work each job carries.
        telemetry::gauge("par.queue.depth", queue.len() as f64);
        self.shared.work_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.shared.queue.lock().unwrap().pop_front()
    }

    /// Blocks until `state.pending == 0`, help-draining the shared
    /// queue so progress never depends on idle workers existing.
    fn wait(&self, state: &ScopeState) {
        loop {
            if *state.pending.lock().unwrap() == 0 {
                return;
            }
            if let Some(job) = self.try_pop() {
                job();
                telemetry::count("par.tasks", 1);
                continue;
            }
            let pending = state.pending.lock().unwrap();
            if *pending == 0 {
                return;
            }
            // Nested scopes can enqueue work while we sleep; wake on a
            // short timeout to help-drain rather than block forever.
            let _unused = state.done.wait_timeout(pending, Duration::from_micros(200)).unwrap();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _unused = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.work_ready.wait(queue).unwrap();
                if queue.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
                    // Woken but another thread drained the queue first.
                    telemetry::count("par.steal_miss", 1);
                }
            }
        };
        match job {
            Some(job) => {
                job();
                telemetry::count("par.tasks", 1);
            }
            None => return,
        }
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState { pending: Mutex::new(0), done: Condvar::new(), panic: Mutex::new(None) }
    }

    fn complete(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        // Notify on every completion (not just zero) so waiters recheck
        // the queue for follow-up work from nested scopes.
        self.done.notify_all();
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Handle for spawning borrowing tasks inside [`ThreadPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    // Invariant over 'env, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawns a task that may borrow from the enclosing scope. The task
    /// is guaranteed to finish before `scope` returns; panics are
    /// captured and re-thrown there.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let task = move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                state.record_panic(payload);
            }
            state.complete();
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the queue only requires 'static because Job erases
        // the lifetime; `ThreadPool::scope` joins (help-draining) every
        // task spawned on this scope before it returns, so no task
        // outlives the 'env borrows it captures. `Scope` is neither
        // Clone nor constructible outside `scope`, so tasks cannot be
        // registered after the join barrier.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        self.pool.inject(job);
    }
}

/// Applies `f(index, &mut item)` to every item, split into at most
/// `par.degree()` contiguous chunks on the global pool. Chunk
/// boundaries never affect the result: each item is visited exactly
/// once, in a slot it exclusively owns.
pub fn for_each_mut<T, F>(par: Parallelism, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let degree = par.degree().min(n);
    if degree <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(degree);
    let f = &f;
    ThreadPool::global().scope(|s| {
        for (ci, block) in items.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                for (j, item) in block.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
    });
}

/// Runs `f` over disjoint sub-ranges covering `0..n`, at most
/// `par.degree()` of them, each at least `min_chunk` long (except
/// possibly the last). `f` must only touch state it can safely share;
/// use `min_chunk` to keep per-task overhead amortised.
pub fn parallel_for<F>(par: Parallelism, n: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let degree = par.degree().min(n);
    let chunk = n.div_ceil(degree).max(min_chunk.max(1));
    if chunk >= n {
        f(0..n);
        return;
    }
    let f = &f;
    ThreadPool::global().scope(|s| {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            s.spawn(move || f(start..end));
            start = end;
        }
    });
}

/// Computes `f(i)` for `i in 0..n` in parallel and returns the results
/// in index order.
pub fn map<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let f = &f;
        for_each_mut(par, &mut out, |i, slot| *slot = Some(f(i)));
    }
    out.into_iter().map(|slot| slot.expect("map slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn degree_resolution() {
        assert_eq!(Parallelism::Fixed(0).degree(), 1);
        assert_eq!(Parallelism::Fixed(7).degree(), 7);
        assert!(Parallelism::Auto.degree() >= 1);
        assert!(Parallelism::sequential().is_sequential());
        assert_eq!(Parallelism::Fixed(3).to_string(), "3");
        assert_eq!(Parallelism::Auto.to_string(), "auto");
    }

    #[test]
    fn for_each_mut_visits_every_slot_once() {
        for degree in [1, 2, 3, 8, 64] {
            let mut items = vec![0usize; 100];
            for_each_mut(Parallelism::Fixed(degree), &mut items, |i, slot| *slot += i + 1);
            let expect: Vec<usize> = (1..=100).collect();
            assert_eq!(items, expect, "degree {degree}");
        }
    }

    #[test]
    fn parallel_for_covers_range_exactly() {
        for degree in [1, 2, 4, 9] {
            let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(Parallelism::Fixed(degree), hits.len(), 1, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "degree {degree}: some index not covered exactly once"
            );
        }
    }

    #[test]
    fn parallel_for_respects_min_chunk() {
        // min_chunk larger than n runs the whole range inline.
        let count = AtomicUsize::new(0);
        parallel_for(Parallelism::Fixed(8), 10, 100, |range| {
            assert_eq!(range, 0..10);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn map_preserves_order() {
        let out = map(Parallelism::Fixed(4), 37, |i| i * i);
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn map_empty() {
        let out: Vec<usize> = map(Parallelism::Auto, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn panic_propagates_to_scope_owner() {
        let pool = ThreadPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| {});
                s.spawn(|| panic!("task boom"));
                s.spawn(|| {});
            });
        }));
        let payload = result.expect_err("scope should re-throw the task panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task boom");
    }

    #[test]
    fn nested_scopes_make_progress_with_zero_workers() {
        let pool = ThreadPool::new(0);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                outer.spawn(move || {
                    // Inner parallelism goes through the global pool;
                    // the point is that the outer wait help-drains.
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(1);
        let v = pool.scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(v, 42);
        drop(pool); // joins workers cleanly
    }

    #[test]
    fn heavy_contention_sums_correctly() {
        let items: Vec<u64> = (0..10_000).collect();
        let partials = map(Parallelism::Fixed(8), 16, |ci| {
            let lo = ci * items.len() / 16;
            let hi = (ci + 1) * items.len() / 16;
            items[lo..hi].iter().sum::<u64>()
        });
        assert_eq!(partials.iter().sum::<u64>(), 10_000 * 9_999 / 2);
    }
}
