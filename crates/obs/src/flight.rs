//! Flight recorder: point-in-time JSON snapshots of the whole
//! observability state, dumped to disk when something goes wrong.
//!
//! A snapshot bundles everything a post-mortem needs in one file: the
//! recent-span ring (with per-span allocation attribution), the full
//! metrics registry (counters, gauges, histogram quantiles), and the
//! memory breakdown from [`crate::memory`]. The [round
//! watchdog](crate::watchdog) dumps one when a round phase stalls, and
//! [`install_panic_hook`] dumps one on any panic before the default
//! hook runs — so a crashed or wedged federation leaves evidence
//! behind instead of an empty log.
//!
//! Dumps are plain JSON named `flight-<reason>-<unix_ms>.json`; read
//! them with the `mem_report` binary or any JSON tool.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use rhychee_telemetry as telemetry;
use rhychee_telemetry::json::JsonObject;

/// Serializes the current process observability state: recent spans,
/// metrics snapshot, memory breakdown. `reason` tags why the snapshot
/// was taken (`"stall"`, `"panic"`, `"manual"`, ...).
pub fn snapshot(reason: &str) -> String {
    let unix_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
    let snap = telemetry::metrics::global().snapshot();

    let mut counters = JsonObject::new();
    for (name, v) in &snap.counters {
        counters.u64(name, *v);
    }
    let mut gauges = JsonObject::new();
    for (name, v) in &snap.gauges {
        gauges.f64(name, *v);
    }
    let mut histograms = String::from("[");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            histograms.push(',');
        }
        histograms.push_str(
            &JsonObject::new()
                .str("name", &h.name)
                .u64("count", h.count)
                .u64("sum", h.sum)
                .u64("min", h.min)
                .u64("max", h.max)
                .u64("p50", h.p50)
                .u64("p90", h.p90)
                .u64("p99", h.p99)
                .finish(),
        );
    }
    histograms.push(']');

    let mut spans = String::from("[");
    for (i, e) in telemetry::trace::recent_events().iter().enumerate() {
        if i > 0 {
            spans.push(',');
        }
        let mut obj = JsonObject::new();
        obj.str("name", e.name)
            .str("path", &e.path)
            .u64("depth", u64::from(e.depth))
            .u64("thread", e.thread)
            .u64("start_ns", e.start_ns)
            .u64("dur_ns", e.dur_ns);
        if e.alloc_bytes != 0 || e.alloc_calls != 0 {
            obj.u64("alloc_bytes", e.alloc_bytes).u64("alloc_calls", e.alloc_calls);
        }
        spans.push_str(&obj.finish());
    }
    spans.push(']');

    JsonObject::new()
        .str("kind", "rhychee-flight-recorder")
        .str("reason", reason)
        .u64("unix_ms", unix_ms)
        .raw("memory", &crate::memory::memory_body())
        .raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &histograms)
        .raw("recent_spans", &spans)
        .finish()
}

/// Takes a [`snapshot`] and writes it to
/// `<dir>/flight-<reason>-<unix_ms>.json`, creating `dir` if needed.
/// Returns the written path.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn dump(dir: &Path, reason: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let body = snapshot(reason);
    let unix_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
    let path = dir.join(format!("flight-{reason}-{unix_ms}.json"));
    std::fs::write(&path, body)?;
    telemetry::count("obs.flight.dumps", 1);
    Ok(path)
}

static PANIC_HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Chains a panic hook that dumps one flight-recorder snapshot to `dir`
/// (reason `"panic"`) before the previous hook runs. Installs at most
/// once per process; later calls are no-ops (the first directory wins).
pub fn install_panic_hook(dir: impl Into<PathBuf>) {
    if PANIC_HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let dir = dir.into();
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // A second panic inside the dump must not recurse or abort the
        // unwind; best-effort only.
        if let Ok(path) = dump(&dir, "panic") {
            eprintln!("flight recorder: dumped {}", path.display());
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_parseable_shaped_json() {
        telemetry::count("obs.flight.test_counter", 0); // ensure registry exists
        let body = snapshot("manual");
        assert!(body.starts_with("{\"kind\":\"rhychee-flight-recorder\""), "{body}");
        assert!(body.contains("\"reason\":\"manual\""), "{body}");
        assert!(body.contains("\"memory\":{"), "{body}");
        assert!(body.contains("\"counters\":{"), "{body}");
        assert!(body.contains("\"gauges\":{"), "{body}");
        assert!(body.contains("\"histograms\":["), "{body}");
        assert!(body.contains("\"recent_spans\":["), "{body}");
        assert!(body.ends_with('}'), "{body}");
        // Braces balance outside strings — cheap structural sanity.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut prev = ' ';
        for c in body.chars() {
            match c {
                '"' if prev != '\\' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced nesting in {body}");
    }

    #[test]
    fn dump_writes_a_named_file() {
        let dir = std::env::temp_dir().join(format!("rhychee-flight-test-{}", std::process::id()));
        let path = dump(&dir, "stall").expect("dump");
        let name = path.file_name().expect("file name").to_string_lossy().into_owned();
        assert!(name.starts_with("flight-stall-") && name.ends_with(".json"), "{name}");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"reason\":\"stall\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
