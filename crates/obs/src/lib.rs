//! # rhychee-obs
//!
//! Live observability plane for the Rhychee-FL stack: a zero-dependency
//! HTTP/1.1 exposition server ([`http::ObsServer`]) publishing the global
//! telemetry registry as Prometheus text ([`prometheus::render`]) on
//! `/metrics`, a JSON liveness summary on `/healthz`, the recent-span
//! ring on `/trace.json`, the per-round federation timeline with
//! round-phase SLO quantiles on `/rounds.json` ([`rounds::render_json`]),
//! and the reconciled memory breakdown — tracking-allocator heap, RSS,
//! per-subsystem bytes — on `/memory.json` ([`memory::memory_body`]).
//!
//! Liveness failures get first-class handling: the round [`Watchdog`]
//! detects a stalled round phase and the [`flight`] recorder dumps a
//! full observability snapshot (spans with allocation attribution,
//! metrics, memory breakdown) to disk for post-mortem reading with the
//! `mem_report` binary.
//!
//! The server is wired into `rhychee-net`'s `FlServer` via
//! `ServerConfig::builder().obs_addr(...)`; it can also be embedded
//! standalone in any process that records telemetry:
//!
//! ```
//! use rhychee_obs::ObsServer;
//!
//! rhychee_telemetry::set_enabled(true);
//! let handle = ObsServer::bind("127.0.0.1:0").unwrap().spawn().unwrap();
//! println!("scrape http://{}/metrics", handle.addr());
//! // handle stops the server when dropped
//! ```
//!
//! Metric naming, the exposition grammar, and the noise-budget gauge
//! taxonomy are documented in DESIGN.md §10.

pub mod flight;
pub mod http;
pub mod memory;
pub mod prometheus;
pub mod rounds;
pub mod watchdog;

pub use http::{ObsHandle, ObsServer};
pub use prometheus::{metric_name, render};
pub use rounds::{ClientArrival, RoundRecord};
pub use watchdog::Watchdog;
