//! # rhychee-obs
//!
//! Live observability plane for the Rhychee-FL stack: a zero-dependency
//! HTTP/1.1 exposition server ([`http::ObsServer`]) publishing the global
//! telemetry registry as Prometheus text ([`prometheus::render`]) on
//! `/metrics`, a JSON liveness summary on `/healthz`, the recent-span
//! ring on `/trace.json`, and the per-round federation timeline with
//! round-phase SLO quantiles on `/rounds.json` ([`rounds::render_json`]).
//!
//! The server is wired into `rhychee-net`'s `FlServer` via
//! `ServerConfig::builder().obs_addr(...)`; it can also be embedded
//! standalone in any process that records telemetry:
//!
//! ```
//! use rhychee_obs::ObsServer;
//!
//! rhychee_telemetry::set_enabled(true);
//! let handle = ObsServer::bind("127.0.0.1:0").unwrap().spawn().unwrap();
//! println!("scrape http://{}/metrics", handle.addr());
//! // handle stops the server when dropped
//! ```
//!
//! Metric naming, the exposition grammar, and the noise-budget gauge
//! taxonomy are documented in DESIGN.md §10.

pub mod http;
pub mod prometheus;
pub mod rounds;

pub use http::{ObsHandle, ObsServer};
pub use prometheus::{metric_name, render};
pub use rounds::{ClientArrival, RoundRecord};
