//! The `/memory.json` exposition body and the `mem.*` gauge refresh.
//!
//! One JSON document reconciles every memory signal the stack tracks:
//!
//! - **heap** — the tracking allocator's live/peak/total byte and call
//!   counters ([`rhychee_telemetry::alloc`]); `installed: false` (and
//!   all-zero figures) when the serving binary did not opt into the
//!   `#[global_allocator]` wrapper;
//! - **rss** — `/proc/self/statm` resident bytes and the process peak
//!   (absent off Linux);
//! - **sources** — the per-subsystem breakdown from the registered
//!   byte callbacks ([`rhychee_telemetry::mem::register_source`]):
//!   twiddle-table cache, scratch arenas, streaming accumulators, and
//!   resident upload payloads, read live at scrape time.
//!
//! Scraping `/memory.json` (or `/metrics`) also refreshes the
//! corresponding gauges, so both endpoints always publish the same
//! figures ([`refresh_gauges`]).

use rhychee_telemetry as telemetry;
use rhychee_telemetry::json::JsonObject;

/// Re-publishes every memory gauge from its live source: heap counters
/// (`mem.heap.*`), an RSS sample (`mem.rss.*`), and one
/// `mem.<source>.bytes` gauge per registered subsystem. Returns the
/// subsystem pairs so JSON renderers reuse the same read.
pub fn refresh_gauges() -> Vec<(&'static str, u64)> {
    telemetry::alloc::publish_gauges();
    let _ = telemetry::mem::sample_rss();
    telemetry::mem::publish_source_gauges()
}

/// The `/memory.json` body. Always well-formed JSON; fields whose
/// backing signal is unavailable (no tracking allocator, no procfs)
/// report zeros alongside an explicit availability flag.
pub fn memory_body() -> String {
    let sources = refresh_gauges();
    let stats = telemetry::alloc::stats();
    let heap = JsonObject::new()
        .bool("installed", telemetry::alloc::installed())
        .u64("live_bytes", stats.live_bytes)
        .u64("peak_bytes", stats.peak_bytes)
        .u64("total_bytes", stats.total_bytes)
        .u64("alloc_calls", stats.alloc_calls)
        .u64("dealloc_calls", stats.dealloc_calls)
        .finish();
    let (rss_now, rss_peak) = telemetry::mem::sample_rss().unwrap_or((0, 0));
    let rss = JsonObject::new()
        .bool("available", rss_now != 0)
        .u64("bytes", rss_now)
        .u64("peak_bytes", rss_peak)
        .finish();
    let mut breakdown = JsonObject::new();
    let mut total = 0u64;
    for (name, bytes) in &sources {
        breakdown.u64(name, *bytes);
        total += *bytes;
    }
    JsonObject::new()
        .f64("uptime_s", telemetry::mem::uptime_seconds())
        .raw("heap", &heap)
        .raw("rss", &rss)
        .u64("sources_total_bytes", total)
        .raw("sources", &breakdown.finish())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_is_complete_and_reconciles_with_allocator() {
        telemetry::mem::register_source("obs.test_source", || 1234);
        let body = memory_body();
        assert!(body.contains("\"uptime_s\":"), "{body}");
        assert!(body.contains("\"heap\":{\"installed\":"), "{body}");
        assert!(body.contains("\"live_bytes\":"), "{body}");
        assert!(body.contains("\"rss\":{"), "{body}");
        assert!(body.contains("\"obs.test_source\":1234"), "{body}");
        assert!(body.contains("\"sources_total_bytes\":"), "{body}");
        // Without the tracking allocator installed in this test binary,
        // the heap block must say so rather than fabricate figures.
        if !telemetry::alloc::installed() {
            assert!(body.contains("\"installed\":false"), "{body}");
        }
    }

    #[test]
    fn refresh_publishes_source_gauges_when_enabled() {
        telemetry::mem::register_source("obs.gauge_refresh", || 4096);
        telemetry::set_enabled(true);
        let pairs = refresh_gauges();
        telemetry::set_enabled(false);
        assert!(pairs.iter().any(|&(n, v)| n == "obs.gauge_refresh" && v == 4096));
        let g = telemetry::metrics::global().gauge("mem.obs.gauge_refresh.bytes").get();
        assert_eq!(g, 4096.0);
    }
}
