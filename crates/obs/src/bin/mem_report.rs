//! `mem_report` — pretty-print Rhychee memory snapshots.
//!
//! Reads either a flight-recorder dump / `/memory.json` capture from a
//! file, or scrapes a live server's `/memory.json` over TCP, and prints
//! the JSON indented with a headline summary of the memory figures.
//!
//! ```text
//! mem_report dumps/flight-stall-1722950000000.json
//! mem_report 127.0.0.1:9464            # GET /memory.json from a live server
//! mem_report --raw snapshot.json      # indent only, no headline
//! ```
//!
//! Zero dependencies: a small brace/string lexer does the indentation
//! and a key scanner pulls the headline numbers — enough for the
//! well-formed JSON this stack emits, with no parser crate in the tree.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut raw_only = false;
    let mut targets = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--raw" => raw_only = true,
            "--help" | "-h" => {
                eprintln!("usage: mem_report [--raw] <file.json | host:port>...");
                return ExitCode::SUCCESS;
            }
            _ => targets.push(arg),
        }
    }
    if targets.is_empty() {
        eprintln!("usage: mem_report [--raw] <file.json | host:port>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for target in &targets {
        match load(target) {
            Ok(body) => {
                if targets.len() > 1 {
                    println!("==> {target} <==");
                }
                if !raw_only {
                    print_headline(&body);
                }
                println!("{}", indent_json(&body));
            }
            Err(err) => {
                eprintln!("mem_report: {target}: {err}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// A `host:port` target is scraped for `/memory.json`; anything else is
/// read as a file.
fn load(target: &str) -> Result<String, String> {
    if looks_like_addr(target) {
        http_get(target, "/memory.json")
    } else {
        std::fs::read_to_string(target).map_err(|e| e.to_string())
    }
}

/// `host:port` iff the part after the last `:` is a valid port and the
/// target is not an existing file (a file named `a:1` still wins).
fn looks_like_addr(target: &str) -> bool {
    if std::path::Path::new(target).exists() {
        return false;
    }
    match target.rsplit_once(':') {
        Some((host, port)) => !host.is_empty() && port.parse::<u16>().is_ok(),
        None => false,
    }
}

fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(Duration::from_secs(5))).map_err(|e| e.to_string())?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| e.to_string())?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or("malformed HTTP response")?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("server answered: {status}"));
    }
    Ok(body.to_owned())
}

const MIB: f64 = 1024.0 * 1024.0;

/// Prints the numbers a human checks first, pulled straight from the
/// raw body so the headline works for both `/memory.json` captures and
/// flight-recorder dumps (which embed the same object under "memory").
fn print_headline(body: &str) {
    if let Some(reason) = find_str(body, "reason") {
        println!("# flight recorder dump — reason: {reason}");
    }
    let figure = |label: &str, key: &str| {
        if let Some(v) = find_u64(body, key) {
            println!("# {label:<24} {:>10.2} MiB", v as f64 / MIB);
        }
    };
    if find_u64(body, "live_bytes").is_some() {
        figure("heap live", "live_bytes");
        figure("heap peak", "peak_bytes");
        if let Some(rss) = find_key_after(body, "rss", "bytes").and_then(|s| s.parse::<u64>().ok())
        {
            println!("# {:<24} {:>10.2} MiB", "rss", rss as f64 / MIB);
        }
        figure("tracked sources", "sources_total_bytes");
    }
    println!();
}

/// Value of the first `"key":"..."` string field.
fn find_str(body: &str, key: &str) -> Option<String> {
    let raw = find_raw(body, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_owned())
}

/// Value of the first `"key":<n>` numeric field.
fn find_u64(body: &str, key: &str) -> Option<u64> {
    find_raw(body, key)?.parse().ok()
}

/// Raw token after the first occurrence of `"key":`.
fn find_raw(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    scan_value(&body[start..])
}

/// Like [`find_raw`] for `inner`, but only after `"outer":` appears —
/// e.g. the `bytes` inside the `rss` object.
fn find_key_after(body: &str, outer: &str, inner: &str) -> Option<String> {
    let anchor = format!("\"{outer}\":");
    let rest = &body[body.find(&anchor)? + anchor.len()..];
    let needle = format!("\"{inner}\":");
    let start = rest.find(&needle)? + needle.len();
    scan_value(&rest[start..])
}

/// The scalar token starting at the head of `rest`: a quoted string, or
/// a bare number/keyword up to the next delimiter.
fn scan_value(rest: &str) -> Option<String> {
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        return Some(format!("\"{}\"", &stripped[..end]));
    }
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    let token = rest[..end].trim();
    if token.is_empty() {
        None
    } else {
        Some(token.to_owned())
    }
}

/// Re-indents compact JSON: newline + indent after `{`/`[`/`,`, newline
/// before `}`/`]`, space after `:` — all outside string literals.
fn indent_json(body: &str) -> String {
    let mut out = String::with_capacity(body.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    for c in body.chars() {
        if in_str {
            out.push(c);
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => in_str = false,
                _ => escaped = false,
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                depth += 1;
                newline(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => out.push_str(": "),
            c if c.is_whitespace() => {}
            _ => out.push(c),
        }
    }
    out
}
