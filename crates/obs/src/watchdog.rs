//! Round watchdog: detects a stalled round phase and dumps evidence.
//!
//! The server [beats](Watchdog::beat) the watchdog at every round-phase
//! transition (broadcast, collect, aggregate, idle). A background
//! thread checks that a beat arrived within the configured deadline; if
//! a phase overstays it, the watchdog **fires**: it bumps the
//! `fl.round.stalled` counter, logs the stuck phase, and writes a
//! [flight-recorder](crate::flight) snapshot to the dump directory so
//! the stall can be diagnosed after the fact (which clients were
//! resident, where memory sat, what the last spans were).
//!
//! Firing is edge-triggered: each beat opens a new epoch, and the
//! watchdog fires **at most once per epoch** — a wedged phase produces
//! one dump, not one per poll tick. The next beat re-arms it.

use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rhychee_telemetry as telemetry;

struct WatchState {
    phase: &'static str,
    /// Incremented on every beat; the fire path records which epoch it
    /// fired for so it cannot fire twice without an intervening beat.
    epoch: u64,
    last_beat: Instant,
    fired_epoch: Option<u64>,
    stopped: bool,
}

struct Inner {
    deadline: Duration,
    dump_dir: Option<PathBuf>,
    state: Mutex<WatchState>,
    tick: Condvar,
}

/// Handle to a running round watchdog. Dropping it stops the poll
/// thread.
pub struct Watchdog {
    inner: Arc<Inner>,
    poll: Option<thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Starts a watchdog that fires when no [`beat`](Self::beat)
    /// arrives within `deadline`. When `dump_dir` is set, each firing
    /// writes a flight-recorder snapshot there (reason `"stall"`).
    pub fn spawn(deadline: Duration, dump_dir: Option<PathBuf>) -> Watchdog {
        assert!(deadline > Duration::ZERO, "watchdog deadline must be positive");
        let inner = Arc::new(Inner {
            deadline,
            dump_dir,
            state: Mutex::new(WatchState {
                phase: "startup",
                epoch: 0,
                last_beat: Instant::now(),
                fired_epoch: None,
                stopped: false,
            }),
            tick: Condvar::new(),
        });
        let poll_inner = Arc::clone(&inner);
        let poll = thread::Builder::new()
            .name("round-watchdog".into())
            .spawn(move || poll_loop(&poll_inner))
            .expect("spawn watchdog thread");
        Watchdog { inner, poll: Some(poll) }
    }

    /// Marks a phase transition: the round made progress and is now in
    /// `phase`. Opens a new epoch and re-arms the watchdog.
    pub fn beat(&self, phase: &'static str) {
        let mut state = self.inner.state.lock().expect("watchdog state");
        state.phase = phase;
        state.epoch += 1;
        state.last_beat = Instant::now();
        drop(state);
        self.inner.tick.notify_one();
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("watchdog state");
            state.stopped = true;
        }
        self.inner.tick.notify_one();
        if let Some(poll) = self.poll.take() {
            let _ = poll.join();
        }
    }
}

fn poll_loop(inner: &Inner) {
    let mut state = inner.state.lock().expect("watchdog state");
    loop {
        if state.stopped {
            return;
        }
        let elapsed = state.last_beat.elapsed();
        let overdue = elapsed >= inner.deadline;
        if overdue && state.fired_epoch != Some(state.epoch) {
            state.fired_epoch = Some(state.epoch);
            let phase = state.phase;
            // Fire outside the lock: the dump walks the full metrics
            // registry and must not block beats.
            drop(state);
            fire(inner, phase, elapsed);
            state = inner.state.lock().expect("watchdog state");
            continue;
        }
        // Sleep until the current epoch's deadline (or a beat/stop).
        let wait = if overdue { inner.deadline } else { inner.deadline - elapsed };
        let (next, _) = inner.tick.wait_timeout(state, wait).expect("watchdog state");
        state = next;
    }
}

fn fire(inner: &Inner, phase: &'static str, elapsed: Duration) {
    // Straight to the registry, not the `telemetry::count` facade: a
    // stall must be recorded even when fine-grained telemetry is off.
    telemetry::metrics::global().counter("fl.round.stalled").add(1);
    eprintln!(
        "round watchdog: phase '{phase}' stalled for {:.1}s (deadline {:.1}s)",
        elapsed.as_secs_f64(),
        inner.deadline.as_secs_f64()
    );
    if let Some(dir) = &inner.dump_dir {
        match crate::flight::dump(dir, "stall") {
            Ok(path) => eprintln!("round watchdog: flight recorder dumped to {}", path.display()),
            Err(err) => eprintln!("round watchdog: flight recorder dump failed: {err}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stall counter is process-global; tests asserting exact
    /// deltas must not observe each other's firings.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    fn stall_count() -> u64 {
        telemetry::metrics::global().counter("fl.round.stalled").get()
    }

    #[test]
    fn fires_exactly_once_per_stalled_epoch() {
        let _serial = COUNTER_LOCK.lock().expect("counter lock");
        let before = stall_count();
        let wd = Watchdog::spawn(Duration::from_millis(20), None);
        wd.beat("collect");
        thread::sleep(Duration::from_millis(150));
        assert_eq!(stall_count() - before, 1, "one stall, one firing — not one per poll tick");
        // A beat re-arms it; a fresh stall fires again.
        wd.beat("aggregate");
        thread::sleep(Duration::from_millis(150));
        assert_eq!(stall_count() - before, 2, "re-armed watchdog fires for the new epoch");
    }

    #[test]
    fn steady_beats_never_fire() {
        let _serial = COUNTER_LOCK.lock().expect("counter lock");
        let before = stall_count();
        let wd = Watchdog::spawn(Duration::from_millis(60), None);
        for _ in 0..10 {
            wd.beat("collect");
            thread::sleep(Duration::from_millis(5));
        }
        drop(wd);
        assert_eq!(stall_count(), before, "beats inside the deadline keep the watchdog quiet");
    }

    #[test]
    fn firing_writes_a_flight_dump() {
        let _serial = COUNTER_LOCK.lock().expect("counter lock");
        let dir =
            std::env::temp_dir().join(format!("rhychee-watchdog-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wd = Watchdog::spawn(Duration::from_millis(20), Some(dir.clone()));
        wd.beat("collect");
        thread::sleep(Duration::from_millis(150));
        drop(wd);
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .expect("dump dir created")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("flight-stall-") && n.ends_with(".json"))
            .collect();
        assert_eq!(dumps.len(), 1, "exactly one dump for one stall: {dumps:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
