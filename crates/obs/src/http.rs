//! Hand-rolled blocking HTTP/1.1 exposition server.
//!
//! Serves five read-only endpoints off the global telemetry state:
//!
//! - `/metrics` — Prometheus text exposition ([`crate::prometheus`]);
//!   every scrape first refreshes the `mem.*` gauges from their live
//!   sources so heap/RSS/subsystem figures are scrape-fresh
//! - `/healthz` — JSON liveness summary (round number, quorum status,
//!   connected clients, uptime, memory headline figures, pool queue
//!   depth, wire byte counters)
//! - `/trace.json` — the ring of most recent completed spans (with
//!   per-span allocation attribution when the tracking allocator is
//!   installed), plus the count of spans dropped on ring overflow
//! - `/rounds.json` — the per-round federation timeline with
//!   round-phase SLO quantiles ([`crate::rounds`])
//! - `/memory.json` — the reconciled memory breakdown
//!   ([`crate::memory`])
//!
//! The server follows the `rhychee-net` socket idioms: a nonblocking
//! accept loop polled on a short sleep (so shutdown needs no self-
//! connect), blocking per-connection I/O with hard timeouts, and
//! `Connection: close` on every response — one request per connection,
//! which is exactly how Prometheus scrapes. Requests are bounded at
//! [`MAX_REQUEST_BYTES`] before any allocation-heavy parsing.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rhychee_telemetry as telemetry;
use rhychee_telemetry::json::JsonObject;

use crate::prometheus;

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Hard cap on request head size; larger requests are rejected.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A bound-but-not-yet-serving exposition server.
#[derive(Debug)]
pub struct ObsServer {
    listener: TcpListener,
}

impl ObsServer {
    /// Binds the exposition listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(ObsServer { listener: TcpListener::bind(addr)? })
    }

    /// The bound scrape address.
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts serving on a background thread and returns the handle that
    /// owns it. The handle stops the server on [`ObsHandle::shutdown`] or
    /// drop.
    ///
    /// # Errors
    ///
    /// Propagates failures switching the listener to nonblocking mode.
    pub fn spawn(self) -> io::Result<ObsHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let listener = self.listener;
        let join = thread::Builder::new()
            .name("rhychee-obs".into())
            .spawn(move || accept_loop(&listener, &stop_flag))?;
        Ok(ObsHandle { addr, stop, join: Some(join) })
    }
}

/// Owns a running exposition server; stops it on shutdown or drop.
#[derive(Debug)]
pub struct ObsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ObsHandle {
    /// The address scrapers should target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ObsHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                telemetry::count("obs.http.requests", 1);
                let _ = handle_connection(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = match read_request_head(&mut stream) {
        Ok(head) => head,
        Err(_) => {
            return write_response(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "malformed request\n",
            );
        }
    };
    let mut parts = head.lines().next().unwrap_or("").split(' ');
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let path = target.split('?').next().unwrap_or("");
    if method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    match path {
        "/metrics" => {
            let _ = crate::memory::refresh_gauges();
            let body = prometheus::render(&telemetry::metrics::global().snapshot());
            write_response(&mut stream, "200 OK", "text/plain; version=0.0.4", &body)
        }
        "/healthz" => write_response(&mut stream, "200 OK", "application/json", &health_body()),
        "/trace.json" => write_response(&mut stream, "200 OK", "application/json", &trace_body()),
        "/rounds.json" => {
            write_response(&mut stream, "200 OK", "application/json", &crate::rounds::render_json())
        }
        "/memory.json" => {
            write_response(&mut stream, "200 OK", "application/json", &crate::memory::memory_body())
        }
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics, /healthz, /trace.json, /rounds.json or /memory.json\n",
        ),
    }
}

/// Reads until the end of the request head (`\r\n\r\n`), bounded by
/// [`MAX_REQUEST_BYTES`]. Request bodies are neither expected nor read.
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            return Ok(String::from_utf8_lossy(&buf).into_owned());
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(io::ErrorKind::InvalidData.into());
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The `/healthz` JSON body, assembled from the well-known gauges the
/// `FlServer` round loop publishes (DESIGN.md §10). Gauges that were
/// never set read as their zero default.
fn health_body() -> String {
    let reg = telemetry::metrics::global();
    let gauge = |name: &str| reg.gauge(name).get();
    // Scenario-engine state (DESIGN.md §13): the `fl.scenario.*` gauges
    // and counters the rhychee-scenario runner publishes. All zero when
    // no scenario ever ran in this process.
    let scenario = JsonObject::new()
        .bool("active", gauge("fl.scenario.active") != 0.0)
        .u64("attackers", gauge("fl.scenario.attackers") as u64)
        .u64("attacks_injected", reg.counter("fl.scenario.attacks_injected").get())
        .u64("updates_clipped", reg.counter("fl.scenario.updates_clipped").get())
        .u64("clients_churned", reg.counter("fl.scenario.clients_churned").get())
        .u64("stragglers_dropped", reg.counter("fl.scenario.stragglers_dropped").get())
        .u64("threshold_recoveries", reg.counter("fl.scenario.threshold_recoveries").get())
        .u64(
            "threshold_recovery_failures",
            reg.counter("fl.scenario.threshold_recovery_failures").get(),
        )
        .finish();
    // Memory headline figures, refreshed at scrape time so /healthz and
    // /memory.json can never disagree about the same instant.
    let _ = crate::memory::refresh_gauges();
    let heap = telemetry::alloc::stats();
    let (rss_now, rss_peak) = telemetry::mem::sample_rss().unwrap_or((0, 0));
    let memory = JsonObject::new()
        .u64("heap_live_bytes", heap.live_bytes)
        .u64("heap_peak_bytes", heap.peak_bytes)
        .u64("rss_bytes", rss_now)
        .u64("rss_peak_bytes", rss_peak)
        .finish();
    JsonObject::new()
        .str("status", "ok")
        .f64("uptime_s", telemetry::mem::uptime_seconds())
        .u64("round", gauge("fl.round.current") as u64)
        .u64("rounds_total", gauge("fl.rounds.total") as u64)
        .u64("clients_connected", gauge("fl.clients.connected") as u64)
        .bool("quorum_met", gauge("fl.quorum.met") != 0.0)
        .u64("pool_queue_depth", gauge("par.queue.depth") as u64)
        .u64("bytes_tx", reg.counter("net.bytes_tx").get())
        .u64("bytes_rx", reg.counter("net.bytes_rx").get())
        .u64("rejoined_clients", reg.counter("net.rejoins").get())
        .u64("resident_uploads", gauge("net.agg.resident_uploads") as u64)
        .u64("peak_resident_uploads", gauge("net.agg.peak_resident_uploads") as u64)
        .u64("round_stalls", reg.counter("fl.round.stalled").get())
        .raw("memory", &memory)
        .raw("scenario", &scenario)
        .finish()
}

/// The `/trace.json` body: the recent-span ring, oldest first, prefixed
/// with how many spans the ring has evicted since process start.
fn trace_body() -> String {
    let events = telemetry::trace::recent_events();
    let dropped = telemetry::metrics::global().counter("obs.trace.dropped").get();
    let mut out = format!("{{\"dropped\":{dropped},\"events\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut obj = JsonObject::new();
        obj.str("name", e.name)
            .str("path", &e.path)
            .u64("depth", u64::from(e.depth))
            .u64("thread", e.thread)
            .u64("start_ns", e.start_ns)
            .u64("dur_ns", e.dur_ns);
        if e.alloc_bytes != 0 || e.alloc_calls != 0 {
            obj.u64("alloc_bytes", e.alloc_bytes).u64("alloc_calls", e.alloc_calls);
        }
        out.push_str(&obj.finish());
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, request: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("recv");
        let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
        (head.lines().next().expect("status line").to_owned(), body.to_owned())
    }

    fn serve() -> ObsHandle {
        ObsServer::bind("127.0.0.1:0").expect("bind").spawn().expect("spawn")
    }

    #[test]
    fn serves_metrics_healthz_and_trace() {
        let reg = telemetry::metrics::global();
        reg.gauge("fl.round.current").set(2.0);
        reg.counter("net.bytes_tx").add(100);
        let mut h = serve();
        let addr = h.addr();

        let (status, body) = get(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("# TYPE rhychee_fl_round_current gauge"), "{body}");
        assert!(body.contains("rhychee_net_bytes_tx_total"), "{body}");

        let (status, body) = get(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"round\":2"), "{body}");
        assert!(body.contains("\"uptime_s\":"), "{body}");
        assert!(body.contains("\"peak_resident_uploads\":"), "{body}");
        assert!(body.contains("\"round_stalls\":"), "{body}");
        assert!(body.contains("\"memory\":{\"heap_live_bytes\":"), "{body}");
        assert!(body.contains("\"scenario\":{"), "{body}");
        assert!(body.contains("\"attacks_injected\":"), "{body}");

        let (status, body) = get(addr, "GET /memory.json HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"heap\":{\"installed\":"), "{body}");
        assert!(body.contains("\"sources\":{"), "{body}");

        let (status, body) = get(addr, "GET /trace.json?limit=5 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.starts_with("{\"dropped\":"), "{body}");
        assert!(body.contains("\"events\":["), "{body}");

        let (status, body) = get(addr, "GET /rounds.json HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.starts_with("{\"rounds\":["), "{body}");
        assert!(body.contains("\"phases\":{"), "{body}");

        h.shutdown();
    }

    #[test]
    fn rejects_unknown_paths_and_methods() {
        let h = serve();
        let (status, _) = get(h.addr(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        let (status, _) = get(h.addr(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut h = serve();
        h.shutdown();
        h.shutdown();
        drop(h);
    }
}
