//! Round-timeline store behind the `/rounds.json` endpoint.
//!
//! The `FlServer` coordinator publishes one [`RoundRecord`] per
//! aggregation round (when telemetry is enabled): per-client arrival
//! offsets relative to the round's broadcast, the instant quorum was
//! met, and the straggler count. [`render_json`] joins that timeline
//! with the six `fl.phase.*.ns` SLO histograms from the global registry
//! into one JSON document.
//!
//! Schema (DESIGN.md §12):
//!
//! ```json
//! {
//!   "rounds": [
//!     {
//!       "round": 0, "start_ns": 123, "quorum_ns": 456, "close_ns": 789,
//!       "received": 4, "rejected": 0, "stragglers": 0,
//!       "arrivals": [
//!         {"client_id": 0, "offset_ns": 321, "bytes": 65536, "accepted": true}
//!       ]
//!     }
//!   ],
//!   "phases": {
//!     "broadcast": {"count": 12, "p50": 1000, "p95": 2000, "p99": 2500},
//!     ...
//!   }
//! }
//! ```
//!
//! `start_ns` is a trace-clock timestamp (same epoch as `/trace.json`
//! span starts); `quorum_ns`, `close_ns` and arrival `offset_ns` are
//! offsets from the round's broadcast instant. `quorum_ns` is `null`
//! for rounds that closed without reaching quorum.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use rhychee_telemetry as telemetry;
use rhychee_telemetry::json::JsonObject;

/// Most recent rounds retained; older records are evicted FIFO.
pub const ROUNDS_CAP: usize = 1024;

/// The six round phases whose `fl.phase.<name>.ns` histograms are
/// summarized under `"phases"`.
pub const PHASES: &[&str] =
    &["broadcast", "local_train", "encrypt", "upload", "aggregate", "decrypt"];

/// One client's upload within a round's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientArrival {
    /// Uploading client.
    pub client_id: usize,
    /// Read-completion offset from the round's broadcast, in ns.
    pub offset_ns: u64,
    /// Framed upload size read off the socket.
    pub bytes: u64,
    /// Whether the update was folded into the aggregate.
    pub accepted: bool,
}

/// One aggregation round's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Trace-clock timestamp of the round's broadcast.
    pub start_ns: u64,
    /// Offset from broadcast when the quorum-th update was accepted.
    pub quorum_ns: Option<u64>,
    /// Offset from broadcast when the round closed (aggregate done).
    pub close_ns: u64,
    /// Updates folded into the aggregate.
    pub received: usize,
    /// Late or duplicate uploads NACKed during the round.
    pub rejected: usize,
    /// Clients live at broadcast whose update missed the aggregate.
    pub stragglers: usize,
    /// Per-upload arrivals, in arrival order.
    pub arrivals: Vec<ClientArrival>,
}

fn ring() -> &'static Mutex<VecDeque<RoundRecord>> {
    static RING: OnceLock<Mutex<VecDeque<RoundRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(64)))
}

/// Appends a round record, evicting the oldest past [`ROUNDS_CAP`].
pub fn record(rec: RoundRecord) {
    let mut ring = ring().lock().expect("rounds ring poisoned");
    if ring.len() == ROUNDS_CAP {
        ring.pop_front();
    }
    ring.push_back(rec);
}

/// A copy of the retained timeline, oldest round first.
pub fn snapshot() -> Vec<RoundRecord> {
    ring().lock().expect("rounds ring poisoned").iter().cloned().collect()
}

/// Empties the store (test isolation between runs in one process).
pub fn clear() {
    ring().lock().expect("rounds ring poisoned").clear();
}

/// Renders the `/rounds.json` body: the retained round timeline plus
/// p50/p95/p99 summaries of the `fl.phase.*.ns` histograms.
pub fn render_json() -> String {
    let rounds = snapshot();
    let mut out = String::from("{\"rounds\":[");
    for (i, r) in rounds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"round\":");
        out.push_str(&r.round.to_string());
        out.push_str(",\"start_ns\":");
        out.push_str(&r.start_ns.to_string());
        out.push_str(",\"quorum_ns\":");
        match r.quorum_ns {
            Some(q) => out.push_str(&q.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"close_ns\":");
        out.push_str(&r.close_ns.to_string());
        out.push_str(",\"received\":");
        out.push_str(&r.received.to_string());
        out.push_str(",\"rejected\":");
        out.push_str(&r.rejected.to_string());
        out.push_str(",\"stragglers\":");
        out.push_str(&r.stragglers.to_string());
        out.push_str(",\"arrivals\":[");
        for (j, a) in r.arrivals.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let mut obj = JsonObject::new();
            obj.u64("client_id", a.client_id as u64)
                .u64("offset_ns", a.offset_ns)
                .u64("bytes", a.bytes)
                .bool("accepted", a.accepted);
            out.push_str(&obj.finish());
        }
        out.push_str("]}");
    }
    out.push_str("],\"phases\":{");
    let reg = telemetry::metrics::global();
    for (i, phase) in PHASES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let h = reg.histogram(&format!("fl.phase.{phase}.ns"));
        let mut obj = JsonObject::new();
        obj.u64("count", h.count())
            .u64("p50", h.quantile(0.5).unwrap_or(0))
            .u64("p95", h.quantile(0.95).unwrap_or(0))
            .u64("p99", h.quantile(0.99).unwrap_or(0));
        out.push_str(&format!("\"{phase}\":{}", obj.finish()));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: usize) -> RoundRecord {
        RoundRecord {
            round,
            start_ns: 1_000 + round as u64,
            quorum_ns: Some(50),
            close_ns: 90,
            received: 2,
            rejected: 1,
            stragglers: 0,
            arrivals: vec![
                ClientArrival { client_id: 0, offset_ns: 40, bytes: 128, accepted: true },
                ClientArrival { client_id: 1, offset_ns: 50, bytes: 130, accepted: true },
            ],
        }
    }

    #[test]
    fn ring_evicts_oldest_past_cap() {
        clear();
        for round in 0..ROUNDS_CAP + 3 {
            record(rec(round));
        }
        let snap = snapshot();
        assert_eq!(snap.len(), ROUNDS_CAP);
        assert_eq!(snap.first().expect("first").round, 3);
        assert_eq!(snap.last().expect("last").round, ROUNDS_CAP + 2);
        clear();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn render_json_emits_rounds_and_all_six_phases() {
        clear();
        record(RoundRecord { quorum_ns: None, ..rec(7) });
        record(rec(8));
        let body = render_json();
        clear();

        assert!(body.starts_with("{\"rounds\":["), "{body}");
        assert!(body.contains("\"round\":7"), "{body}");
        assert!(body.contains("\"quorum_ns\":null"), "{body}");
        assert!(body.contains("\"quorum_ns\":50"), "{body}");
        assert!(body.contains("\"stragglers\":0"), "{body}");
        assert!(
            body.contains("{\"client_id\":1,\"offset_ns\":50,\"bytes\":130,\"accepted\":true}"),
            "{body}"
        );
        for phase in PHASES {
            assert!(body.contains(&format!("\"{phase}\":{{\"count\":")), "{phase} in {body}");
        }
        // Balanced braces/brackets: crude structural validity check.
        let opens = body.matches('{').count();
        let closes = body.matches('}').count();
        assert_eq!(opens, closes, "{body}");
    }
}
