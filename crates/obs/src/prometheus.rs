//! Prometheus text-exposition rendering (format version 0.0.4).
//!
//! Renders a [`MetricsSnapshot`] into the plain-text format scraped by
//! Prometheus: counters as `<name>_total`, gauges verbatim, histograms as
//! cumulative `_bucket{le="..."}` series plus `_sum`/`_count`. Internal
//! `crate.component.op` metric names map to `rhychee_crate_component_op`
//! (naming rules in DESIGN.md §10).
//!
//! Labeled series — interned by the registry under the spelling
//! `family{label="value"}` (DESIGN.md §12) — keep their label block
//! verbatim: only the family part is name-mangled, the counter suffix
//! lands *before* the labels (`rhychee_x_total{client_id="0"}`), and
//! histogram `le` labels merge into the existing block. One `# TYPE`
//! line is emitted per family, not per labeled series.

use std::collections::HashSet;

use rhychee_telemetry::metrics::MetricsSnapshot;

/// Maps an internal dotted metric name to its Prometheus series name:
/// prefix `rhychee_`, then every character outside `[a-zA-Z0-9_]`
/// becomes `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("rhychee_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Formats a gauge sample the way Prometheus expects: decimal floats,
/// with the non-finite spellings `NaN` / `+Inf` / `-Inf`.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_owned()
        } else {
            "-Inf".to_owned()
        }
    } else {
        format!("{v}")
    }
}

/// Splits a registry series name into its family and the label block's
/// inner `k="v"` list (without braces), if any.
fn split_series(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((family, rest)) => (family, Some(rest.strip_suffix('}').unwrap_or(rest))),
        None => (name, None),
    }
}

/// Renders a snapshot as Prometheus text exposition. Series appear in
/// snapshot (name-sorted) order: counters, then gauges, then histogram
/// families with cumulative buckets.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut typed: HashSet<String> = HashSet::new();
    for (name, value) in &snap.counters {
        let (family, labels) = split_series(name);
        let n = metric_name(family);
        if typed.insert(n.clone()) {
            out.push_str(&format!("# TYPE {n}_total counter\n"));
        }
        match labels {
            Some(l) => out.push_str(&format!("{n}_total{{{l}}} {value}\n")),
            None => out.push_str(&format!("{n}_total {value}\n")),
        }
    }
    for (name, value) in &snap.gauges {
        let (family, labels) = split_series(name);
        let n = metric_name(family);
        if typed.insert(n.clone()) {
            out.push_str(&format!("# TYPE {n} gauge\n"));
        }
        match labels {
            Some(l) => out.push_str(&format!("{n}{{{l}}} {}\n", format_value(*value))),
            None => out.push_str(&format!("{n} {}\n", format_value(*value))),
        }
    }
    for h in &snap.histograms {
        let (family, labels) = split_series(&h.name);
        let n = metric_name(family);
        if typed.insert(n.clone()) {
            out.push_str(&format!("# TYPE {n} histogram\n"));
        }
        // `le` joins any existing labels: {client_id="0",le="100"}.
        let le_block = |le: &str| match labels {
            Some(l) => format!("{{{l},le=\"{le}\"}}"),
            None => format!("{{le=\"{le}\"}}"),
        };
        let plain_block = match labels {
            Some(l) => format!("{{{l}}}"),
            None => String::new(),
        };
        let mut cumulative = 0u64;
        for &(upper, count) in &h.buckets {
            cumulative += count;
            out.push_str(&format!("{n}_bucket{} {cumulative}\n", le_block(&upper.to_string())));
        }
        out.push_str(&format!("{n}_bucket{} {}\n", le_block("+Inf"), h.count));
        out.push_str(&format!("{n}_sum{plain_block} {}\n", h.sum));
        out.push_str(&format!("{n}_count{plain_block} {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use rhychee_telemetry::Registry;

    use super::*;

    /// A minimal exposition parser for round-trip testing: returns every
    /// sample line as `(series name with labels, value)` and validates
    /// the line grammar along the way.
    fn parse(text: &str) -> BTreeMap<String, f64> {
        let mut samples = BTreeMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "unknown type: {line}");
                assert!(name.starts_with("rhychee_"), "unprefixed family: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
                panic!("sample line must be `series value`: {line:?}");
            });
            let value: f64 = match value {
                "NaN" => f64::NAN,
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                v => v.parse().unwrap_or_else(|_| panic!("bad value in {line:?}")),
            };
            let bare = series.split('{').next().unwrap();
            assert!(
                bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "invalid series name: {series}"
            );
            assert!(samples.insert(series.to_owned(), value).is_none(), "duplicate: {series}");
        }
        samples
    }

    #[test]
    fn name_mapping_follows_design_rules() {
        assert_eq!(metric_name("fl.round.current"), "rhychee_fl_round_current");
        assert_eq!(metric_name("net.bytes-tx"), "rhychee_net_bytes_tx");
        assert_eq!(metric_name("fhe.ckks.scale_bits"), "rhychee_fhe_ckks_scale_bits");
    }

    #[test]
    fn round_trip_against_registry_snapshot() {
        let reg = Registry::new();
        reg.counter("net.bytes_tx").add(4096);
        reg.gauge("fl.round.current").set(3.0);
        reg.gauge("fl.decrypt_error.max").set(1.25e-4);
        let h = reg.histogram("fhe.ckks.encrypt");
        for v in [7u64, 7, 100, 5_000_000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let samples = parse(&render(&snap));

        assert_eq!(samples["rhychee_net_bytes_tx_total"], 4096.0);
        assert_eq!(samples["rhychee_fl_round_current"], 3.0);
        assert_eq!(samples["rhychee_fl_decrypt_error_max"], 1.25e-4);
        assert_eq!(samples["rhychee_fhe_ckks_encrypt_sum"], 5_000_114.0);
        assert_eq!(samples["rhychee_fhe_ckks_encrypt_count"], 4.0);
        assert_eq!(samples["rhychee_fhe_ckks_encrypt_bucket{le=\"+Inf\"}"], 4.0);

        // Buckets are cumulative, monotone, and end at the total count.
        let mut buckets: Vec<(u64, f64)> = samples
            .iter()
            .filter_map(|(k, &v)| {
                let le = k.strip_prefix("rhychee_fhe_ckks_encrypt_bucket{le=\"")?;
                let le = le.strip_suffix("\"}")?;
                le.parse::<u64>().ok().map(|le| (le, v))
            })
            .collect();
        buckets.sort_unstable_by_key(|&(le, _)| le);
        assert_eq!(buckets.len(), snap.histograms[0].buckets.len());
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "not cumulative: {buckets:?}");
        assert_eq!(buckets.first().unwrap().1, 2.0, "two samples in the le=7 bucket");
        assert_eq!(buckets.last().unwrap().1, 4.0);
        // Every sample lands at or below its bucket's upper bound.
        assert!(buckets.iter().any(|&(le, _)| le >= 5_000_000));
    }

    #[test]
    fn labeled_series_render_with_one_type_line_per_family() {
        let reg = Registry::new();
        reg.counter_labeled("net.client.upload_bytes", "client_id", "0").add(128);
        reg.counter_labeled("net.client.upload_bytes", "client_id", "1").add(256);
        reg.histogram_labeled("net.client.rtt_ns", "client_id", "0").record(1000);
        let text = render(&reg.snapshot());
        let samples = parse(&text);

        assert_eq!(samples["rhychee_net_client_upload_bytes_total{client_id=\"0\"}"], 128.0);
        assert_eq!(samples["rhychee_net_client_upload_bytes_total{client_id=\"1\"}"], 256.0);
        assert_eq!(
            text.matches("# TYPE rhychee_net_client_upload_bytes_total counter").count(),
            1,
            "one TYPE line per labeled family:\n{text}"
        );
        // Histogram `le` merges into the existing label block, and
        // sum/count keep the client label.
        assert_eq!(samples["rhychee_net_client_rtt_ns_bucket{client_id=\"0\",le=\"+Inf\"}"], 1.0);
        assert_eq!(samples["rhychee_net_client_rtt_ns_sum{client_id=\"0\"}"], 1000.0);
        assert_eq!(samples["rhychee_net_client_rtt_ns_count{client_id=\"0\"}"], 1.0);
    }

    #[test]
    fn non_finite_gauges_use_prometheus_spellings() {
        let reg = Registry::new();
        reg.gauge("a.nan").set(f64::NAN);
        reg.gauge("b.inf").set(f64::INFINITY);
        reg.gauge("c.neg").set(f64::NEG_INFINITY);
        let text = render(&reg.snapshot());
        assert!(text.contains("rhychee_a_nan NaN\n"));
        assert!(text.contains("rhychee_b_inf +Inf\n"));
        assert!(text.contains("rhychee_c_neg -Inf\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert!(render(&MetricsSnapshot::default()).is_empty());
    }
}
