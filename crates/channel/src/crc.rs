//! Error-detection codes: CRC-32 (IEEE 802.3) and the 16-bit Internet
//! checksum (RFC 1071).
//!
//! The paper's receiver model (§IV-C) compares both: the checksum is
//! cheaper but far weaker; CRC-32 drives the undetected-error probability
//! `P_re = 2^-32` used in the failure analysis.

/// Reflected CRC-32 polynomial (IEEE 802.3).
const CRC32_POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table for [`crc32`].
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ CRC32_POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 (IEEE 802.3, reflected) of a byte slice.
///
/// # Examples
///
/// ```
/// use rhychee_channel::crc::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // standard check value
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Computes the 16-bit Internet checksum (RFC 1071 ones'-complement sum).
///
/// # Examples
///
/// ```
/// use rhychee_channel::crc::internet_checksum;
///
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(internet_checksum(&data), 0x220d);
/// ```
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Which error-detection code a receiver runs on each packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detector {
    /// 32-bit cyclic redundancy check.
    Crc32,
    /// 16-bit Internet checksum.
    Checksum16,
}

impl Detector {
    /// Probability that a *corrupted* packet passes undetected
    /// (`P_re` in the paper: `2^-32` for CRC-32, `2^-16` for the
    /// checksum — the standard random-error approximation).
    pub fn undetected_probability(self) -> f64 {
        match self {
            Detector::Crc32 => 2.0f64.powi(-32),
            Detector::Checksum16 => 2.0f64.powi(-16),
        }
    }

    /// Size of the appended check value in bits.
    pub fn tag_bits(self) -> usize {
        match self {
            Detector::Crc32 => 32,
            Detector::Checksum16 => 16,
        }
    }

    /// Computes the check tag over a payload (low bytes used for the
    /// 16-bit checksum).
    pub fn compute(self, data: &[u8]) -> u32 {
        match self {
            Detector::Crc32 => crc32(data),
            Detector::Checksum16 => u32::from(internet_checksum(data)),
        }
    }

    /// Verifies a tag produced by [`Detector::compute`].
    pub fn verify(self, data: &[u8], tag: u32) -> bool {
        self.compute(data) == tag
    }
}

impl std::fmt::Display for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Detector::Crc32 => write!(f, "CRC-32"),
            Detector::Checksum16 => write!(f, "Checksum-16"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let tag = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), tag, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn crc32_detects_burst_errors() {
        let data = vec![0xAAu8; 200];
        let tag = crc32(&data);
        // All burst errors up to 32 bits are detected by CRC-32.
        for start in [0usize, 50, 199] {
            let mut corrupted = data.clone();
            corrupted[start] ^= 0xFF;
            if start + 1 < corrupted.len() {
                corrupted[start + 1] ^= 0xFF;
            }
            assert_ne!(crc32(&corrupted), tag);
        }
    }

    #[test]
    fn checksum_rfc1071_examples() {
        // Sum of zero data is 0xFFFF (complement of 0).
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xFFFF);
        // Odd-length input pads with zero.
        let even = internet_checksum(&[0x12, 0x34, 0x56, 0x00]);
        let odd = internet_checksum(&[0x12, 0x34, 0x56]);
        assert_eq!(even, odd);
    }

    #[test]
    fn checksum_misses_reordered_words() {
        // The classic checksum weakness: word reordering is invisible.
        let a = [0x12u8, 0x34, 0x56, 0x78];
        let b = [0x56u8, 0x78, 0x12, 0x34];
        assert_eq!(internet_checksum(&a), internet_checksum(&b));
        // CRC-32 catches it.
        assert_ne!(crc32(&a), crc32(&b));
    }

    #[test]
    fn detector_round_trip() {
        let data = b"payload".to_vec();
        for det in [Detector::Crc32, Detector::Checksum16] {
            let tag = det.compute(&data);
            assert!(det.verify(&data, tag));
            let mut bad = data.clone();
            bad[0] ^= 1;
            assert!(!det.verify(&bad, tag), "{det} missed a flip");
        }
    }

    #[test]
    fn undetected_probabilities() {
        assert!(
            Detector::Crc32.undetected_probability()
                < Detector::Checksum16.undetected_probability()
        );
        assert_eq!(Detector::Crc32.tag_bits(), 32);
        assert_eq!(Detector::Checksum16.tag_bits(), 16);
        let p = Detector::Crc32.undetected_probability();
        assert!((p - 2.328e-10).abs() / p < 1e-3, "paper quotes 2.328e-10");
    }
}
