//! Analytical failure and latency models for FHE ciphertext transport
//! (paper §IV-C).
//!
//! Chain of quantities:
//!
//! * `p_pkt` — probability a packet arrives with ≥ 1 bit error
//!   (paper approximation `N·BER`, exact form `1 − (1−BER)^N`);
//! * `P_ue = N·BER·P_re` — probability of an *undetected* error per
//!   transmission;
//! * `E[T] = 1/P_ue` — expected transmissions until the first undetected
//!   error;
//! * `E[R] = E[T] / (2·P·#packets)` — expected aggregation rounds until
//!   failure for `P` clients (two-way traffic);
//! * `L_comm = (L_pkt + L_detect) · N_re` — per-payload latency (Eq. 3).

use crate::crc::Detector;
use crate::phy::PhyConfig;

/// Channel/deployment parameters for the analytical model.
#[derive(Debug, Clone, Copy)]
pub struct ChannelModel {
    /// Bit error rate (paper: 1e-3).
    pub ber: f64,
    /// Packet size in bits (paper: 1400).
    pub packet_bits: usize,
    /// Error-detection code at the receiver.
    pub detector: Detector,
    /// Physical-layer latency parameters.
    pub phy: PhyConfig,
}

impl Default for ChannelModel {
    fn default() -> Self {
        ChannelModel {
            ber: 1e-3,
            packet_bits: 1400,
            detector: Detector::Crc32,
            phy: PhyConfig::default(),
        }
    }
}

impl ChannelModel {
    /// Packet error probability, exact: `1 − (1 − BER)^N`.
    pub fn packet_error_probability(&self) -> f64 {
        1.0 - (1.0 - self.ber).powi(self.packet_bits as i32)
    }

    /// Packet error probability, the paper's linear approximation `N·BER`
    /// (clamped to 1).
    pub fn packet_error_probability_linear(&self) -> f64 {
        (self.packet_bits as f64 * self.ber).min(1.0)
    }

    /// Expected transmissions per packet with detect-and-retransmit:
    /// `1 / (1 − p_pkt)` (`N_re` in Eq. 3).
    pub fn expected_transmissions_per_packet(&self) -> f64 {
        1.0 / (1.0 - self.packet_error_probability())
    }

    /// Expected bit errors per packet, `N·BER` (unclamped; the paper uses
    /// this rate directly even when it exceeds 1).
    pub fn bit_errors_per_packet(&self) -> f64 {
        self.packet_bits as f64 * self.ber
    }

    /// Rate of undetected errors per transmission:
    /// `P_ue = N·BER·P_re` (paper §IV-C).
    ///
    /// Note this is a Poisson *rate*, not a clamped probability: at
    /// BER = 1e-3 and 1400-bit packets, `N·BER = 1.4`, matching the
    /// paper's `E[T] ≈ 3.04e9` for CRC-32.
    pub fn undetected_error_probability(&self) -> f64 {
        self.bit_errors_per_packet() * self.detector.undetected_probability()
    }

    /// Expected transmissions until the first undetected error:
    /// `E[T] = 1/P_ue`.
    pub fn expected_transmissions_to_failure(&self) -> f64 {
        1.0 / self.undetected_error_probability()
    }

    /// Packets needed for a payload of `payload_bits`.
    pub fn packets_for_bits(&self, payload_bits: u64) -> u64 {
        payload_bits.div_ceil(self.packet_bits as u64)
    }

    /// Expected aggregation rounds until failure for `clients` clients
    /// exchanging `payload_bits` per direction per round:
    /// `E[R] = E[T] / (2·P·#packets)`.
    pub fn expected_rounds_to_failure(&self, clients: usize, payload_bits: u64) -> f64 {
        let packets = self.packets_for_bits(payload_bits) as f64;
        self.expected_transmissions_to_failure() / (2.0 * clients as f64 * packets)
    }

    /// Latency to deliver one packet including retransmissions (Eq. 3):
    /// `(L_pkt + L_detect) · N_re`.
    pub fn packet_latency(&self) -> f64 {
        let l_pkt = self.phy.packet_airtime(self.packet_bits);
        let l_det = self.phy.detection_latency(self.packet_bits, self.detector);
        (l_pkt + l_det) * self.expected_transmissions_per_packet()
    }

    /// Latency to deliver a payload of `payload_bits` one way, in seconds.
    pub fn payload_latency(&self, payload_bits: u64) -> f64 {
        self.packets_for_bits(payload_bits) as f64 * self.packet_latency()
    }

    /// Per-round communication latency for `clients` clients: upload of
    /// every local model plus download of the global model (sequential
    /// over the shared server link, as the paper's single-server setting
    /// implies).
    pub fn round_latency(&self, clients: usize, payload_bits: u64) -> f64 {
        2.0 * clients as f64 * self.payload_latency(payload_bits)
    }

    /// Expected time until the first undetected error assuming the round
    /// duration is dominated by communication: `E[R] × round latency`.
    ///
    /// Note the payload size cancels in this product (more packets per
    /// round = proportionally fewer rounds survive), so the result is the
    /// same for every model size — use
    /// [`ChannelModel::expected_time_to_failure_fixed_period`] for the
    /// paper's Fig. 5c, where rounds run on a fixed schedule.
    pub fn expected_time_to_failure(&self, clients: usize, payload_bits: u64) -> f64 {
        self.expected_rounds_to_failure(clients, payload_bits)
            * self.round_latency(clients, payload_bits)
    }

    /// Expected time until the first undetected error with a fixed
    /// per-round period (local training + scheduling), in seconds:
    /// `E[R] × period`.
    ///
    /// The paper's Fig. 5c numbers (37 days HDC vs 17 days CNN at 10
    /// clients, CKKS-4) correspond to a ≈75 s round period.
    pub fn expected_time_to_failure_fixed_period(
        &self,
        clients: usize,
        payload_bits: u64,
        round_period_secs: f64,
    ) -> f64 {
        self.expected_rounds_to_failure(clients, payload_bits) * round_period_secs
    }
}

/// Convenience: seconds → days.
pub fn seconds_to_days(s: f64) -> f64 {
    s / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> ChannelModel {
        ChannelModel::default()
    }

    #[test]
    fn paper_constants_reproduced() {
        let m = paper_model();
        // P_re = 2^-32 = 2.328e-10 (paper §V-E).
        let p_re = m.detector.undetected_probability();
        assert!((p_re - 2.328e-10).abs() / p_re < 1e-3);
        // P_ue = 1400 · 1e-3 · 2^-32, E[T] = 1/P_ue ≈ 3.07e9 ≈ paper's 3.039e9.
        let et = m.expected_transmissions_to_failure();
        assert!((et - 3.067e9).abs() / et < 0.01, "E[T] = {et:.3e}");
        assert!((et - 3.039e9).abs() / et < 0.02, "within 2% of the paper's figure");
    }

    #[test]
    fn exact_vs_linear_packet_error() {
        let m = paper_model();
        let exact = m.packet_error_probability();
        let linear = m.packet_error_probability_linear();
        // At N·BER = 1.4 the linear form saturates; exact is 1−(1−1e-3)^1400 ≈ 0.753.
        assert!((exact - 0.7534).abs() < 1e-3, "exact {exact}");
        assert_eq!(linear, 1.0);
        // At low BER both agree.
        let low = ChannelModel { ber: 1e-6, ..m };
        assert!(
            (low.packet_error_probability() - low.packet_error_probability_linear()).abs() < 1e-5
        );
    }

    #[test]
    fn retransmission_factor() {
        let m = paper_model();
        // 1/(1−0.7534) ≈ 4.06 transmissions per packet.
        let n_re = m.expected_transmissions_per_packet();
        assert!((n_re - 4.055).abs() < 0.02, "N_re = {n_re}");
    }

    #[test]
    fn rounds_to_failure_scale_with_model_size() {
        let m = paper_model();
        // Paper Fig. 5b: HDC (5 CKKS-4 cts) vs CNN (11 cts) at 10 clients.
        let hdc_bits = 5 * 2 * 8192 * 61u64;
        let cnn_bits = 11 * 2 * 8192 * 61u64;
        let e_hdc = m.expected_rounds_to_failure(10, hdc_bits);
        let e_cnn = m.expected_rounds_to_failure(10, cnn_bits);
        let ratio = e_hdc / e_cnn;
        assert!((ratio - 2.2).abs() < 0.05, "E[R] ratio {ratio}");
        assert!(e_hdc > 30_000.0 && e_hdc < 60_000.0, "E[R] HDC = {e_hdc}");
    }

    #[test]
    fn time_to_failure_matches_paper_with_fixed_period() {
        // Paper Fig. 5c: ~37 days for HDC vs ~17 for CNN with CKKS-4 at a
        // fixed ≈75 s round period.
        let m = paper_model();
        let hdc_days =
            seconds_to_days(m.expected_time_to_failure_fixed_period(10, 5 * 2 * 8192 * 61, 75.0));
        let cnn_days =
            seconds_to_days(m.expected_time_to_failure_fixed_period(10, 11 * 2 * 8192 * 61, 75.0));
        assert!((hdc_days - 37.0).abs() < 2.0, "HDC {hdc_days} days (paper: 37)");
        assert!((cnn_days - 17.0).abs() < 1.5, "CNN {cnn_days} days (paper: 17)");
        let ratio = hdc_days / cnn_days;
        assert!((ratio - 2.2).abs() < 0.05, "time ratio {ratio}");
    }

    #[test]
    fn comm_dominated_time_is_payload_invariant() {
        // E[R] × round latency cancels the payload: a structural property
        // of the detect-and-retransmit model worth pinning down.
        let m = paper_model();
        let a = m.expected_time_to_failure(10, 5 * 2 * 8192 * 61);
        let b = m.expected_time_to_failure(10, 11 * 2 * 8192 * 61);
        assert!((a / b - 1.0).abs() < 0.01, "{a} vs {b}");
    }

    #[test]
    fn latency_scales_linearly_in_payload() {
        let m = paper_model();
        let one = m.payload_latency(1400);
        let ten = m.payload_latency(14_000);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn checksum_fails_sooner_than_crc() {
        let crc = paper_model();
        let sum = ChannelModel { detector: Detector::Checksum16, ..crc };
        let bits = 5 * 2 * 8192 * 61u64;
        assert!(
            crc.expected_rounds_to_failure(10, bits)
                > 1000.0 * sum.expected_rounds_to_failure(10, bits),
            "CRC-32 should survive ~2^16 times longer"
        );
    }

    #[test]
    fn round_latency_composition() {
        let m = paper_model();
        let bits = 3 * 1400u64;
        let expected = 2.0 * 10.0 * 3.0 * m.packet_latency();
        assert!((m.round_latency(10, bits) - expected).abs() < 1e-12);
    }
}
