//! Packetized transmission over a noisy binary-symmetric channel with
//! error detection and retransmission.
//!
//! This is the *empirical* counterpart to the analytical model in
//! [`failure`](crate::failure): payload bytes are split into 1400-bit
//! TCP/IP-style packets, each protected by a detector tag and re-sent
//! until it verifies. Undetected errors (corrupted packets whose tag
//! still matches) are delivered — exactly the failure mode the paper's
//! §IV-C analyzes.

use rand::Rng;
use rhychee_telemetry as telemetry;

use crate::crc::Detector;

/// Default packet size used throughout the paper: 1400 bits = 175 bytes.
pub const PACKET_BITS: usize = 1400;

/// A binary symmetric channel flipping each bit independently.
#[derive(Debug, Clone, Copy)]
pub struct BitFlipChannel {
    /// Bit error rate in `[0, 1]`.
    pub ber: f64,
}

impl BitFlipChannel {
    /// Creates a channel with the given bit error rate.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]`.
    pub fn new(ber: f64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER must be in [0, 1]");
        BitFlipChannel { ber }
    }

    /// Transmits bytes, flipping each bit with probability `ber`.
    /// Returns the (possibly corrupted) bytes and the number of flips.
    pub fn transmit<R: Rng + ?Sized>(&self, data: &[u8], rng: &mut R) -> (Vec<u8>, usize) {
        if self.ber == 0.0 {
            return (data.to_vec(), 0);
        }
        let mut out = data.to_vec();
        let mut flips = 0;
        for byte in out.iter_mut() {
            for bit in 0..8 {
                if rng.gen::<f64>() < self.ber {
                    *byte ^= 1 << bit;
                    flips += 1;
                }
            }
        }
        (out, flips)
    }
}

/// Statistics from one payload transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Packets in the payload.
    pub packets: usize,
    /// Total transmissions including retransmissions.
    pub transmissions: usize,
    /// Retransmissions triggered by detected errors.
    pub retransmissions: usize,
    /// Packets delivered with an undetected error (silent corruption).
    pub undetected_errors: usize,
}

/// A reliable-delivery link: packetization + detector + retransmission
/// over a [`BitFlipChannel`].
#[derive(Debug, Clone, Copy)]
pub struct PacketLink {
    channel: BitFlipChannel,
    detector: Detector,
    packet_bits: usize,
    /// Retransmission cap per packet (guards against pathological BER).
    max_retries: usize,
}

impl PacketLink {
    /// Creates a link with the paper's defaults (1400-bit packets).
    ///
    /// # Panics
    ///
    /// Panics if `packet_bits` is not a positive multiple of 8.
    pub fn new(channel: BitFlipChannel, detector: Detector, packet_bits: usize) -> Self {
        assert!(
            packet_bits > 0 && packet_bits.is_multiple_of(8),
            "packet size must be a multiple of 8 bits"
        );
        PacketLink { channel, detector, packet_bits, max_retries: 100_000 }
    }

    /// Sets the per-packet retransmission cap (for tests and pathological
    /// BER studies; the default of 100,000 never triggers at realistic
    /// error rates).
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        assert!(max_retries > 0, "retry cap must be positive");
        self.max_retries = max_retries;
        self
    }

    /// The payload bytes carried per packet.
    pub fn packet_payload_bytes(&self) -> usize {
        self.packet_bits / 8
    }

    /// Number of packets needed for a payload of `bytes` bytes.
    pub fn packets_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.packet_payload_bytes())
    }

    /// Transfers a payload: splits into packets, sends each until the
    /// detector accepts it, and reassembles. The returned payload differs
    /// from the input only where an undetected error slipped through.
    pub fn transfer<R: Rng + ?Sized>(
        &self,
        payload: &[u8],
        rng: &mut R,
    ) -> (Vec<u8>, TransferStats) {
        let mut out = Vec::with_capacity(payload.len());
        let mut stats = TransferStats::default();
        for chunk in payload.chunks(self.packet_payload_bytes()) {
            stats.packets += 1;
            let tag = self.detector.compute(chunk);
            let mut delivered: Option<Vec<u8>> = None;
            for attempt in 0..self.max_retries {
                stats.transmissions += 1;
                telemetry::count("channel.packet.sent", 1);
                let (received, flips) = self.channel.transmit(chunk, rng);
                // The tag itself travels over the channel too; model a
                // corrupted tag as a detected error (forces retransmit).
                let tag_bytes = tag.to_be_bytes();
                let (received_tag, _) = self.channel.transmit(&tag_bytes, rng);
                let tag_ok = received_tag == tag_bytes;
                if tag_ok && self.detector.verify(&received, tag) {
                    if flips > 0 {
                        stats.undetected_errors += 1;
                        telemetry::count("channel.packet.undetected_error", 1);
                    }
                    delivered = Some(received);
                    break;
                }
                stats.retransmissions += 1;
                telemetry::count("channel.packet.crc_failure", 1);
                let _ = attempt;
            }
            if delivered.is_none() {
                telemetry::count("channel.packet.dropped", 1);
            }
            // Retry budget exhausted: deliver the original (counts as if
            // the link eventually succeeded; unreachable at realistic BER).
            out.extend(delivered.unwrap_or_else(|| chunk.to_vec()));
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn noiseless_channel_is_identity() {
        let link = PacketLink::new(BitFlipChannel::new(0.0), Detector::Crc32, PACKET_BITS);
        let payload: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let (out, stats) = link.transfer(&payload, &mut rng);
        assert_eq!(out, payload);
        assert_eq!(stats.packets, 1000usize.div_ceil(175));
        assert_eq!(stats.transmissions, stats.packets);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.undetected_errors, 0);
    }

    #[test]
    fn flip_count_matches_ber() {
        let ch = BitFlipChannel::new(0.01);
        let data = vec![0u8; 10_000];
        let mut rng = StdRng::seed_from_u64(2);
        let (_, flips) = ch.transmit(&data, &mut rng);
        let expected = 80_000.0 * 0.01;
        assert!((flips as f64 - expected).abs() < expected * 0.2, "flips {flips}");
    }

    #[test]
    fn noisy_channel_retransmits_but_delivers() {
        let link = PacketLink::new(BitFlipChannel::new(1e-3), Detector::Crc32, PACKET_BITS);
        let payload: Vec<u8> = (0..2000).map(|i| (i * 7 % 256) as u8).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let (out, stats) = link.transfer(&payload, &mut rng);
        assert_eq!(out, payload, "CRC-32 should deliver intact at this size");
        assert!(stats.retransmissions > 0, "BER 1e-3 must cause retransmissions");
        // Expected ~4 transmissions per packet at p_err ≈ 0.75.
        let factor = stats.transmissions as f64 / stats.packets as f64;
        assert!((2.0..8.0).contains(&factor), "retransmission factor {factor}");
    }

    #[test]
    fn retransmission_factor_tracks_theory() {
        // E[transmissions] = 1/(1−p), p = 1−(1−BER)^(payload+tag bits).
        let ber = 5e-4;
        let link = PacketLink::new(BitFlipChannel::new(ber), Detector::Crc32, PACKET_BITS);
        let payload = vec![0xA5u8; 175 * 200];
        let mut rng = StdRng::seed_from_u64(4);
        let (_, stats) = link.transfer(&payload, &mut rng);
        let p = 1.0 - (1.0 - ber).powi(1400 + 32);
        let expected = 1.0 / (1.0 - p);
        let measured = stats.transmissions as f64 / stats.packets as f64;
        assert!(
            (measured - expected).abs() / expected < 0.15,
            "measured {measured} vs theory {expected}"
        );
    }

    #[test]
    fn retry_cap_terminates_hostile_channels() {
        // At BER 0.02 a clean 1400-bit transmission has probability
        // ~1e-13: an uncapped link would retransmit forever. The cap
        // bounds work and falls back to delivering the sender's copy.
        let link = PacketLink::new(BitFlipChannel::new(0.02), Detector::Crc32, PACKET_BITS)
            .with_max_retries(20);
        let payload = vec![0x5Au8; 175 * 3];
        let mut rng = StdRng::seed_from_u64(5);
        let (out, stats) = link.transfer(&payload, &mut rng);
        assert_eq!(out, payload, "fallback delivers the original payload");
        assert_eq!(stats.transmissions, 3 * 20, "every packet exhausts the cap");
    }

    #[test]
    fn checksum_passes_compensating_corruption_crc_catches_it() {
        // Deterministic detector-strength comparison: swapping two 16-bit
        // words preserves the Internet checksum but not the CRC. A
        // receiver protected only by the checksum accepts the corrupted
        // packet.
        let original = [0x12u8, 0x34, 0x56, 0x78];
        let swapped = [0x56u8, 0x78, 0x12, 0x34];
        let sum_tag = Detector::Checksum16.compute(&original);
        let crc_tag = Detector::Crc32.compute(&original);
        assert!(Detector::Checksum16.verify(&swapped, sum_tag), "checksum misses word swap");
        assert!(!Detector::Crc32.verify(&swapped, crc_tag), "CRC-32 detects word swap");
    }

    #[test]
    fn packets_for_counts() {
        let link = PacketLink::new(BitFlipChannel::new(0.0), Detector::Crc32, PACKET_BITS);
        assert_eq!(link.packets_for(175), 1);
        assert_eq!(link.packets_for(176), 2);
        assert_eq!(link.packets_for(0), 0);
        assert_eq!(link.packet_payload_bytes(), 175);
    }

    #[test]
    #[should_panic(expected = "BER")]
    fn invalid_ber_rejected() {
        let _ = BitFlipChannel::new(1.5);
    }
}
