//! Noisy-communication substrate for Rhychee-FL (paper §IV-C, §V-E).
//!
//! Models the transport of FHE ciphertexts between federated clients and
//! the server over a 5G link, both analytically and empirically:
//!
//! * [`crc`] — CRC-32 and Internet-checksum error detection;
//! * [`packet`] — 1400-bit packetization over a binary symmetric channel
//!   with detect-and-retransmit (the empirical simulator);
//! * [`phy`] — a parametric 5G NR latency model (PRB structure, QAM-16,
//!   MIMO layers, subcarrier spacing);
//! * [`failure`] — the paper's analytical chain: packet error rate →
//!   undetected-error probability → expected transmissions/rounds/time to
//!   first failure (Eq. 3 and §IV-C).
//!
//! # Examples
//!
//! ```
//! use rhychee_channel::failure::ChannelModel;
//!
//! let model = ChannelModel::default(); // BER 1e-3, CRC-32, 1400-bit packets
//! let payload_bits = 5 * 2 * 8192 * 61; // 5 CKKS-4 ciphertexts
//! let rounds = model.expected_rounds_to_failure(10, payload_bits);
//! assert!(rounds > 10_000.0, "the global model converges long before failure");
//! ```

pub mod crc;
pub mod failure;
pub mod packet;
pub mod phy;

pub use crc::{crc32, internet_checksum, Detector};
pub use failure::{seconds_to_days, ChannelModel};
pub use packet::{BitFlipChannel, PacketLink, TransferStats, PACKET_BITS};
pub use phy::PhyConfig;
