//! 5G NR physical-layer latency model.
//!
//! Parametric model of the link described in the paper's §IV-C: a 3GPP
//! urban-microcell (UMi) downlink/uplink with 14 OFDM symbols × 12
//! subcarriers per physical resource block (PRB), QAM-16 (4 bits/symbol),
//! a 4-layer MIMO configuration (4 TX / 16 RX antennas) and an SNR of
//! 12 dB. Packets are scheduled on whole slots, so per-packet latency is
//! the number of slots a packet occupies times the slot duration, plus
//! the error-detection processing time.

use crate::crc::Detector;

/// 5G NR link configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhyConfig {
    /// Subcarrier spacing in kHz (numerology: 15 → μ0, 30 → μ1, 60 → μ2).
    pub subcarrier_spacing_khz: u32,
    /// OFDM symbols per slot (14 for normal cyclic prefix).
    pub symbols_per_slot: u32,
    /// Subcarriers per PRB (12 in NR).
    pub subcarriers_per_prb: u32,
    /// Modulation order in bits per symbol (4 for QAM-16).
    pub bits_per_symbol: u32,
    /// Spatial multiplexing layers (min(TX antennas, rank)).
    pub mimo_layers: u32,
    /// PRBs allocated to this transmission per slot.
    pub prbs: u32,
    /// Effective code rate of the channel code.
    pub code_rate: f64,
    /// Error-detection processing throughput in bits per second.
    pub detector_throughput_bps: f64,
}

impl Default for PhyConfig {
    /// The paper's UMi setup: QAM-16, 14×12 PRB structure, 4 layers,
    /// 60 kHz SCS, single-PRB allocation.
    fn default() -> Self {
        PhyConfig {
            subcarrier_spacing_khz: 60,
            symbols_per_slot: 14,
            subcarriers_per_prb: 12,
            bits_per_symbol: 4,
            mimo_layers: 4,
            prbs: 1,
            code_rate: 0.75,
            detector_throughput_bps: 1e9,
        }
    }
}

impl PhyConfig {
    /// Slot duration in seconds (`1 ms / 2^μ` with μ from the SCS).
    pub fn slot_duration(&self) -> f64 {
        1e-3 * 15.0 / f64::from(self.subcarrier_spacing_khz)
    }

    /// Information bits carried per slot across the allocated PRBs.
    pub fn bits_per_slot(&self) -> f64 {
        f64::from(
            self.symbols_per_slot
                * self.subcarriers_per_prb
                * self.bits_per_symbol
                * self.mimo_layers
                * self.prbs,
        ) * self.code_rate
    }

    /// Airtime for one packet of `packet_bits` bits (whole slots).
    pub fn packet_airtime(&self, packet_bits: usize) -> f64 {
        let slots = (packet_bits as f64 / self.bits_per_slot()).ceil();
        slots * self.slot_duration()
    }

    /// Error-detection processing latency for one packet
    /// (`L_CRC/Checksum` in Eq. 3).
    pub fn detection_latency(&self, packet_bits: usize, detector: Detector) -> f64 {
        // Tag computation streams over the packet; the checksum's smaller
        // state makes it 4x faster at equal clock (Maxino & Koopman).
        let speedup = match detector {
            Detector::Crc32 => 1.0,
            Detector::Checksum16 => 4.0,
        };
        packet_bits as f64 / (self.detector_throughput_bps * speedup)
    }

    /// Effective throughput in bits per second (airtime only).
    pub fn throughput_bps(&self) -> f64 {
        self.bits_per_slot() / self.slot_duration()
    }
}

/// Approximate QAM bit-error rate over AWGN at a given SNR.
///
/// Uses the standard Gray-coded M-QAM approximation
/// `BER ≈ (4/log2 M)·(1 − 1/√M)·Q(√(3·SNR/(M−1)))`.
///
/// The paper fixes `BER = 1e-3` for its experiments; this function exists
/// so the sensitivity of the failure model to SNR can be explored.
pub fn qam_ber(snr_db: f64, modulation_order: u32) -> f64 {
    let m = f64::from(modulation_order);
    let snr = 10.0f64.powf(snr_db / 10.0);
    let arg = (3.0 * snr / (m - 1.0)).sqrt();
    let coeff = (4.0 / m.log2()) * (1.0 - 1.0 / m.sqrt());
    (coeff * q_function(arg)).min(0.5)
}

/// Gaussian tail function `Q(x) = 0.5·erfc(x/√2)`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_durations_follow_numerology() {
        let mut cfg = PhyConfig { subcarrier_spacing_khz: 15, ..PhyConfig::default() };
        assert!((cfg.slot_duration() - 1e-3).abs() < 1e-12);
        cfg.subcarrier_spacing_khz = 30;
        assert!((cfg.slot_duration() - 0.5e-3).abs() < 1e-12);
        cfg.subcarrier_spacing_khz = 60;
        assert!((cfg.slot_duration() - 0.25e-3).abs() < 1e-12);
    }

    #[test]
    fn default_fits_packet_in_one_slot() {
        let cfg = PhyConfig::default();
        // 14 × 12 × 4 × 4 × 0.75 = 2016 bits per slot > 1400.
        assert!(cfg.bits_per_slot() >= 1400.0);
        assert!((cfg.packet_airtime(1400) - cfg.slot_duration()).abs() < 1e-12);
        // Two-slot packet.
        assert!((cfg.packet_airtime(3000) - 2.0 * cfg.slot_duration()).abs() < 1e-12);
    }

    #[test]
    fn detection_latency_is_small_and_ordered() {
        let cfg = PhyConfig::default();
        let crc = cfg.detection_latency(1400, Detector::Crc32);
        let sum = cfg.detection_latency(1400, Detector::Checksum16);
        assert!(crc < cfg.slot_duration() / 10.0, "detection must not dominate airtime");
        assert!(sum < crc, "checksum is cheaper than CRC");
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(2.0) - 0.004678).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
    }

    #[test]
    fn qam16_ber_decreases_with_snr() {
        let b6 = qam_ber(6.0, 16);
        let b12 = qam_ber(12.0, 16);
        let b20 = qam_ber(20.0, 16);
        assert!(b6 > b12 && b12 > b20);
        // At 12 dB, QAM-16 over AWGN sits in the 1e-2 range; the paper's
        // 1e-3 figure reflects coding gain we fold into code_rate.
        assert!(b12 > 1e-3 && b12 < 1e-1, "BER(12dB) = {b12}");
    }

    #[test]
    fn throughput_is_plausible_5g() {
        let cfg = PhyConfig { prbs: 50, ..PhyConfig::default() };
        let gbps = cfg.throughput_bps() / 1e9;
        // ~0.4 Gbps with 50 PRB, 4 layers, QAM-16 at 60 kHz SCS.
        assert!(gbps > 0.1 && gbps < 2.0, "throughput {gbps} Gbps");
    }
}
