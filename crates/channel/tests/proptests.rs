//! Property-based tests for the communication substrate.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use rhychee_channel::crc::{crc32, internet_checksum, Detector};
use rhychee_channel::failure::ChannelModel;
use rhychee_channel::packet::{BitFlipChannel, PacketLink};
use rhychee_channel::phy::{erfc, q_function};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in prop::collection::vec(any::<u8>(), 1..256),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let tag = crc32(&data);
        let mut corrupted = data.clone();
        let i = byte.index(corrupted.len());
        corrupted[i] ^= 1 << bit;
        prop_assert_ne!(crc32(&corrupted), tag);
    }

    #[test]
    fn checksum_detects_single_bit_flips_too(
        data in prop::collection::vec(any::<u8>(), 2..128),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        // Single flips change one ones'-complement term; always caught.
        let tag = internet_checksum(&data);
        let mut corrupted = data.clone();
        let i = byte.index(corrupted.len());
        corrupted[i] ^= 1 << bit;
        prop_assert_ne!(internet_checksum(&corrupted), tag);
    }

    #[test]
    fn detector_verify_accepts_own_tag(data in prop::collection::vec(any::<u8>(), 0..200)) {
        for det in [Detector::Crc32, Detector::Checksum16] {
            prop_assert!(det.verify(&data, det.compute(&data)));
        }
    }

    #[test]
    fn clean_transfer_is_lossless(
        payload in prop::collection::vec(any::<u8>(), 0..2000),
        seed in any::<u64>(),
    ) {
        let link = PacketLink::new(BitFlipChannel::new(0.0), Detector::Crc32, 1400);
        let mut rng = StdRng::seed_from_u64(seed);
        let (out, stats) = link.transfer(&payload, &mut rng);
        prop_assert_eq!(out, payload);
        prop_assert_eq!(stats.retransmissions, 0);
    }

    #[test]
    fn noisy_crc_transfer_delivers_intact(
        payload in prop::collection::vec(any::<u8>(), 1..1000),
        seed in any::<u64>(),
    ) {
        // At BER 1e-4 CRC-protected transfer must deliver the exact
        // payload (undetected-error probability is astronomically small).
        let link = PacketLink::new(BitFlipChannel::new(1e-4), Detector::Crc32, 1400);
        let mut rng = StdRng::seed_from_u64(seed);
        let (out, _) = link.transfer(&payload, &mut rng);
        prop_assert_eq!(out, payload);
    }

    #[test]
    fn failure_model_monotonicity(
        ber_exp in 2.0f64..6.0,
        clients in 1usize..100,
        payload_kbits in 1u64..10_000,
    ) {
        let ber = 10f64.powf(-ber_exp);
        let m = ChannelModel { ber, ..ChannelModel::default() };
        let bits = payload_kbits * 1000;
        // More clients or more payload -> fewer rounds to failure.
        let base = m.expected_rounds_to_failure(clients, bits);
        let more_clients = m.expected_rounds_to_failure(clients + 1, bits);
        let more_payload = m.expected_rounds_to_failure(clients, bits * 2);
        prop_assert!(more_clients < base);
        prop_assert!(more_payload <= base);
        prop_assert!(base.is_finite() && base > 0.0);
    }

    #[test]
    fn packet_latency_positive_and_monotone_in_ber(ber_exp in 2.0f64..8.0) {
        let low = ChannelModel { ber: 10f64.powf(-ber_exp), ..ChannelModel::default() };
        let high = ChannelModel { ber: 10f64.powf(-ber_exp) * 2.0, ..ChannelModel::default() };
        prop_assert!(low.packet_latency() > 0.0);
        prop_assert!(high.packet_latency() >= low.packet_latency());
    }

    #[test]
    fn erfc_bounds_and_symmetry(x in -5.0f64..5.0) {
        let v = erfc(x);
        prop_assert!((0.0..=2.0).contains(&v));
        prop_assert!((erfc(-x) - (2.0 - v)).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&q_function(x.abs())));
    }
}
