//! End-to-end test for the `trace_report` binary: feed it a JSONL trace
//! with nested spans, check the self-time table reconciles with the
//! input to the nanosecond, and check the folded-stack export.

use std::path::PathBuf;
use std::process::Command;

use rhychee_telemetry::trace::{SpanEvent, TraceWriter};

fn write_trace(dir: &std::path::Path) -> PathBuf {
    let mk = |name: &'static str, path: &str, depth: u32, start_ns: u64, dur_ns: u64| SpanEvent {
        name,
        path: path.to_owned(),
        depth,
        start_ns,
        dur_ns,
        ..SpanEvent::default()
    };
    // round(1000) = encrypt(600) + decrypt(150) + 250 self;
    // encrypt(600) = ntt(400) + 200 self. Two rounds of it.
    let mut events = Vec::new();
    for r in 0..2u64 {
        let base = r * 2000;
        events.push(mk("fhe.ckks.ntt", "round/encrypt/fhe.ckks.ntt", 2, base + 20, 400));
        events.push(mk("encrypt", "round/encrypt", 1, base + 10, 600));
        events.push(mk("decrypt", "round/decrypt", 1, base + 700, 150));
        events.push(mk("round", "round", 0, base, 1000));
    }
    let path = dir.join("trace.jsonl");
    let mut w = TraceWriter::new(std::fs::File::create(&path).expect("create trace"));
    w.write_events(&events).expect("write trace");
    w.into_inner().expect("flush").sync_all().expect("sync");
    path
}

#[test]
fn trace_report_reconciles_and_exports_folded_stacks() {
    let dir = std::env::temp_dir().join(format!("rhychee-trace-report-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = write_trace(&dir);
    let folded = dir.join("trace.folded.txt");

    let out = Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .arg(&trace)
        .args(["--top", "10"])
        .arg("--folded")
        .arg(&folded)
        .output()
        .expect("run trace_report");
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8");
    assert!(out.status.success(), "exit status: {:?}\n{stdout}", out.status);

    assert!(stdout.contains("8 spans"), "span count in header:\n{stdout}");
    assert!(stdout.contains("max depth 2"), "depth in header:\n{stdout}");
    // Self-times to the nanosecond: round = 2*(1000-600-150) = 500,
    // encrypt = 2*(600-400) = 400, ntt = 2*400 = 800, decrypt = 2*150.
    for (path, self_ns) in [
        ("round/encrypt/fhe.ckks.ntt", 800),
        ("round", 500),
        ("round/encrypt", 400),
        ("round/decrypt", 300),
    ] {
        let row = stdout.lines().find(|l| l.split_whitespace().next() == Some(path));
        let row = row.unwrap_or_else(|| panic!("row for {path}:\n{stdout}"));
        assert!(
            row.split_whitespace().any(|f| f == self_ns.to_string()),
            "self-time {self_ns} for {path}: {row}"
        );
    }
    // Ranking: ntt has the largest self-time, so its row comes first.
    let header = stdout.lines().position(|l| l.starts_with("span")).expect("table header");
    let first_row = stdout.lines().nth(header + 1);
    assert!(first_row.is_some_and(|l| l.contains("fhe.ckks.ntt")), "ranking:\n{stdout}");

    let folded_text = std::fs::read_to_string(&folded).expect("folded output");
    let mut lines: Vec<&str> = folded_text.lines().collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![
            "round 500",
            "round;decrypt 300",
            "round;encrypt 400",
            "round;encrypt;fhe.ckks.ntt 800",
        ],
        "folded stacks:\n{folded_text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_report_rejects_bad_usage() {
    let no_args = Command::new(env!("CARGO_BIN_EXE_trace_report")).output().expect("run");
    assert!(!no_args.status.success(), "missing input file must fail");

    let missing = Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .arg("/nonexistent/trace.jsonl")
        .output()
        .expect("run");
    assert!(!missing.status.success(), "unreadable input must fail");
}
