use rhychee_telemetry::fedmerge::{self, FedSource};
use rhychee_telemetry::profile::SpanRecord;

fn rec(name: &str, path: &str, dur: u64, id: u64, rp: u64) -> SpanRecord {
    SpanRecord {
        name: name.into(),
        path: path.into(),
        depth: 0,
        dur_ns: dur,
        span_id: id,
        remote_parent: rp,
        ..SpanRecord::default()
    }
}

#[test]
fn multi_client_decode_attribution() {
    let server = FedSource::new(
        "server",
        vec![
            rec("net_round", "net_round", 1000, 10, 0),
            rec("net_decode", "net_decode", 30, 13, 20), // decode of client0's upload
            rec("net_decode", "net_decode", 40, 14, 30), // decode of client1's upload
        ],
    );
    let c0 = FedSource::new("client0", vec![rec("client_round", "client_round", 700, 20, 10)]);
    let c1 = FedSource::new("client1", vec![rec("client_round", "client_round", 650, 30, 10)]);
    let tree = fedmerge::merge(&[server, c0, c1]);
    for n in tree.nodes() {
        println!("{:60} total={}", n.path, n.total_ns);
    }
    let under_c0 = tree.get("server/net_round/client0/client_round/server/net_decode");
    let under_c1 = tree.get("server/net_round/client1/client_round/server/net_decode");
    println!("c0 decode node: {:?}", under_c0.map(|n| n.total_ns));
    println!("c1 decode node: {:?}", under_c1.map(|n| n.total_ns));
}
