//! End-to-end test for the `fed_trace` binary: feed it a server trace
//! plus two client traces whose roots carry wire trace contexts, and
//! check the merged tree, the per-actor phase totals (exact ns), the
//! trace-id listing and the folded-stack export.

use std::path::{Path, PathBuf};
use std::process::Command;

use rhychee_telemetry::trace::{SpanEvent, TraceWriter};

const TRACE_ID: u128 = 0xfeed_beef_0042;
const ROUND_SPAN: u64 = 100;

fn mk(name: &'static str, path: &str, depth: u32, start_ns: u64, dur_ns: u64) -> SpanEvent {
    SpanEvent { name, path: path.to_owned(), depth, start_ns, dur_ns, ..SpanEvent::default() }
}

fn write(dir: &Path, file: &str, events: &[SpanEvent]) -> PathBuf {
    let path = dir.join(file);
    let mut w = TraceWriter::new(std::fs::File::create(&path).expect("create trace"));
    w.write_events(events).expect("write trace");
    w.into_inner().expect("flush").sync_all().expect("sync");
    path
}

/// One server round (aggregate + handler broadcast) plus two clients
/// whose `client_round` roots parent under it via the wire context.
fn write_federation(dir: &Path) -> Vec<PathBuf> {
    let server = vec![
        SpanEvent { span_id: ROUND_SPAN, ..mk("net_round", "net_round", 0, 0, 10_000) },
        mk("net_aggregate", "net_round/net_aggregate", 1, 6_000, 300),
        // Handler thread: depth 0, linked by the round's own context.
        SpanEvent {
            trace_id: TRACE_ID,
            remote_parent: ROUND_SPAN,
            ..mk("broadcast", "broadcast", 0, 100, 50)
        },
    ];
    let client = |round_span: u64, scale: u64| {
        vec![
            SpanEvent {
                span_id: round_span,
                trace_id: TRACE_ID,
                remote_parent: ROUND_SPAN,
                ..mk("client_round", "client_round", 0, 200, 900 * scale)
            },
            mk("local_train", "client_round/local_train", 1, 210, 400 * scale),
            mk("encrypt", "client_round/encrypt", 1, 650, 200 * scale),
            mk("upload", "client_round/upload", 1, 880, 100 * scale),
            SpanEvent {
                trace_id: TRACE_ID,
                remote_parent: ROUND_SPAN,
                ..mk("decrypt", "decrypt", 0, 1_500, 80 * scale)
            },
        ]
    };
    vec![
        write(dir, "server.jsonl", &server),
        write(dir, "client0.jsonl", &client(200, 1)),
        write(dir, "client1.jsonl", &client(201, 3)),
    ]
}

#[test]
fn fed_trace_merges_sources_and_reports_exact_phase_totals() {
    let dir = std::env::temp_dir().join(format!("rhychee-fed-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let inputs = write_federation(&dir);
    let folded = dir.join("federation.folded.txt");

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fed_trace"));
    cmd.args(&inputs).arg("--folded").arg(&folded);
    let out = cmd.output().expect("run fed_trace");
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8");
    assert!(out.status.success(), "exit status: {:?}\n{stdout}", out.status);

    assert!(stdout.contains("13 spans from 3 sources"), "header:\n{stdout}");
    assert!(stdout.contains("1 trace id(s)"), "header:\n{stdout}");
    assert!(stdout.contains(&format!("trace {TRACE_ID:032x}")), "trace listing:\n{stdout}");

    // Per-actor phase totals, exact to the nanosecond. Client1 ran a 3x
    // slower round, so its totals are exactly 3x client0's.
    for (actor, phase, total) in [
        ("server", "net_aggregate", 300u64),
        ("server", "broadcast", 50),
        ("client0", "local_train", 400),
        ("client0", "encrypt", 200),
        ("client0", "upload", 100),
        ("client0", "decrypt", 80),
        ("client1", "local_train", 1200),
        ("client1", "encrypt", 600),
        ("client1", "upload", 300),
        ("client1", "decrypt", 240),
    ] {
        let row = stdout.lines().find(|l| {
            let mut f = l.split_whitespace();
            f.next() == Some(actor) && f.next() == Some(phase)
        });
        let row = row.unwrap_or_else(|| panic!("phase row {actor}/{phase}:\n{stdout}"));
        assert!(
            row.split_whitespace().nth(2) == Some(total.to_string().as_str()),
            "{actor}/{phase} must total {total}: {row}"
        );
    }

    // The folded flamegraph carries the grafted federation-wide stacks:
    // client leaves sit under the server's round via the actor boundary.
    let folded_text = std::fs::read_to_string(&folded).expect("folded output");
    for line in [
        "server;net_round;client0;client_round;local_train 400",
        "server;net_round;client0;client_round;encrypt 200",
        "server;net_round;client1;client_round;upload 300",
        "server;net_round;net_aggregate 300",
        "server;net_round;broadcast 50",
        "server;net_round;client1;decrypt 240",
    ] {
        assert!(folded_text.lines().any(|l| l == line), "missing {line:?}:\n{folded_text}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fed_trace_rejects_bad_usage() {
    let no_args = Command::new(env!("CARGO_BIN_EXE_fed_trace")).output().expect("run");
    assert_eq!(no_args.status.code(), Some(2), "missing inputs is a usage error");

    let missing = Command::new(env!("CARGO_BIN_EXE_fed_trace"))
        .arg("/nonexistent/server.jsonl")
        .output()
        .expect("run");
    assert_eq!(missing.status.code(), Some(1), "unreadable input must fail");
}
