//! Minimal hand-rolled JSON emission (no serde — see DESIGN.md §5).
//!
//! Only what the JSONL trace format and the bench metrics files need:
//! string escaping and a flat object builder. Not a parser.

use std::fmt::Write as _;

/// Escapes a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite numbers).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Round-trippable without scientific-notation surprises for the
        // magnitudes we emit; `{}` on f64 is shortest-round-trip in Rust.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// An incremental builder for one flat JSON object.
///
/// # Examples
///
/// ```
/// use rhychee_telemetry::json::JsonObject;
///
/// let mut o = JsonObject::new();
/// o.str("kind", "counter").u64("value", 3).f64("rate", 0.5);
/// assert_eq!(o.finish(), r#"{"kind":"counter","value":3,"rate":0.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{") }
    }

    fn key(&mut self, name: &str) -> &mut Self {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(name));
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, name: &str, value: i64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a floating-point field (`null` if non-finite).
    pub fn f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (caller guarantees
    /// validity — used to nest objects).
    pub fn raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&mut self) -> String {
        let mut out = std::mem::take(&mut self.buf);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("ünïcode"), "ünïcode");
    }

    #[test]
    fn numbers_and_nonfinite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builder_shapes() {
        assert_eq!(JsonObject::new().finish(), "{}");
        let one = JsonObject::new().i64("x", -3).finish();
        assert_eq!(one, r#"{"x":-3}"#);
        let nested_inner = JsonObject::new().bool("ok", true).finish();
        let nested = JsonObject::new().raw("inner", &nested_inner).finish();
        assert_eq!(nested, r#"{"inner":{"ok":true}}"#);
    }
}
