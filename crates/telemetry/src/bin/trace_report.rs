//! Offline span-tree profiler for recorded JSONL traces.
//!
//! Reads the span records out of a trace file (as produced by
//! `trace::export_jsonl` or any `TraceWriter`), aggregates them into a
//! call tree, prints the top-N self-time table, and optionally writes
//! folded-stack lines for flamegraph tooling.
//!
//! ```text
//! trace_report <trace.jsonl> [--top N] [--folded OUT.txt]
//! ```

use std::process::ExitCode;

use rhychee_telemetry::profile::{self, SpanTree};

const USAGE: &str = "usage: trace_report <trace.jsonl> [--top N] [--folded OUT.txt]";

struct Args {
    input: String,
    top: usize,
    folded: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut input = None;
    let mut top = 20usize;
    let mut folded = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|_| format!("bad --top value: {v}"))?;
            }
            "--folded" => folded = Some(it.next().ok_or("--folded needs a path")?.clone()),
            _ if arg.starts_with("--") => return Err(format!("unknown flag: {arg}")),
            _ if input.is_none() => input = Some(arg.clone()),
            _ => return Err(format!("unexpected argument: {arg}")),
        }
    }
    Ok(Args { input: input.ok_or("missing trace file")?, top, folded })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trace_report: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let spans = profile::parse_jsonl(&text);
    if spans.is_empty() {
        eprintln!("trace_report: no span records in {}", args.input);
        return ExitCode::FAILURE;
    }
    let n_spans = spans.len();
    let tree = SpanTree::from_paths(spans);
    let max_depth = tree.nodes().map(|n| n.depth()).max().unwrap_or(0);
    println!("{} spans, {} tree nodes, max depth {}", n_spans, tree.len(), max_depth);
    println!();
    print!("{}", tree.self_time_table(args.top));
    if let Some(path) = &args.folded {
        let folded = tree.folded();
        if let Err(e) = std::fs::write(path, &folded) {
            eprintln!("trace_report: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
        println!("wrote {} folded-stack lines to {path}", folded.lines().count());
    }
    ExitCode::SUCCESS
}
