//! Federation-wide trace merger.
//!
//! Reads the server's JSONL trace plus one file per client, resolves the
//! cross-process parent links carried by the wire trace context, and
//! prints one merged span tree: the self-time table, exact per-actor
//! phase totals (for reconciliation against `RoundReport`s), and
//! optionally a folded-stack flamegraph of the whole federation.
//!
//! ```text
//! fed_trace <server.jsonl> <client.jsonl>... [--top N] [--folded OUT.txt]
//! ```
//!
//! Each source's actor label defaults to its file stem (`client0.jsonl`
//! → `client0`); records carrying their own `actor` field keep it.

use std::process::ExitCode;

use rhychee_telemetry::fedmerge::{self, FedSource};
use rhychee_telemetry::profile;

const USAGE: &str =
    "usage: fed_trace <server.jsonl> <client.jsonl>... [--top N] [--folded OUT.txt]";

/// Span names whose exact totals are printed for reconciliation: the six
/// round phases plus the server-side aggregate/round spans.
const PHASES: &[&str] =
    &["broadcast", "local_train", "encrypt", "upload", "net_aggregate", "decrypt"];

struct Args {
    inputs: Vec<String>,
    top: usize,
    folded: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut inputs = Vec::new();
    let mut top = 30usize;
    let mut folded = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|_| format!("bad --top value: {v}"))?;
            }
            "--folded" => folded = Some(it.next().ok_or("--folded needs a path")?.clone()),
            _ if arg.starts_with("--") => return Err(format!("unknown flag: {arg}")),
            _ => inputs.push(arg.clone()),
        }
    }
    if inputs.is_empty() {
        return Err("missing trace files".to_owned());
    }
    Ok(Args { inputs, top, folded })
}

fn label_of(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.to_owned(), |s| s.to_string_lossy().into_owned())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fed_trace: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut sources = Vec::new();
    for input in &args.inputs {
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fed_trace: cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let records = profile::parse_jsonl_records(&text);
        if records.is_empty() {
            eprintln!("fed_trace: no span records in {input}");
            return ExitCode::FAILURE;
        }
        sources.push(FedSource::new(label_of(input), records));
    }

    let n_spans: usize = sources.iter().map(|s| s.records.len()).sum();
    let traces = fedmerge::trace_ids(&sources);
    let tree = fedmerge::merge(&sources);
    let max_depth = tree.nodes().map(|n| n.depth()).max().unwrap_or(0);
    println!(
        "{} spans from {} sources, {} merged nodes, max depth {}, {} trace id(s)",
        n_spans,
        sources.len(),
        tree.len(),
        max_depth,
        traces.len()
    );
    for id in &traces {
        println!("  trace {id:032x}");
    }
    println!();
    print!("{}", tree.self_time_table(args.top));

    // Exact phase totals per actor, in nanoseconds: these reconcile 1:1
    // with the RoundReport fields on each endpoint (both sides populate
    // their reports from the same span measurements).
    println!();
    println!("phase totals (exact ns, reconcile against RoundReport):");
    let mut actors: Vec<String> =
        sources
            .iter()
            .flat_map(|s| {
                s.records.iter().map(move |r| {
                    if r.actor.is_empty() {
                        s.label.clone()
                    } else {
                        r.actor.clone()
                    }
                })
            })
            .collect();
    actors.sort();
    actors.dedup();
    for actor in &actors {
        for phase in PHASES {
            let total = fedmerge::actor_span_total(&sources, actor, phase);
            if total > 0 {
                println!("  {actor:<12} {phase:<14} {total}");
            }
        }
    }

    if let Some(path) = &args.folded {
        let folded = tree.folded();
        if let Err(e) = std::fs::write(path, &folded) {
            eprintln!("fed_trace: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
        println!("wrote {} folded-stack lines to {path}", folded.lines().count());
    }
    ExitCode::SUCCESS
}
