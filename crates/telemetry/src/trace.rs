//! Trace buffering, JSONL export and the human-readable summary table.
//!
//! Completed spans land in a bounded global buffer ([`drain_events`]).
//! [`TraceWriter`] serializes span events and metric snapshots as JSON
//! Lines — one self-describing object per line, distinguished by a
//! `"type"` field (`span`, `counter`, `gauge`, `histogram`) — so traces
//! from different runs can be concatenated and grepped.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::JsonObject;
use crate::metrics::MetricsSnapshot;

/// Hard cap on buffered span events; beyond it events are counted in
/// `telemetry.trace.dropped` instead of stored, bounding memory on
/// unbounded runs.
const MAX_EVENTS: usize = 1 << 20;

/// Capacity of the live ring of most-recent spans served by the
/// observability plane's `/trace.json` — independent of the drain buffer
/// so scrapes never consume events destined for JSONL export.
const RECENT_CAP: usize = 4096;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (the leaf).
    pub name: &'static str,
    /// `/`-joined path from the thread's outermost open span.
    pub path: String,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Pins the trace epoch to now-or-earlier. Called when recording is
/// switched on, so spans opened afterwards never start before the epoch
/// (their `start_ns` would otherwise saturate to zero and misorder the
/// timeline).
pub(crate) fn init_epoch() {
    let _ = epoch();
}

fn buffer() -> &'static Mutex<Vec<SpanEvent>> {
    static BUF: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn recent_ring() -> &'static Mutex<VecDeque<SpanEvent>> {
    static RING: OnceLock<Mutex<VecDeque<SpanEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RECENT_CAP)))
}

/// The most recent completed spans, oldest first (bounded ring of
/// [`RECENT_CAP`]). Non-destructive — unlike [`drain_events`], reading
/// leaves both the ring and the drain buffer intact.
pub fn recent_events() -> Vec<SpanEvent> {
    recent_ring().lock().expect("trace ring lock").iter().cloned().collect()
}

/// Appends a completed span to the trace buffer (called by `Span`).
pub(crate) fn record_span(
    name: &'static str,
    path: String,
    depth: u32,
    thread: u64,
    start: Instant,
    dur: Duration,
) {
    let start_ns = start.saturating_duration_since(epoch()).as_nanos() as u64;
    let event = SpanEvent { name, path, depth, thread, start_ns, dur_ns: dur.as_nanos() as u64 };
    {
        let mut ring = recent_ring().lock().expect("trace ring lock");
        if ring.len() == RECENT_CAP {
            ring.pop_front();
        }
        ring.push_back(event.clone());
    }
    let mut buf = buffer().lock().expect("trace buffer lock");
    if buf.len() >= MAX_EVENTS {
        drop(buf);
        crate::metrics::global().counter("telemetry.trace.dropped").inc();
        return;
    }
    buf.push(event);
}

/// Removes and returns all buffered span events, oldest first.
pub fn drain_events() -> Vec<SpanEvent> {
    std::mem::take(&mut *buffer().lock().expect("trace buffer lock"))
}

/// Serializes span events and metric snapshots as JSON Lines.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        TraceWriter { w }
    }

    /// Writes one span event as a JSONL record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_event(&mut self, e: &SpanEvent) -> io::Result<()> {
        let line = JsonObject::new()
            .str("type", "span")
            .str("name", e.name)
            .str("path", &e.path)
            .u64("depth", u64::from(e.depth))
            .u64("thread", e.thread)
            .u64("start_ns", e.start_ns)
            .u64("dur_ns", e.dur_ns)
            .finish();
        writeln!(self.w, "{line}")
    }

    /// Writes a batch of span events.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_events(&mut self, events: &[SpanEvent]) -> io::Result<()> {
        events.iter().try_for_each(|e| self.write_event(e))
    }

    /// Writes every instrument in a snapshot, one JSONL record each.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_snapshot(&mut self, snap: &MetricsSnapshot) -> io::Result<()> {
        for (name, value) in &snap.counters {
            let line = JsonObject::new()
                .str("type", "counter")
                .str("name", name)
                .u64("value", *value)
                .finish();
            writeln!(self.w, "{line}")?;
        }
        for (name, value) in &snap.gauges {
            let line = JsonObject::new()
                .str("type", "gauge")
                .str("name", name)
                .f64("value", *value)
                .finish();
            writeln!(self.w, "{line}")?;
        }
        for h in &snap.histograms {
            let line = JsonObject::new()
                .str("type", "histogram")
                .str("name", &h.name)
                .u64("count", h.count)
                .u64("sum", h.sum)
                .u64("min", h.min)
                .u64("max", h.max)
                .u64("p50", h.p50)
                .u64("p90", h.p90)
                .u64("p99", h.p99)
                .finish();
            writeln!(self.w, "{line}")?;
        }
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Drains the trace buffer and snapshots the global registry into a JSONL
/// file at `path` (created or truncated).
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn export_jsonl(path: &std::path::Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let file = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(io::BufWriter::new(file));
    w.write_events(&drain_events())?;
    w.write_snapshot(&crate::metrics::global().snapshot())?;
    w.into_inner()?;
    Ok(())
}

fn format_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}µs", s * 1e6)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a snapshot as an aligned, human-readable summary table:
/// counters and gauges first, then histograms with count/mean/p50/p90/
/// p99/max (durations pretty-printed from nanoseconds).
pub fn summary_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() || !snap.gauges.is_empty() {
        let width = snap
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(snap.gauges.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        out.push_str("counters/gauges:\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        let width = snap.histograms.iter().map(|h| h.name.len()).max().unwrap_or(0).max(4);
        out.push_str(&format!(
            "{:<width$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "histogram", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for h in &snap.histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            out.push_str(&format!(
                "{:<width$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                h.name,
                h.count,
                format_ns(mean),
                format_ns(h.p50),
                format_ns(h.p90),
                format_ns(h.p99),
                format_ns(h.max),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    fn snap() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.sent".into(), 12)],
            gauges: vec![("b.level".into(), 3.0)],
            histograms: vec![HistogramSummary {
                name: "c.encrypt".into(),
                count: 2,
                sum: 3_000_000,
                min: 1_000_000,
                max: 2_000_000,
                p50: 1_000_000,
                p90: 2_000_000,
                p99: 2_000_000,
                buckets: vec![(1_048_575, 1), (2_097_151, 1)],
            }],
        }
    }

    #[test]
    fn writer_emits_one_json_object_per_line() {
        let event = SpanEvent {
            name: "round",
            path: "round".into(),
            depth: 0,
            thread: 0,
            start_ns: 5,
            dur_ns: 100,
        };
        let mut w = TraceWriter::new(Vec::new());
        w.write_event(&event).expect("write");
        w.write_snapshot(&snap()).expect("write");
        let bytes = w.into_inner().expect("flush");
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // 1 span + 1 counter + 1 gauge + 1 histogram
        assert!(lines[0].contains(r#""type":"span""#) && lines[0].contains(r#""dur_ns":100"#));
        assert!(lines[1].contains(r#""type":"counter""#) && lines[1].contains(r#""value":12"#));
        assert!(lines[2].contains(r#""type":"gauge""#));
        assert!(
            lines[3].contains(r#""type":"histogram""#) && lines[3].contains(r#""p99":2000000"#)
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "JSONL shape: {line}");
        }
    }

    #[test]
    fn summary_table_renders_all_sections() {
        let table = summary_table(&snap());
        assert!(table.contains("a.sent"));
        assert!(table.contains("b.level"));
        assert!(table.contains("c.encrypt"));
        assert!(table.contains("1.000ms"), "p50 pretty-printed: {table}");
        assert!(summary_table(&MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(500), "500ns");
        assert_eq!(format_ns(2_500), "2.500µs");
        assert_eq!(format_ns(3_000_000), "3.000ms");
        assert_eq!(format_ns(1_500_000_000), "1.500s");
    }
}
