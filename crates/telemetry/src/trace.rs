//! Trace buffering, JSONL export and the human-readable summary table.
//!
//! Completed spans land in a bounded global buffer ([`drain_events`]).
//! [`TraceWriter`] serializes span events and metric snapshots as JSON
//! Lines — one self-describing object per line, distinguished by a
//! `"type"` field (`span`, `counter`, `gauge`, `histogram`) — so traces
//! from different runs can be concatenated and grepped.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::JsonObject;
use crate::metrics::MetricsSnapshot;

/// Hard cap on buffered span events; beyond it events are counted in
/// `telemetry.trace.dropped` instead of stored, bounding memory on
/// unbounded runs.
const MAX_EVENTS: usize = 1 << 20;

/// Capacity of the live ring of most-recent spans served by the
/// observability plane's `/trace.json` — independent of the drain buffer
/// so scrapes never consume events destined for JSONL export.
const RECENT_CAP: usize = 4096;

/// Cross-process trace context: ties spans on both ends of a wire frame
/// into one federation-wide trace. The context is 24 bytes on the wire
/// (16-byte trace id + 8-byte parent span id); the round number rides in
/// the frame header's existing round field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit id shared by every span in one federation run.
    pub trace_id: u128,
    /// Id of the span on the sending side that this frame (and any spans
    /// its receipt opens) should parent under.
    pub parent_span: u64,
    /// Federation round the frame belongs to.
    pub round: u32,
}

impl TraceContext {
    /// Serialized size of the context on the wire (trace id + parent
    /// span id; the round travels in the frame header).
    pub const WIRE_LEN: usize = 24;

    /// Little-endian wire encoding: trace id (16 bytes) then parent span
    /// id (8 bytes).
    #[must_use]
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..16].copy_from_slice(&self.trace_id.to_le_bytes());
        out[16..].copy_from_slice(&self.parent_span.to_le_bytes());
        out
    }

    /// Decodes the wire form produced by [`TraceContext::to_wire`];
    /// `round` comes from the enclosing frame header.
    #[must_use]
    pub fn from_wire(bytes: &[u8; Self::WIRE_LEN], round: u32) -> Self {
        let trace_id = u128::from_le_bytes(bytes[..16].try_into().expect("16-byte trace id"));
        let parent_span = u64::from_le_bytes(bytes[16..].try_into().expect("8-byte span id"));
        TraceContext { trace_id, parent_span, round }
    }
}

/// Seeds a process-unique base for ids from the wall clock, PID and ASLR,
/// finalized with the SplitMix64 mixer so nearby seeds land far apart.
fn entropy64() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let pid = u64::from(std::process::id());
    let stack_probe = &nanos as *const u64 as u64;
    let mut z = nanos ^ pid.rotate_left(32) ^ stack_probe.rotate_left(17);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fresh 128-bit trace id, unique across processes with overwhelming
/// probability (two independent 64-bit entropy draws).
#[must_use]
pub fn new_trace_id() -> u128 {
    let id = (u128::from(entropy64()) << 64) | u128::from(entropy64());
    if id == 0 {
        1
    } else {
        id
    }
}

/// Allocates a span id: a process-random base plus a global counter, so
/// ids are unique within a process and collide across processes only
/// with probability ~spans/2⁶⁴. Never returns 0 (0 = "no span").
pub(crate) fn next_span_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static BASE: OnceLock<u64> = OnceLock::new();
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let id = BASE.get_or_init(entropy64).wrapping_add(NEXT.fetch_add(1, Ordering::Relaxed));
    if id == 0 {
        1
    } else {
        id
    }
}

thread_local! {
    /// Trace context received over the wire, adopted by spans this thread
    /// opens (trace id on every tracked span; the remote parent only on
    /// depth-0 roots, which have no local parent).
    static REMOTE_CTX: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
    /// Logical actor ("server", "client3") stamped on spans this thread
    /// records, so single-process federations can still split a merged
    /// trace into per-endpoint timelines.
    static ACTOR: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Installs (or clears) the wire-received trace context for the calling
/// thread. Subsequent tracked spans adopt its trace id, and depth-0 spans
/// parent under its `parent_span`.
pub fn set_remote_context(ctx: Option<TraceContext>) {
    REMOTE_CTX.with(|c| *c.borrow_mut() = ctx);
}

/// The calling thread's installed remote trace context.
#[must_use]
pub fn remote_context() -> Option<TraceContext> {
    REMOTE_CTX.with(|c| *c.borrow())
}

/// Labels every span subsequently recorded by the calling thread with a
/// logical actor name ("server", "client0", …).
pub fn set_actor(name: &str) {
    ACTOR.with(|a| *a.borrow_mut() = Some(Arc::from(name)));
}

/// The calling thread's actor label, if set.
#[must_use]
pub fn actor() -> Option<Arc<str>> {
    ACTOR.with(|a| a.borrow().clone())
}

/// One completed span.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (the leaf).
    pub name: &'static str,
    /// `/`-joined path from the thread's outermost open span.
    pub path: String,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Globally unique id of this span (0 when untracked).
    pub span_id: u64,
    /// Trace id adopted from the wire context (0 = no trace).
    pub trace_id: u128,
    /// For depth-0 spans: the remote span this one parents under
    /// (0 = local root with no remote parent).
    pub remote_parent: u64,
    /// Actor label of the recording thread, if one was set.
    pub actor: Option<Arc<str>>,
    /// Bytes the opening thread allocated inside the span (0 when the
    /// [tracking allocator](crate::alloc) is not installed).
    pub alloc_bytes: u64,
    /// Allocation calls the opening thread made inside the span.
    pub alloc_calls: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Pins the trace epoch to now-or-earlier. Called when recording is
/// switched on, so spans opened afterwards never start before the epoch
/// (their `start_ns` would otherwise saturate to zero and misorder the
/// timeline).
pub(crate) fn init_epoch() {
    let _ = epoch();
}

fn buffer() -> &'static Mutex<Vec<SpanEvent>> {
    static BUF: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn recent_ring() -> &'static Mutex<VecDeque<SpanEvent>> {
    static RING: OnceLock<Mutex<VecDeque<SpanEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RECENT_CAP)))
}

/// The most recent completed spans, oldest first (bounded ring of
/// [`RECENT_CAP`]). Non-destructive — unlike [`drain_events`], reading
/// leaves both the ring and the drain buffer intact.
pub fn recent_events() -> Vec<SpanEvent> {
    recent_ring().lock().expect("trace ring lock").iter().cloned().collect()
}

/// Nanoseconds since the process trace epoch, on the same clock as every
/// recorded span's `start_ns`.
#[must_use]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Everything `Span::close` hands to the trace buffer for one completed
/// span.
pub(crate) struct SpanRecord {
    pub name: &'static str,
    pub path: String,
    pub depth: u32,
    pub thread: u64,
    pub start: Instant,
    pub dur: Duration,
    pub span_id: u64,
    pub ctx: Option<TraceContext>,
    pub alloc_bytes: u64,
    pub alloc_calls: u64,
}

/// Appends a completed span to the trace buffer (called by `Span`).
pub(crate) fn record_span(rec: SpanRecord) {
    let SpanRecord {
        name,
        path,
        depth,
        thread,
        start,
        dur,
        span_id,
        ctx,
        alloc_bytes,
        alloc_calls,
    } = rec;
    let start_ns = start.saturating_duration_since(epoch()).as_nanos() as u64;
    let event = SpanEvent {
        name,
        path,
        depth,
        thread,
        start_ns,
        dur_ns: dur.as_nanos() as u64,
        span_id,
        trace_id: ctx.map_or(0, |c| c.trace_id),
        // Only roots adopt the remote parent: deeper spans already parent
        // locally through their path.
        remote_parent: if depth == 0 { ctx.map_or(0, |c| c.parent_span) } else { 0 },
        actor: actor(),
        alloc_bytes,
        alloc_calls,
    };
    {
        let mut ring = recent_ring().lock().expect("trace ring lock");
        let overflowed = ring.len() == RECENT_CAP;
        if overflowed {
            ring.pop_front();
        }
        ring.push_back(event.clone());
        drop(ring);
        if overflowed {
            // Overflow is observable (`/trace.json` reports it) instead of
            // a silent discard.
            crate::metrics::global().counter("obs.trace.dropped").inc();
        }
    }
    let mut buf = buffer().lock().expect("trace buffer lock");
    if buf.len() >= MAX_EVENTS {
        drop(buf);
        crate::metrics::global().counter("telemetry.trace.dropped").inc();
        return;
    }
    buf.push(event);
}

/// Removes and returns all buffered span events, oldest first.
pub fn drain_events() -> Vec<SpanEvent> {
    std::mem::take(&mut *buffer().lock().expect("trace buffer lock"))
}

/// Serializes span events and metric snapshots as JSON Lines.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        TraceWriter { w }
    }

    /// Writes one span event as a JSONL record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_event(&mut self, e: &SpanEvent) -> io::Result<()> {
        let mut obj = JsonObject::new();
        obj.str("type", "span")
            .str("name", e.name)
            .str("path", &e.path)
            .u64("depth", u64::from(e.depth))
            .u64("thread", e.thread)
            .u64("start_ns", e.start_ns)
            .u64("dur_ns", e.dur_ns);
        // Trace-propagation fields only when present, so pre-existing
        // traces and untracked spans keep their compact shape.
        if e.span_id != 0 {
            obj.u64("span_id", e.span_id);
        }
        if e.trace_id != 0 {
            obj.str("trace_id", &format!("{:032x}", e.trace_id));
        }
        if e.remote_parent != 0 {
            obj.u64("remote_parent", e.remote_parent);
        }
        if let Some(actor) = &e.actor {
            obj.str("actor", actor);
        }
        // Allocation attribution only when the tracking allocator
        // recorded something — untracked runs keep the compact shape.
        if e.alloc_bytes != 0 || e.alloc_calls != 0 {
            obj.u64("alloc_bytes", e.alloc_bytes).u64("alloc_calls", e.alloc_calls);
        }
        writeln!(self.w, "{}", obj.finish())
    }

    /// Writes a batch of span events.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_events(&mut self, events: &[SpanEvent]) -> io::Result<()> {
        events.iter().try_for_each(|e| self.write_event(e))
    }

    /// Writes every instrument in a snapshot, one JSONL record each.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_snapshot(&mut self, snap: &MetricsSnapshot) -> io::Result<()> {
        for (name, value) in &snap.counters {
            let line = JsonObject::new()
                .str("type", "counter")
                .str("name", name)
                .u64("value", *value)
                .finish();
            writeln!(self.w, "{line}")?;
        }
        for (name, value) in &snap.gauges {
            let line = JsonObject::new()
                .str("type", "gauge")
                .str("name", name)
                .f64("value", *value)
                .finish();
            writeln!(self.w, "{line}")?;
        }
        for h in &snap.histograms {
            let line = JsonObject::new()
                .str("type", "histogram")
                .str("name", &h.name)
                .u64("count", h.count)
                .u64("sum", h.sum)
                .u64("min", h.min)
                .u64("max", h.max)
                .u64("p50", h.p50)
                .u64("p90", h.p90)
                .u64("p99", h.p99)
                .finish();
            writeln!(self.w, "{line}")?;
        }
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Drains the trace buffer and snapshots the global registry into a JSONL
/// file at `path` (created or truncated).
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn export_jsonl(path: &std::path::Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let file = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(io::BufWriter::new(file));
    w.write_events(&drain_events())?;
    w.write_snapshot(&crate::metrics::global().snapshot())?;
    w.into_inner()?;
    Ok(())
}

fn format_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}µs", s * 1e6)
    } else {
        format!("{ns}ns")
    }
}

fn format_bytes(b: u64) -> String {
    let f = b as f64;
    if f >= 1048576.0 {
        format!("{:.2}MiB", f / 1048576.0)
    } else if f >= 1024.0 {
        format!("{:.2}KiB", f / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// Renders a snapshot as an aligned, human-readable summary table:
/// counters and gauges first, then histograms with count/mean/p50/p90/
/// p99/max (durations pretty-printed from nanoseconds; histograms whose
/// name ends in `bytes` are rendered as byte sizes instead).
pub fn summary_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() || !snap.gauges.is_empty() {
        let width = snap
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(snap.gauges.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        out.push_str("counters/gauges:\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        let width = snap.histograms.iter().map(|h| h.name.len()).max().unwrap_or(0).max(4);
        out.push_str(&format!(
            "{:<width$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "histogram", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for h in &snap.histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            let fmt: fn(u64) -> String =
                if h.name.ends_with("bytes") { format_bytes } else { format_ns };
            out.push_str(&format!(
                "{:<width$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                h.name,
                h.count,
                fmt(mean),
                fmt(h.p50),
                fmt(h.p90),
                fmt(h.p99),
                fmt(h.max),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    fn snap() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.sent".into(), 12)],
            gauges: vec![("b.level".into(), 3.0)],
            histograms: vec![HistogramSummary {
                name: "c.encrypt".into(),
                count: 2,
                sum: 3_000_000,
                min: 1_000_000,
                max: 2_000_000,
                p50: 1_000_000,
                p90: 2_000_000,
                p99: 2_000_000,
                buckets: vec![(1_048_575, 1), (2_097_151, 1)],
            }],
        }
    }

    #[test]
    fn writer_emits_one_json_object_per_line() {
        let event = SpanEvent {
            name: "round",
            path: "round".into(),
            start_ns: 5,
            dur_ns: 100,
            ..SpanEvent::default()
        };
        let mut w = TraceWriter::new(Vec::new());
        w.write_event(&event).expect("write");
        w.write_snapshot(&snap()).expect("write");
        let bytes = w.into_inner().expect("flush");
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // 1 span + 1 counter + 1 gauge + 1 histogram
        assert!(lines[0].contains(r#""type":"span""#) && lines[0].contains(r#""dur_ns":100"#));
        // Zero-valued propagation fields stay off the line entirely.
        assert!(!lines[0].contains("span_id") && !lines[0].contains("trace_id"));
        assert!(lines[1].contains(r#""type":"counter""#) && lines[1].contains(r#""value":12"#));
        assert!(lines[2].contains(r#""type":"gauge""#));
        assert!(
            lines[3].contains(r#""type":"histogram""#) && lines[3].contains(r#""p99":2000000"#)
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "JSONL shape: {line}");
        }
    }

    #[test]
    fn writer_emits_propagation_fields_when_set() {
        let event = SpanEvent {
            name: "client_round",
            path: "client_round".into(),
            span_id: 42,
            trace_id: 0xabcd,
            remote_parent: 7,
            actor: Some(Arc::from("client0")),
            ..SpanEvent::default()
        };
        let mut w = TraceWriter::new(Vec::new());
        w.write_event(&event).expect("write");
        let text = String::from_utf8(w.into_inner().expect("flush")).expect("utf8");
        assert!(text.contains(r#""span_id":42"#), "{text}");
        assert!(text.contains(r#""trace_id":"0000000000000000000000000000abcd""#), "{text}");
        assert!(text.contains(r#""remote_parent":7"#), "{text}");
        assert!(text.contains(r#""actor":"client0""#), "{text}");
    }

    #[test]
    fn trace_context_wire_round_trip() {
        let ctx = TraceContext { trace_id: new_trace_id(), parent_span: 0xdead_beef, round: 9 };
        let bytes = ctx.to_wire();
        assert_eq!(bytes.len(), TraceContext::WIRE_LEN);
        assert_eq!(TraceContext::from_wire(&bytes, 9), ctx);
    }

    #[test]
    fn trace_and_span_ids_are_nonzero_and_distinct() {
        assert_ne!(new_trace_id(), 0);
        assert_ne!(new_trace_id(), new_trace_id());
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn remote_context_and_actor_are_thread_local() {
        let ctx = TraceContext { trace_id: 11, parent_span: 22, round: 3 };
        set_remote_context(Some(ctx));
        set_actor("server");
        assert_eq!(remote_context(), Some(ctx));
        assert_eq!(actor().as_deref(), Some("server"));
        std::thread::spawn(|| {
            assert_eq!(remote_context(), None, "context does not leak across threads");
            assert_eq!(actor(), None, "actor does not leak across threads");
        })
        .join()
        .expect("spawned thread");
        set_remote_context(None);
        assert_eq!(remote_context(), None);
    }

    #[test]
    fn summary_table_renders_all_sections() {
        let table = summary_table(&snap());
        assert!(table.contains("a.sent"));
        assert!(table.contains("b.level"));
        assert!(table.contains("c.encrypt"));
        assert!(table.contains("1.000ms"), "p50 pretty-printed: {table}");
        assert!(summary_table(&MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(500), "500ns");
        assert_eq!(format_ns(2_500), "2.500µs");
        assert_eq!(format_ns(3_000_000), "3.000ms");
        assert_eq!(format_ns(1_500_000_000), "1.500s");
    }
}
