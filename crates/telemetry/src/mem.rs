//! Process memory observability: RSS sampling, subsystem byte sources,
//! and process uptime.
//!
//! Three independent pieces feed the observability plane's
//! `/memory.json` and the `mem.*` gauges on `/metrics`:
//!
//! 1. **RSS sampler** — [`sample_rss`] reads `/proc/self/statm` (Linux;
//!    `None` elsewhere), converts resident pages to bytes and maintains a
//!    process-lifetime peak, publishing `mem.rss.bytes` /
//!    `mem.rss.peak_bytes` gauges.
//! 2. **Subsystem sources** — crates that own long-lived buffers
//!    register a named byte-count callback with [`register_source`]
//!    (e.g. the CKKS twiddle-table cache, the scratch-row arena, the
//!    streaming accumulator, net rx payloads). [`collect`] invokes every
//!    callback at read time, so scrapes always see live figures without
//!    the observability crate depending on the subsystem crates.
//! 3. **Uptime** — [`init_start_time`] pins the process start (called by
//!    server/bins at startup); [`uptime_seconds`] measures from it, or
//!    from first use as a fallback.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Page size assumed when converting `/proc/self/statm` resident pages
/// to bytes. Linux on x86-64 and most aarch64 configurations use 4 KiB;
/// exotic page sizes skew the gauge by a constant factor but never the
/// trend, which is what the leak gate and dashboards consume.
const PAGE_BYTES: u64 = 4096;

/// High-water mark of sampled RSS, maintained across [`sample_rss`]
/// calls.
static RSS_PEAK: AtomicU64 = AtomicU64::new(0);

/// Current resident-set size of this process in bytes, from
/// `/proc/self/statm`. `None` off Linux or if procfs is unavailable.
#[must_use]
pub fn rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        // Fields: size resident shared text lib data dt (in pages).
        let resident: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        Some(resident * PAGE_BYTES)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Samples RSS, updates the process peak, and (when telemetry is
/// enabled) publishes `mem.rss.bytes` and `mem.rss.peak_bytes` gauges.
/// Returns `(rss, peak)` in bytes, or `None` where RSS is unreadable.
pub fn sample_rss() -> Option<(u64, u64)> {
    let rss = rss_bytes()?;
    let peak = RSS_PEAK.fetch_max(rss, Ordering::Relaxed).max(rss);
    if crate::enabled() {
        let reg = crate::metrics::global();
        reg.gauge("mem.rss.bytes").set(rss as f64);
        reg.gauge("mem.rss.peak_bytes").set(peak as f64);
    }
    Some((rss, peak))
}

/// Peak RSS observed by [`sample_rss`] so far (0 before the first
/// sample).
#[must_use]
pub fn rss_peak_bytes() -> u64 {
    RSS_PEAK.load(Ordering::Relaxed)
}

type SourceFn = Box<dyn Fn() -> u64 + Send + Sync>;

fn sources() -> &'static Mutex<Vec<(&'static str, SourceFn)>> {
    static SOURCES: OnceLock<Mutex<Vec<(&'static str, SourceFn)>>> = OnceLock::new();
    SOURCES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers (or replaces) a named subsystem byte source. The callback
/// is invoked at every [`collect`] — it must be cheap, lock-light and
/// panic-free. Registration is idempotent by name, so constructors that
/// run many times (one `CkksContext` per client, say) can register
/// unconditionally.
pub fn register_source(name: &'static str, f: impl Fn() -> u64 + Send + Sync + 'static) {
    let mut list = sources().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    match list.iter_mut().find(|(n, _)| *n == name) {
        Some(slot) => slot.1 = Box::new(f),
        None => list.push((name, Box::new(f))),
    }
}

/// Reads every registered subsystem source: `(name, bytes)` pairs in
/// registration order.
#[must_use]
pub fn collect() -> Vec<(&'static str, u64)> {
    let list = sources().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    list.iter().map(|(n, f)| (*n, f())).collect()
}

/// Publishes one `mem.<name>.bytes` gauge per registered source (no-op
/// while telemetry is disabled). Returns the collected pairs so callers
/// rendering JSON reuse the same read.
pub fn publish_source_gauges() -> Vec<(&'static str, u64)> {
    let collected = collect();
    if crate::enabled() {
        let reg = crate::metrics::global();
        for (name, bytes) in &collected {
            reg.gauge(&format!("mem.{name}.bytes")).set(*bytes as f64);
        }
    }
    collected
}

fn start_cell() -> &'static OnceLock<Instant> {
    static START: OnceLock<Instant> = OnceLock::new();
    &START
}

/// Pins the process start time for [`uptime_seconds`]. Call once, early
/// (server bind, bench init). Later calls are no-ops.
pub fn init_start_time() {
    let _ = start_cell().get_or_init(Instant::now);
}

/// Seconds since [`init_start_time`] — or since the first call to either
/// function, when nothing pinned the start explicitly.
#[must_use]
pub fn uptime_seconds() -> f64 {
    start_cell().get_or_init(Instant::now).elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_is_readable_and_plausible() {
        let rss = rss_bytes().expect("procfs on linux");
        // Any live Rust process is at least a few hundred KiB resident
        // and far below 1 TiB.
        assert!(rss > 100 * 1024, "rss {rss} implausibly small");
        assert!(rss < 1 << 40, "rss {rss} implausibly large");
        let (now, peak) = sample_rss().expect("sample");
        assert!(peak >= now);
        assert!(rss_peak_bytes() >= now);
    }

    #[test]
    fn sources_register_replace_and_collect() {
        register_source("test.fixed", || 42);
        assert!(collect().iter().any(|&(n, v)| n == "test.fixed" && v == 42));
        // Same name replaces rather than duplicating.
        register_source("test.fixed", || 43);
        let hits: Vec<u64> =
            collect().iter().filter(|(n, _)| *n == "test.fixed").map(|&(_, v)| v).collect();
        assert_eq!(hits, vec![43]);
    }

    #[test]
    fn source_gauges_publish_when_enabled() {
        let _g = crate::test_guard();
        register_source("test.gauge_src", || 7 * 1024);
        crate::set_enabled(true);
        let collected = publish_source_gauges();
        crate::set_enabled(false);
        assert!(collected.iter().any(|&(n, v)| n == "test.gauge_src" && v == 7 * 1024));
        assert_eq!(crate::metrics::global().gauge("mem.test.gauge_src.bytes").get(), 7168.0);
    }

    #[test]
    fn uptime_is_monotone() {
        init_start_time();
        let a = uptime_seconds();
        let b = uptime_seconds();
        assert!(b >= a && a >= 0.0);
    }
}
