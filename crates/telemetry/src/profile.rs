//! Span-tree profiler: aggregates completed spans into a call tree with
//! self-time vs. child-time attribution, and exports folded-stack lines
//! (`round;encrypt;fhe.ckks.encrypt 1234567`) consumable by flamegraph
//! tooling.
//!
//! Spans carry their full `/`-joined path (see [`crate::span`]), so the
//! tree is rebuilt purely from `(path, dur_ns)` pairs — either live
//! [`SpanEvent`]s or span records parsed back out of a JSONL trace file
//! ([`parse_jsonl`]). Totals are exact sums of the recorded durations;
//! self-time is `total - Σ child totals`, saturating at zero when child
//! spans raced past their parent's recorded window.

use std::collections::BTreeMap;

use crate::trace::SpanEvent;

/// One aggregated node of the span tree, keyed by full span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// `/`-joined path from the outermost span (e.g. `round/encrypt`).
    pub path: String,
    /// Number of spans recorded at this path.
    pub count: u64,
    /// Sum of recorded wall-clock durations, in nanoseconds.
    pub total_ns: u64,
    /// Sum of the direct children's `total_ns`.
    pub child_ns: u64,
}

impl SpanNode {
    /// Time spent in this span but not in any recorded child
    /// (`total_ns - child_ns`, saturating at zero).
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// The leaf span name (last path segment).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Nesting depth: number of ancestors (0 = outermost).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }
}

/// A call tree aggregated from completed spans.
#[derive(Debug, Default)]
pub struct SpanTree {
    nodes: BTreeMap<String, SpanNode>,
}

impl SpanTree {
    /// Builds the tree from live trace events.
    pub fn from_events(events: &[SpanEvent]) -> Self {
        Self::from_paths(events.iter().map(|e| (e.path.clone(), e.dur_ns)))
    }

    /// Builds the tree from `(path, dur_ns)` pairs (e.g. parsed from a
    /// JSONL trace). Parents that were never recorded themselves — a span
    /// still open at export time, or dropped by the buffer cap — are
    /// materialized with zero count/total so the tree stays connected.
    pub fn from_paths<I: IntoIterator<Item = (String, u64)>>(paths: I) -> Self {
        let mut nodes: BTreeMap<String, SpanNode> = BTreeMap::new();
        for (path, dur_ns) in paths {
            let node = nodes.entry(path.clone()).or_insert(SpanNode {
                path,
                count: 0,
                total_ns: 0,
                child_ns: 0,
            });
            node.count += 1;
            node.total_ns += dur_ns;
        }
        let recorded: Vec<String> = nodes.keys().cloned().collect();
        for path in &recorded {
            let mut cur = path.as_str();
            while let Some(i) = cur.rfind('/') {
                let parent = &cur[..i];
                nodes.entry(parent.to_owned()).or_insert(SpanNode {
                    path: parent.to_owned(),
                    count: 0,
                    total_ns: 0,
                    child_ns: 0,
                });
                cur = parent;
            }
        }
        let child_totals: Vec<(String, u64)> = nodes
            .iter()
            .filter_map(|(path, n)| path.rfind('/').map(|i| (path[..i].to_owned(), n.total_ns)))
            .collect();
        for (parent, total) in child_totals {
            if let Some(p) = nodes.get_mut(&parent) {
                p.child_ns += total;
            }
        }
        SpanTree { nodes }
    }

    /// All nodes in path order.
    pub fn nodes(&self) -> impl Iterator<Item = &SpanNode> {
        self.nodes.values()
    }

    /// Looks up a node by full path.
    pub fn get(&self, path: &str) -> Option<&SpanNode> {
        self.nodes.get(path)
    }

    /// Number of nodes (including materialized parents).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Folded-stack export: one `a;b;c <self_ns>` line per node with
    /// nonzero self-time, path-sorted — the input format of
    /// `flamegraph.pl` and `inferno`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for node in self.nodes.values() {
            let self_ns = node.self_ns();
            if self_ns == 0 {
                continue;
            }
            out.push_str(&node.path.replace('/', ";"));
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the top-`top` spans by self-time as an aligned table.
    /// Totals are printed as exact nanosecond sums so they reconcile with
    /// the underlying trace.
    pub fn self_time_table(&self, top: usize) -> String {
        let mut rows: Vec<&SpanNode> = self.nodes.values().collect();
        rows.sort_by(|a, b| b.self_ns().cmp(&a.self_ns()).then_with(|| a.path.cmp(&b.path)));
        rows.truncate(top);
        let grand: u64 = self.nodes.values().map(SpanNode::self_ns).sum();
        let width = rows.iter().map(|n| n.path.len()).max().unwrap_or(0).max(4);
        let mut out = format!(
            "{:<width$}  {:>8} {:>16} {:>16} {:>6}\n",
            "span", "count", "total_ns", "self_ns", "self%"
        );
        for node in rows {
            let self_ns = node.self_ns();
            let pct = if grand == 0 { 0.0 } else { 100.0 * self_ns as f64 / grand as f64 };
            out.push_str(&format!(
                "{:<width$}  {:>8} {:>16} {:>16} {:>5.1}%\n",
                node.path, node.count, node.total_ns, self_ns, pct
            ));
        }
        out
    }
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if hex.len() != 4 {
                        return None;
                    }
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                _ => return None,
            },
            _ => out.push(c),
        }
    }
    None
}

fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let digits: &str = &rest[..rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len())];
    digits.parse().ok()
}

/// Parses one JSONL line as written by [`crate::trace::TraceWriter`],
/// returning `(path, dur_ns)` for `"type":"span"` records and `None` for
/// everything else (metric records, blank lines, malformed input).
pub fn parse_span_line(line: &str) -> Option<(String, u64)> {
    if !line.contains("\"type\":\"span\"") {
        return None;
    }
    Some((json_str_field(line, "path")?, json_u64_field(line, "dur_ns")?))
}

/// Extracts every span record from a JSONL trace, in file order.
pub fn parse_jsonl(text: &str) -> Vec<(String, u64)> {
    text.lines().filter_map(parse_span_line).collect()
}

/// A fully parsed span record, including the cross-process propagation
/// fields ([`crate::trace::TraceContext`]); fields that were absent from
/// the line parse as zero / empty.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// Span name (the leaf).
    pub name: String,
    /// `/`-joined path from the thread's outermost open span.
    pub path: String,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Start time in nanoseconds since the recording process's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Globally unique span id (0 when the record predates tracing).
    pub span_id: u64,
    /// Trace id (0 = none recorded).
    pub trace_id: u128,
    /// Remote span this root parents under (0 = local root).
    pub remote_parent: u64,
    /// Actor label of the recording thread, if any.
    pub actor: String,
}

/// Parses one JSONL line into a full [`SpanRecord`] (`None` for non-span
/// lines). Traces written before cross-process propagation existed parse
/// fine: the extra fields default to zero / empty.
pub fn parse_span_record(line: &str) -> Option<SpanRecord> {
    if !line.contains("\"type\":\"span\"") {
        return None;
    }
    let path = json_str_field(line, "path")?;
    let name = json_str_field(line, "name")
        .unwrap_or_else(|| path.rsplit('/').next().unwrap_or(&path).to_owned());
    Some(SpanRecord {
        name,
        depth: json_u64_field(line, "depth").unwrap_or(0) as u32,
        thread: json_u64_field(line, "thread").unwrap_or(0),
        start_ns: json_u64_field(line, "start_ns").unwrap_or(0),
        dur_ns: json_u64_field(line, "dur_ns")?,
        span_id: json_u64_field(line, "span_id").unwrap_or(0),
        trace_id: json_str_field(line, "trace_id")
            .and_then(|h| u128::from_str_radix(&h, 16).ok())
            .unwrap_or(0),
        remote_parent: json_u64_field(line, "remote_parent").unwrap_or(0),
        actor: json_str_field(line, "actor").unwrap_or_default(),
        path,
    })
}

/// Extracts every full span record from a JSONL trace, in file order.
pub fn parse_jsonl_records(text: &str) -> Vec<SpanRecord> {
    text.lines().filter_map(parse_span_record).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceWriter;

    fn sample_paths() -> Vec<(String, u64)> {
        vec![
            ("round".into(), 100),
            ("round/encrypt".into(), 60),
            ("round/encrypt/fhe.ckks.encrypt".into(), 25),
            ("round/encrypt/fhe.ckks.encrypt".into(), 25),
            ("round/decrypt".into(), 30),
        ]
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let tree = SpanTree::from_paths(sample_paths());
        let round = tree.get("round").expect("round node");
        assert_eq!((round.count, round.total_ns, round.child_ns), (1, 100, 90));
        assert_eq!(round.self_ns(), 10);
        let encrypt = tree.get("round/encrypt").expect("encrypt node");
        assert_eq!((encrypt.total_ns, encrypt.child_ns, encrypt.self_ns()), (60, 50, 10));
        let leaf = tree.get("round/encrypt/fhe.ckks.encrypt").expect("leaf node");
        assert_eq!((leaf.count, leaf.total_ns, leaf.self_ns()), (2, 50, 50));
        assert_eq!(leaf.name(), "fhe.ckks.encrypt");
        assert_eq!(leaf.depth(), 2);
        // Self-times sum back to the root total: no time double-counted.
        let total_self: u64 = tree.nodes().map(SpanNode::self_ns).sum();
        assert_eq!(total_self, 100);
    }

    #[test]
    fn missing_parents_are_materialized() {
        let tree = SpanTree::from_paths(vec![("a/b/c".to_owned(), 7)]);
        assert_eq!(tree.len(), 3);
        let a = tree.get("a").expect("implicit root");
        assert_eq!((a.count, a.total_ns, a.child_ns, a.self_ns()), (0, 0, 0, 0));
        assert_eq!(tree.get("a/b").expect("implicit mid").child_ns, 7);
        assert_eq!(tree.get("a/b/c").expect("leaf").self_ns(), 7);
    }

    #[test]
    fn folded_lines_use_semicolons_and_self_time() {
        let tree = SpanTree::from_paths(sample_paths());
        let folded = tree.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"round 10"));
        assert!(lines.contains(&"round;encrypt 10"));
        assert!(lines.contains(&"round;encrypt;fhe.ckks.encrypt 50"));
        assert!(lines.contains(&"round;decrypt 30"));
        // Folded values sum to total wall time at the root.
        let sum: u64 =
            lines.iter().map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()).sum();
        assert_eq!(sum, 100);
    }

    #[test]
    fn table_ranks_by_self_time_and_truncates() {
        let tree = SpanTree::from_paths(sample_paths());
        let table = tree.self_time_table(2);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "header + top 2: {table}");
        assert!(lines[1].starts_with("round/encrypt/fhe.ckks.encrypt"));
        assert!(lines[1].contains(" 50 "));
        assert!(lines[2].starts_with("round/decrypt"));
    }

    #[test]
    fn jsonl_round_trip_preserves_paths_and_durations() {
        let events = vec![
            SpanEvent { name: "round", path: "round".into(), dur_ns: 100, ..SpanEvent::default() },
            SpanEvent {
                name: "encrypt",
                path: "round/encrypt".into(),
                depth: 1,
                start_ns: 10,
                dur_ns: 60,
                ..SpanEvent::default()
            },
        ];
        let mut w = TraceWriter::new(Vec::new());
        w.write_events(&events).expect("write");
        let text = String::from_utf8(w.into_inner().expect("flush")).expect("utf8");
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed, vec![("round".to_owned(), 100), ("round/encrypt".to_owned(), 60)]);
        // Non-span lines and garbage are skipped, not misparsed.
        assert_eq!(parse_span_line(r#"{"type":"counter","name":"x","value":3}"#), None);
        assert_eq!(parse_span_line("not json"), None);
    }

    #[test]
    fn parser_unescapes_json_strings() {
        let line = r#"{"type":"span","name":"x","path":"a\"b\\cA/leaf","dur_ns":9}"#;
        assert_eq!(parse_span_line(line), Some(("a\"b\\cA/leaf".to_owned(), 9)));
    }

    #[test]
    fn span_record_round_trip_with_propagation_fields() {
        let event = SpanEvent {
            name: "client_round",
            path: "client_round".into(),
            thread: 3,
            start_ns: 40,
            dur_ns: 500,
            span_id: 99,
            trace_id: 0xfeed_beef,
            remote_parent: 12,
            actor: Some(std::sync::Arc::from("client2")),
            ..SpanEvent::default()
        };
        let mut w = TraceWriter::new(Vec::new());
        w.write_event(&event).expect("write");
        let text = String::from_utf8(w.into_inner().expect("flush")).expect("utf8");
        let rec = parse_span_record(text.trim()).expect("span record");
        assert_eq!(rec.name, "client_round");
        assert_eq!(rec.path, "client_round");
        assert_eq!((rec.thread, rec.start_ns, rec.dur_ns), (3, 40, 500));
        assert_eq!(rec.span_id, 99);
        assert_eq!(rec.trace_id, 0xfeed_beef);
        assert_eq!(rec.remote_parent, 12);
        assert_eq!(rec.actor, "client2");
        // Legacy lines without the propagation fields still parse.
        let legacy = r#"{"type":"span","name":"round","path":"round","dur_ns":7}"#;
        let rec = parse_span_record(legacy).expect("legacy record");
        assert_eq!((rec.span_id, rec.trace_id, rec.remote_parent), (0, 0, 0));
        assert!(rec.actor.is_empty());
    }
}
