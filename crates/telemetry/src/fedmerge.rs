//! Federation-wide trace merging: stitches the server's and N clients'
//! JSONL traces into one span tree by resolving cross-process parent
//! links ([`crate::trace::TraceContext`]).
//!
//! Every tracked span carries a globally unique `span_id`; a frame on the
//! wire carries the sender's span id as `remote_parent`, which the
//! receiver stamps onto the depth-0 spans it opens while handling the
//! frame. Merging therefore reduces to path rewriting: a root span whose
//! `remote_parent` resolves into another source is grafted under that
//! span's merged path, with an actor segment (`server`, `client3`)
//! inserted whenever the trace crosses an actor boundary. The result is a
//! single [`SpanTree`] whose totals are exact nanosecond sums of the
//! input records — nothing is scaled or interpolated, so merged totals
//! reconcile with each endpoint's `RoundReport` to the nanosecond.
//!
//! Example merged paths from a loopback federation:
//!
//! ```text
//! server/net_round                              server round span
//! server/net_round/broadcast                    handler fan-out
//! server/net_round/client2/client_round         client leg, same trace
//! server/net_round/client2/client_round/encrypt
//! server/net_round/client2/client_round/server/net_decode
//! server/net_round/net_aggregate
//! ```

use std::collections::BTreeMap;

use crate::profile::{SpanRecord, SpanTree};

/// One endpoint's trace: a label (used as the actor for records that
/// carry none) plus its parsed span records.
#[derive(Debug, Clone)]
pub struct FedSource {
    /// Actor label for this source ("server", "client0", …).
    pub label: String,
    /// Parsed span records (see [`crate::profile::parse_jsonl_records`]).
    pub records: Vec<SpanRecord>,
}

impl FedSource {
    /// Bundles a label with parsed records.
    pub fn new(label: impl Into<String>, records: Vec<SpanRecord>) -> Self {
        FedSource { label: label.into(), records }
    }
}

fn root_of(path: &str) -> &str {
    path.split('/').next().unwrap_or(path)
}

fn actor_of<'a>(rec: &'a SpanRecord, label: &'a str) -> &'a str {
    if rec.actor.is_empty() {
        label
    } else {
        &rec.actor
    }
}

/// Prefix-resolution key: all roots of one source with the same actor and
/// root span name share a merged prefix (their rounds differ only in
/// which concrete parent span they link to, never in its path).
type GroupKey = (usize, String, String);

fn prefix_for(
    sources: &[FedSource],
    index: &BTreeMap<u64, (usize, usize)>,
    memo: &mut BTreeMap<GroupKey, String>,
    visiting: &mut Vec<GroupKey>,
    key: &GroupKey,
) -> String {
    if let Some(p) = memo.get(key) {
        return p.clone();
    }
    if visiting.contains(key) {
        // Malformed input with a parent cycle: fall back to the bare
        // actor prefix rather than recursing forever.
        return key.1.clone();
    }
    visiting.push(key.clone());
    let (si, actor, root) = key;
    let src = &sources[*si];
    let rep = src.records.iter().find(|r| {
        r.depth == 0
            && r.path == *root
            && actor_of(r, &src.label) == actor
            && r.remote_parent != 0
            && r.remote_parent != r.span_id
            && index.contains_key(&r.remote_parent)
    });
    let prefix = match rep {
        // No resolvable remote parent anywhere in the group: a true root,
        // anchored directly under its actor.
        None => actor.clone(),
        Some(r) => {
            let (psi, pri) = index[&r.remote_parent];
            let parent = &sources[psi].records[pri];
            let p_actor = actor_of(parent, &sources[psi].label).to_owned();
            let pkey = (psi, p_actor.clone(), root_of(&parent.path).to_owned());
            let parent_prefix = prefix_for(sources, index, memo, visiting, &pkey);
            let parent_merged = format!("{parent_prefix}/{}", parent.path);
            if p_actor == *actor {
                // Same actor on both ends (e.g. a handler thread span
                // parenting under the coordinator's round span): no actor
                // boundary to mark.
                parent_merged
            } else {
                format!("{parent_merged}/{actor}")
            }
        }
    };
    visiting.pop();
    memo.insert(key.clone(), prefix.clone());
    prefix
}

/// Rewrites every record of every source onto its federation-wide merged
/// path, returning `(merged_path, dur_ns)` pairs suitable for
/// [`SpanTree::from_paths`].
pub fn merged_paths(sources: &[FedSource]) -> Vec<(String, u64)> {
    let mut index: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for (si, s) in sources.iter().enumerate() {
        for (ri, r) in s.records.iter().enumerate() {
            if r.span_id != 0 {
                index.insert(r.span_id, (si, ri));
            }
        }
    }
    let mut memo = BTreeMap::new();
    let mut out = Vec::new();
    for (si, s) in sources.iter().enumerate() {
        for r in &s.records {
            let key: GroupKey = (si, actor_of(r, &s.label).to_owned(), root_of(&r.path).to_owned());
            let prefix = prefix_for(sources, &index, &mut memo, &mut Vec::new(), &key);
            out.push((format!("{prefix}/{}", r.path), r.dur_ns));
        }
    }
    out
}

/// Merges all sources into one federation-wide [`SpanTree`].
pub fn merge(sources: &[FedSource]) -> SpanTree {
    SpanTree::from_paths(merged_paths(sources))
}

/// Exact nanosecond total of every span named `name` recorded by `actor`
/// across all sources — the per-endpoint figure merged trees are
/// reconciled against (`RoundReport` fields are populated from the same
/// span measurements).
pub fn actor_span_total(sources: &[FedSource], actor: &str, name: &str) -> u64 {
    sources
        .iter()
        .flat_map(|s| s.records.iter().map(move |r| (actor_of(r, &s.label), r)))
        .filter(|(a, r)| *a == actor && r.name == name)
        .map(|(_, r)| r.dur_ns)
        .sum()
}

/// Distinct trace ids present across all sources (0 excluded).
pub fn trace_ids(sources: &[FedSource]) -> Vec<u128> {
    let mut ids: Vec<u128> = sources
        .iter()
        .flat_map(|s| s.records.iter().map(|r| r.trace_id))
        .filter(|&id| id != 0)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        name: &str,
        path: &str,
        depth: u32,
        dur_ns: u64,
        span_id: u64,
        remote_parent: u64,
    ) -> SpanRecord {
        SpanRecord {
            name: name.to_owned(),
            path: path.to_owned(),
            depth,
            dur_ns,
            span_id,
            remote_parent,
            trace_id: 0xabc,
            ..SpanRecord::default()
        }
    }

    /// Two rounds, one server + two clients: client roots graft under the
    /// per-round server span, server-side decode grafts back under the
    /// client leg, and every total survives the merge exactly.
    fn federation() -> Vec<FedSource> {
        let server = FedSource::new(
            "server",
            vec![
                rec("net_round", "net_round", 0, 1_000, 10, 0),
                rec("net_aggregate", "net_round/net_aggregate", 1, 200, 11, 0),
                rec("broadcast", "broadcast", 0, 50, 12, 10),
                rec("net_decode", "net_decode", 0, 30, 13, 20),
                rec("net_round", "net_round", 0, 1_100, 14, 0),
                rec("net_aggregate", "net_round/net_aggregate", 1, 210, 15, 0),
                rec("broadcast", "broadcast", 0, 60, 16, 14),
                rec("net_decode", "net_decode", 0, 40, 17, 24),
            ],
        );
        let client0 = FedSource::new(
            "client0",
            vec![
                rec("client_round", "client_round", 0, 700, 20, 10),
                rec("local_train", "client_round/local_train", 1, 300, 21, 0),
                rec("encrypt", "client_round/encrypt", 1, 250, 22, 0),
                rec("client_round", "client_round", 0, 710, 24, 14),
                rec("local_train", "client_round/local_train", 1, 310, 25, 0),
                rec("encrypt", "client_round/encrypt", 1, 260, 26, 0),
            ],
        );
        let client1 = FedSource::new(
            "client1",
            vec![
                rec("client_round", "client_round", 0, 650, 30, 10),
                rec("decrypt", "decrypt", 0, 90, 31, 14),
            ],
        );
        vec![server, client0, client1]
    }

    #[test]
    fn client_roots_graft_under_server_round() {
        let tree = merge(&federation());
        let client_leg = tree.get("server/net_round/client0/client_round").expect("client leg");
        assert_eq!(client_leg.count, 2);
        assert_eq!(client_leg.total_ns, 700 + 710);
        let encrypt =
            tree.get("server/net_round/client0/client_round/encrypt").expect("encrypt leaf");
        assert_eq!(encrypt.total_ns, 250 + 260);
        assert!(tree.get("server/net_round/client1/client_round").is_some());
        assert!(tree.get("server/net_round/client1/decrypt").is_some());
    }

    #[test]
    fn same_actor_links_add_no_actor_segment() {
        let tree = merge(&federation());
        // Handler broadcast spans parent under the coordinator's round
        // span without a duplicated "server" segment.
        let broadcast = tree.get("server/net_round/broadcast").expect("broadcast");
        assert_eq!(broadcast.total_ns, 110);
        assert!(tree.get("server/net_round/server/broadcast").is_none());
    }

    #[test]
    fn cross_actor_links_mark_the_boundary() {
        let tree = merge(&federation());
        // net_decode parents under client0's round leg, crossing back to
        // the server actor.
        let decode = tree
            .get("server/net_round/client0/client_round/server/net_decode")
            .expect("decode under the client leg");
        assert_eq!(decode.total_ns, 70);
    }

    #[test]
    fn merged_totals_reconcile_exactly() {
        let sources = federation();
        let tree = merge(&sources);
        let grand: u64 = tree.nodes().map(crate::profile::SpanNode::self_ns).sum();
        let input: u64 =
            sources.iter().flat_map(|s| s.records.iter().map(|r| r.dur_ns)).sum::<u64>();
        // Self-times partition the merged tree, but cross-process child
        // time (client legs under net_round) exceeds the parent's local
        // window, so only exact per-name totals are meaningful:
        assert!(grand <= input);
        assert_eq!(actor_span_total(&sources, "client0", "encrypt"), 510);
        assert_eq!(actor_span_total(&sources, "server", "net_aggregate"), 410);
        let agg = tree.get("server/net_round/net_aggregate").expect("aggregate");
        assert_eq!(agg.total_ns, actor_span_total(&sources, "server", "net_aggregate"));
    }

    #[test]
    fn unlinked_roots_anchor_under_their_actor() {
        let sources = vec![FedSource::new(
            "client7",
            vec![rec("decrypt", "decrypt", 0, 5, 40, 999_999)], // dangling parent
        )];
        let tree = merge(&sources);
        assert!(tree.get("client7/decrypt").is_some(), "dangling link falls back to actor root");
    }

    #[test]
    fn parent_cycles_terminate() {
        let sources = vec![FedSource::new(
            "weird",
            vec![rec("a", "a", 0, 5, 1, 2), rec("b", "b", 0, 6, 2, 1)],
        )];
        let tree = merge(&sources);
        assert!(!tree.is_empty(), "cycle input still merges");
    }

    #[test]
    fn trace_ids_collects_distinct_nonzero() {
        assert_eq!(trace_ids(&federation()), vec![0xabc]);
        let untraced = vec![FedSource::new(
            "x",
            vec![SpanRecord { path: "a".into(), dur_ns: 1, ..SpanRecord::default() }],
        )];
        assert!(trace_ids(&untraced).is_empty(), "zero trace ids are excluded");
    }
}
