//! # rhychee-telemetry
//!
//! Zero-dependency tracing and metrics substrate for the Rhychee-FL
//! stack: hierarchical [spans](span::Span) over thread-local stacks, a
//! global [metrics registry](metrics::Registry) (counters, gauges,
//! log-bucketed histograms with p50/p90/p99 queries), JSONL export via
//! [`trace::TraceWriter`], and a human-readable
//! [summary table](trace::summary_table).
//!
//! ## Cost model
//!
//! Telemetry is **disabled by default**. Every recording entry point
//! checks one relaxed atomic ([`enabled`]) first, so instrumented hot
//! loops cost a load-and-branch when recording is off. Building with the
//! `off` cargo feature removes even that: [`enabled`] becomes a constant
//! `false` and the optimizer deletes the instrumentation outright.
//! [`span`] is the one exception — it always measures wall time (two
//! monotonic clock reads) so callers can populate report structs from
//! [`span::Span::finish`] whether or not recording is on.
//!
//! ## Naming
//!
//! Metrics follow `crate.component.op` (e.g. `fhe.ckks.ntt.forward`,
//! `channel.packet.sent`). Span duration histograms are registered under
//! the bare span name (`round`, `encrypt`, …); the span taxonomy lives in
//! DESIGN.md §7.
//!
//! # Examples
//!
//! ```
//! use rhychee_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! {
//!     let round = telemetry::span("doc_round");
//!     telemetry::count("doc.example.ops", 2);
//!     telemetry::observe("doc.example.latency_ns", 1_500);
//!     let train = telemetry::span("doc_train");
//!     let train_time = train.finish(); // Duration, usable directly
//!     assert!(train_time.as_nanos() > 0);
//!     round.finish();
//! }
//! telemetry::set_enabled(false);
//!
//! let events = telemetry::trace::drain_events();
//! assert!(events.iter().any(|e| e.path == "doc_round/doc_train"));
//! let snapshot = telemetry::metrics::global().snapshot();
//! assert!(snapshot.counters.iter().any(|(n, v)| n == "doc.example.ops" && *v == 2));
//! println!("{}", telemetry::trace::summary_table(&snapshot));
//! ```

pub mod alloc;
pub mod fedmerge;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

pub use alloc::{AllocStats, TrackingAlloc};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry};
pub use profile::{SpanNode, SpanTree};
pub use span::Span;
pub use trace::{SpanEvent, TraceContext, TraceWriter};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is on. With the `off` feature this is a constant
/// `false` and all instrumentation compiles away.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        false
    } else {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turns recording on or off process-wide. A no-op under the `off`
/// feature.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the trace epoch before any span can open, so every
        // recorded `start_ns` is measured from a common origin.
        trace::init_epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Opens a hierarchical span. Always measures wall time; records into the
/// trace buffer and the span-name histogram only while [`enabled`].
#[inline]
pub fn span(name: &'static str) -> Span {
    span::open(name)
}

/// Adds `delta` to the counter `name` (no-op while disabled).
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if enabled() {
        metrics::global().counter(name).add(delta);
    }
}

/// Sets the gauge `name` (no-op while disabled).
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if enabled() {
        metrics::global().gauge(name).set(value);
    }
}

/// Records a sample into the histogram `name` (no-op while disabled).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        metrics::global().histogram(name).record(value);
    }
}

/// Records a duration in nanoseconds into the histogram `name` (no-op
/// while disabled).
#[inline]
pub fn observe_duration(name: &'static str, d: std::time::Duration) {
    observe(name, d.as_nanos() as u64);
}

/// Adds `delta` to the labeled counter `family{label="value"}` (no-op
/// while disabled). Subject to the per-family label-cardinality cap
/// ([`metrics::LABEL_CARDINALITY_CAP`]).
#[inline]
pub fn count_labeled(family: &str, label: &str, value: &str, delta: u64) {
    if enabled() {
        metrics::global().counter_labeled(family, label, value).add(delta);
    }
}

/// Records a sample into the labeled histogram `family{label="value"}`
/// (no-op while disabled). Subject to the per-family label-cardinality
/// cap ([`metrics::LABEL_CARDINALITY_CAP`]).
#[inline]
pub fn observe_labeled(family: &str, label: &str, value: &str, sample: u64) {
    if enabled() {
        metrics::global().histogram_labeled(family, label, value).record(sample);
    }
}

/// A scope timer: on drop, records the elapsed nanoseconds into the
/// histogram `name`. When telemetry is disabled at construction the clock
/// is never read — total cost is one relaxed atomic load.
#[derive(Debug)]
#[must_use = "the timer records on drop; binding it to `_` drops immediately"]
pub struct Timer {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            metrics::global().histogram(self.name).record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts a scope timer for histogram `name`.
#[inline]
pub fn timer(name: &'static str) -> Timer {
    Timer { name, start: enabled().then(Instant::now) }
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Tests that flip the global enabled flag or drain the trace buffer
    // serialize on this lock so they cannot steal each other's state.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = test_guard();
        set_enabled(false);
        count("lib.disabled.counter", 5);
        observe("lib.disabled.hist", 10);
        {
            let _t = timer("lib.disabled.timer");
        }
        let snap = metrics::global().snapshot();
        assert!(!snap.counters.iter().any(|(n, _)| n == "lib.disabled.counter"));
        assert!(!snap.histograms.iter().any(|h| h.name == "lib.disabled.hist"));
        assert!(!snap.histograms.iter().any(|h| h.name == "lib.disabled.timer"));
        // Spans still measure time while disabled but record nothing.
        let s = span("lib_disabled_span");
        assert!(s.finish().as_nanos() < u128::MAX);
        assert!(!trace::drain_events().iter().any(|e| e.name == "lib_disabled_span"));
    }

    #[test]
    fn enabled_recording_reaches_the_registry() {
        let _g = test_guard();
        set_enabled(true);
        count("lib.enabled.counter", 2);
        count("lib.enabled.counter", 3);
        gauge("lib.enabled.gauge", 7.5);
        {
            let _t = timer("lib.enabled.timer");
        }
        set_enabled(false);
        let reg = metrics::global();
        assert_eq!(reg.counter("lib.enabled.counter").get(), 5);
        assert_eq!(reg.gauge("lib.enabled.gauge").get(), 7.5);
        assert_eq!(reg.histogram("lib.enabled.timer").count(), 1);
    }

    #[test]
    fn timer_enabled_at_start_records_even_if_disabled_mid_scope() {
        let _g = test_guard();
        set_enabled(true);
        let t = timer("lib.midflip.timer");
        set_enabled(false);
        drop(t);
        assert_eq!(metrics::global().histogram("lib.midflip.timer").count(), 1);
    }
}
