//! Tracking global allocator: heap accounting with per-span attribution.
//!
//! [`TrackingAlloc`] wraps [`std::alloc::System`] and maintains, on every
//! allocation and deallocation, a handful of relaxed atomics (process
//! live/peak bytes, cumulative allocated bytes, allocation/deallocation
//! counts) plus two thread-local cumulative counters that
//! [`Span`](crate::span::Span) snapshots when it opens and diffs when it
//! closes — giving every recorded span the number of bytes the code it
//! wraps allocated *on the opening thread*. Work fanned out to
//! `rhychee-par` pool threads is counted in the process totals but not in
//! the coordinating span; zero-allocation assertions therefore run the
//! kernel under `Parallelism::Fixed(1)`, which executes inline.
//!
//! The allocator itself never allocates: the fast path is four relaxed
//! atomic RMWs and two thread-local `Cell` adds. Thread-locals are
//! const-initialized (no lazy allocation) and accessed through
//! `try_with`, so allocations during thread teardown fall back to the
//! process counters alone instead of panicking.
//!
//! Install it from a binary or test crate root:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rhychee_telemetry::alloc::TrackingAlloc =
//!     rhychee_telemetry::alloc::TrackingAlloc;
//! ```
//!
//! Rust permits a single `#[global_allocator]` per program, so the
//! wrapper lives here (dependency root) and each binary opts in.
//! [`installed`] reports whether any allocation has actually routed
//! through the wrapper, letting shared test helpers degrade gracefully
//! when the host binary kept the default allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static INSTALLED: AtomicBool = AtomicBool::new(false);
/// Bytes currently live (allocated and not yet freed).
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE_BYTES`].
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
/// Cumulative bytes ever allocated.
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Number of allocation calls (alloc, alloc_zeroed, and growing reallocs).
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
/// Number of deallocation calls.
static DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Cumulative bytes this thread has allocated (never decremented).
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Cumulative allocation calls made by this thread.
    static THREAD_CALLS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn note_alloc(size: u64) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    // `try_with` (not `with`): the TLS slot may already be torn down when
    // destructors of other thread-locals allocate during thread exit.
    let _ = THREAD_BYTES.try_with(|b| b.set(b.get() + size));
    let _ = THREAD_CALLS.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn note_dealloc(size: u64) {
    // Every pointer this allocator frees it also handed out (it is the
    // process-wide allocator from startup), so live never underflows.
    LIVE_BYTES.fetch_sub(size, Ordering::Relaxed);
    DEALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] wrapper over the system allocator that feeds the
/// process and per-thread heap counters read by [`stats`],
/// [`thread_allocated_bytes`] and span attribution.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the
// bookkeeping around the calls touches only atomics and const-init
// thread-local Cells, neither of which can allocate or unwind.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Accounted as free-then-alloc so `TOTAL_BYTES` reflects the
            // new block and `LIVE_BYTES` the net change; a shrinking
            // realloc still counts as one allocation call (the block
            // moved or was resized — either way the heap did work).
            note_dealloc(layout.size() as u64);
            note_alloc(new_size as u64);
        }
        p
    }
}

/// Whether any allocation has routed through [`TrackingAlloc`] — i.e.
/// whether the running binary declared it as `#[global_allocator]`.
#[must_use]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Point-in-time heap counters maintained by [`TrackingAlloc`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_bytes: u64,
    /// Cumulative bytes ever allocated.
    pub total_bytes: u64,
    /// Cumulative allocation calls.
    pub alloc_calls: u64,
    /// Cumulative deallocation calls.
    pub dealloc_calls: u64,
}

/// Reads the process-wide heap counters. All zeros when the tracking
/// allocator is not [`installed`].
#[must_use]
pub fn stats() -> AllocStats {
    AllocStats {
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        alloc_calls: ALLOC_CALLS.load(Ordering::Relaxed),
        dealloc_calls: DEALLOC_CALLS.load(Ordering::Relaxed),
    }
}

/// Cumulative bytes the calling thread has allocated. Monotone — span
/// attribution diffs two reads rather than tracking live bytes, so frees
/// of another thread's buffers cannot produce negative spans.
#[must_use]
pub fn thread_allocated_bytes() -> u64 {
    THREAD_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// Cumulative allocation calls made by the calling thread.
#[must_use]
pub fn thread_alloc_calls() -> u64 {
    THREAD_CALLS.try_with(Cell::get).unwrap_or(0)
}

/// Resets the live-byte high-water mark to the current live figure, so a
/// steady-state phase can measure its own peak instead of inheriting
/// startup's.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Publishes the heap counters as gauges (`mem.heap.live_bytes`,
/// `mem.heap.peak_bytes`, `mem.heap.total_bytes`,
/// `mem.heap.alloc_calls`, `mem.heap.dealloc_calls`) when telemetry is
/// enabled and the allocator is installed.
pub fn publish_gauges() {
    if !crate::enabled() || !installed() {
        return;
    }
    let s = stats();
    let reg = crate::metrics::global();
    reg.gauge("mem.heap.live_bytes").set(s.live_bytes as f64);
    reg.gauge("mem.heap.peak_bytes").set(s.peak_bytes as f64);
    reg.gauge("mem.heap.total_bytes").set(s.total_bytes as f64);
    reg.gauge("mem.heap.alloc_calls").set(s.alloc_calls as f64);
    reg.gauge("mem.heap.dealloc_calls").set(s.dealloc_calls as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The telemetry crate's own unit-test binary does not install the
    // tracking allocator (a program has exactly one global allocator and
    // the declaration belongs to downstream bins), so these tests cover
    // the bookkeeping functions directly; end-to-end accounting under a
    // real `#[global_allocator]` lives in the workspace integration
    // tests.

    /// Serializes tests that touch the process-wide counters.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn note_alloc_dealloc_round_trip() {
        let _g = lock();
        let before = stats();
        note_alloc(1024);
        let mid = stats();
        assert!(mid.total_bytes >= before.total_bytes + 1024);
        assert!(mid.alloc_calls > before.alloc_calls);
        note_dealloc(1024);
        let after = stats();
        assert!(after.dealloc_calls > mid.dealloc_calls);
        assert!(installed(), "note_alloc marks the allocator observed");
    }

    #[test]
    fn thread_counters_are_cumulative_and_thread_local() {
        let _g = lock();
        let start = thread_allocated_bytes();
        note_alloc(512);
        assert_eq!(thread_allocated_bytes(), start + 512);
        let other = std::thread::spawn(|| {
            let t0 = thread_allocated_bytes();
            note_alloc(64);
            thread_allocated_bytes() - t0
        })
        .join()
        .expect("thread");
        assert_eq!(other, 64, "other thread counts only its own bytes");
        assert_eq!(thread_allocated_bytes(), start + 512, "peer thread did not bleed in");
        note_dealloc(512);
        assert_eq!(thread_allocated_bytes(), start + 512, "frees do not decrement");
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let _g = lock();
        note_alloc(4096);
        note_dealloc(4096);
        reset_peak();
        let s = stats();
        assert_eq!(s.peak_bytes, s.live_bytes);
    }
}
