//! Hierarchical spans with thread-local nesting and monotonic timing.
//!
//! A [`Span`] always measures wall time (so callers can populate existing
//! report structs from it even with telemetry disabled); when telemetry is
//! enabled it additionally pushes itself onto a thread-local stack — giving
//! every span a `parent/child` path — and, on completion, records a
//! [`SpanEvent`](crate::trace::SpanEvent) into the global trace buffer and
//! its duration into the histogram named after the span.
//!
//! When the [tracking allocator](crate::alloc) is installed, each tracked
//! span also snapshots the opening thread's cumulative allocation counter
//! as the last step of opening and diffs it as the first step of closing,
//! so `SpanEvent::alloc_bytes` reports exactly the bytes the wrapped code
//! allocated on that thread — the span's own bookkeeping (path `String`,
//! trace-ring insertion) lands outside the measurement window and is
//! attributed to the parent.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::trace;

thread_local! {
    /// Paths of the currently open spans on this thread.
    static SPAN_PATHS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// Dense per-thread id for trace attribution (ThreadId lacks a stable
    /// integer form).
    static THREAD_SEQ: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// The dense trace id of the calling thread.
pub(crate) fn thread_seq() -> u64 {
    THREAD_SEQ.with(|&id| id)
}

/// An open span. Close it with [`Span::finish`] to obtain the measured
/// duration, or let it drop (the trace still records it).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    /// `Some(depth)` when this span was pushed onto the thread stack
    /// (telemetry was enabled at creation).
    tracked_depth: Option<usize>,
    /// Globally unique span id (0 when untracked) — carried in wire
    /// frames so remote spans can parent under this one.
    id: u64,
    /// Remote trace context installed on this thread when the span
    /// opened; stamped onto the recorded event at close.
    ctx: Option<trace::TraceContext>,
    /// Opening thread's cumulative `(bytes, calls)` allocation counters,
    /// snapshotted after all open-time bookkeeping so the close-time diff
    /// covers only the wrapped code.
    alloc_at_open: (u64, u64),
    finished: bool,
}

/// Opens a span. Prefer [`crate::span`].
pub(crate) fn open(name: &'static str) -> Span {
    let (tracked_depth, id, ctx) = if crate::enabled() {
        let depth = SPAN_PATHS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_owned(),
            };
            stack.push(path);
            stack.len() - 1
        });
        (Some(depth), trace::next_span_id(), trace::remote_context())
    } else {
        (None, 0, None)
    };
    // Snapshot the allocation counters last — the path push above
    // allocates, and that must bill to the parent span, not this one.
    let alloc_at_open =
        (crate::alloc::thread_allocated_bytes(), crate::alloc::thread_alloc_calls());
    Span { name, start: Instant::now(), tracked_depth, id, ctx, alloc_at_open, finished: false }
}

impl Span {
    /// The span name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The globally unique id of this span, or 0 if telemetry was
    /// disabled when it opened. Put it in a
    /// [`TraceContext`](trace::TraceContext)'s `parent_span` to parent
    /// remote spans under this one.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Wall time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Bytes the calling thread has allocated since this span opened.
    /// Meaningful only on the thread that opened the span and only when
    /// the [tracking allocator](crate::alloc) is installed (0 otherwise).
    pub fn alloc_bytes(&self) -> u64 {
        crate::alloc::thread_allocated_bytes().saturating_sub(self.alloc_at_open.0)
    }

    /// Closes the span and returns its duration. Recording (trace event +
    /// duration histogram) happens only if telemetry was enabled when the
    /// span opened.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        // Diff the allocation counters before the duration read and all
        // close-time bookkeeping, so only the wrapped code is measured.
        let alloc_bytes =
            crate::alloc::thread_allocated_bytes().saturating_sub(self.alloc_at_open.0);
        let alloc_calls = crate::alloc::thread_alloc_calls().saturating_sub(self.alloc_at_open.1);
        let dur = self.start.elapsed();
        if self.finished {
            return dur;
        }
        self.finished = true;
        if let Some(depth) = self.tracked_depth.take() {
            let path = SPAN_PATHS.with(|stack| {
                let mut stack = stack.borrow_mut();
                // RAII guarantees LIFO order on a given thread; truncate
                // defensively in case an inner span leaked.
                stack.truncate(depth + 1);
                stack.pop().unwrap_or_else(|| self.name.to_owned())
            });
            crate::metrics::global().histogram(self.name).record(dur.as_nanos() as u64);
            if crate::alloc::installed() {
                // Per-span-name allocation histogram, only when the
                // tracking allocator is feeding real numbers.
                crate::metrics::global()
                    .histogram(&format!("{}.alloc_bytes", self.name))
                    .record(alloc_bytes);
            }
            trace::record_span(trace::SpanRecord {
                name: self.name,
                path,
                depth: depth as u32,
                thread: thread_seq(),
                start: self.start,
                dur,
                span_id: self.id,
                ctx: self.ctx,
                alloc_bytes,
                alloc_calls,
            });
        }
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_measures_without_telemetry() {
        // Enabled state is global; this test only relies on elapsed time
        // being measured regardless.
        let s = open("span_test_untracked");
        std::thread::sleep(Duration::from_millis(2));
        let d = s.finish();
        assert!(d >= Duration::from_millis(2));
    }

    #[test]
    fn nesting_produces_paths() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        {
            let _outer = open("span_test_outer");
            let inner = open("span_test_inner");
            inner.finish();
        }
        crate::set_enabled(false);
        let events = trace::drain_events();
        let inner =
            events.iter().find(|e| e.name == "span_test_inner").expect("inner event recorded");
        assert_eq!(inner.path, "span_test_outer/span_test_inner");
        assert_eq!(inner.depth, 1);
        let outer =
            events.iter().find(|e| e.name == "span_test_outer").expect("outer event recorded");
        assert_eq!(outer.path, "span_test_outer");
        assert_eq!(outer.depth, 0);
        assert!(outer.dur_ns >= inner.dur_ns, "outer encloses inner");
        // The duration histogram under the span name saw the same sample.
        assert!(crate::metrics::global().histogram("span_test_inner").count() >= 1);
    }

    #[test]
    fn tracked_spans_carry_ids_and_remote_context() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let ctx = trace::TraceContext { trace_id: 77, parent_span: 88, round: 1 };
        trace::set_remote_context(Some(ctx));
        trace::set_actor("client1");
        let outer = open("span_ctx_outer");
        let outer_id = outer.id();
        assert_ne!(outer_id, 0, "tracked spans get ids");
        let inner = open("span_ctx_inner");
        inner.finish();
        outer.finish();
        trace::set_remote_context(None);
        crate::set_enabled(false);
        let events = trace::drain_events();
        let outer = events.iter().find(|e| e.name == "span_ctx_outer").expect("outer");
        assert_eq!(outer.span_id, outer_id);
        assert_eq!(outer.trace_id, 77);
        assert_eq!(outer.remote_parent, 88, "depth-0 spans adopt the remote parent");
        assert_eq!(outer.actor.as_deref(), Some("client1"));
        let inner = events.iter().find(|e| e.name == "span_ctx_inner").expect("inner");
        assert_eq!(inner.trace_id, 77, "trace id flows to nested spans");
        assert_eq!(inner.remote_parent, 0, "nested spans parent locally via path");
        assert_ne!(inner.span_id, outer.span_id);
    }

    #[test]
    fn untracked_spans_have_no_id() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        assert_eq!(open("span_untracked_id").id(), 0);
    }

    #[test]
    fn concurrent_span_stacks_are_independent() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _a = open("span_race_a");
                        let b = open("span_race_b");
                        b.finish();
                    }
                });
            }
        });
        crate::set_enabled(false);
        let events = trace::drain_events();
        let bs: Vec<_> = events.iter().filter(|e| e.name == "span_race_b").collect();
        assert_eq!(bs.len(), 8 * 50);
        // Every b nests under exactly its own thread's a — never deeper,
        // never orphaned — proving the stacks are thread-local.
        for e in &bs {
            assert_eq!(e.path, "span_race_a/span_race_b");
            assert_eq!(e.depth, 1);
        }
        let a_threads: std::collections::BTreeSet<u64> =
            events.iter().filter(|e| e.name == "span_race_a").map(|e| e.thread).collect();
        assert_eq!(a_threads.len(), 8, "eight distinct threads recorded");
    }
}
