//! Global metrics registry: counters, gauges and log-bucketed histograms.
//!
//! All instruments are lock-free on the record path (relaxed atomics); the
//! registry itself takes a read lock only to resolve a name to an
//! instrument, and callers on hot paths can cache the returned `&'static`
//! handle. Names follow the `crate.component.op` convention documented in
//! DESIGN.md §7.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Sub-bucket resolution of the histogram: each power-of-two octave is
/// split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantile error at `2^-SUB_BITS` (6.25%).
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Values below `2 * SUBS` get one exact bucket each; octaves 5..=63
/// contribute `SUBS` buckets apiece.
const BUCKETS: usize = 2 * SUBS + (63 - SUB_BITS as usize) * SUBS;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    const fn new() -> Self {
        Gauge { bits: AtomicU64::new(0) }
    }

    /// Overwrites the gauge value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A log-linear histogram over `u64` samples (typically nanoseconds).
///
/// Samples below 32 land in exact unit-width buckets; larger samples land
/// in one of 16 linear sub-buckets per power-of-two octave, so quantile
/// answers are exact for small values and within 6.25% relative error
/// otherwise. Recording is a single relaxed `fetch_add` plus min/max
/// maintenance — safe and meaningful under concurrent writers.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample value.
    pub fn bucket_index(v: u64) -> usize {
        if v < (2 * SUBS) as u64 {
            return v as usize;
        }
        let e = 63 - v.leading_zeros(); // 2^e <= v < 2^(e+1), e >= 5
        let sub = ((v >> (e - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        (e as usize - SUB_BITS as usize) * SUBS + SUBS + sub
    }

    /// Inclusive lower bound of a bucket (the value `quantile` reports).
    pub fn bucket_lower_bound(idx: usize) -> u64 {
        if idx < 2 * SUBS {
            return idx as u64;
        }
        let e = (idx / SUBS + SUB_BITS as usize - 1) as u32;
        let sub = (idx % SUBS) as u64;
        (SUBS as u64 + sub) << (e - SUB_BITS)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wraps only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX if self.count() == 0 => None,
            v => Some(v),
        }
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Mean of recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        match self.count() {
            0 => None,
            n => Some(self.sum() as f64 / n as f64),
        }
    }

    /// Inclusive upper bound of a bucket (the largest value that lands in
    /// it). The final bucket absorbs everything up to `u64::MAX`.
    pub fn bucket_upper_bound(idx: usize) -> u64 {
        if idx + 1 >= BUCKETS {
            u64::MAX
        } else {
            Self::bucket_lower_bound(idx + 1) - 1
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, sample count)` pairs
    /// in ascending bound order — the sparse form exposition renderers
    /// turn into cumulative `_bucket` series.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(idx, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_upper_bound(idx), n))
            })
            .collect()
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the lower bound of the bucket
    /// containing the sample of rank `ceil(q·count)`. Returns `None` for
    /// an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::bucket_lower_bound(idx));
            }
        }
        // Counts raced ahead of `count`; fall back to the max bucket seen.
        self.max()
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Registry name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Non-empty buckets as `(inclusive upper bound, sample count)` in
    /// ascending bound order (see [`Histogram::nonzero_buckets`]).
    pub buckets: Vec<(u64, u64)>,
}

/// Point-in-time snapshot of every registered instrument.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, name-sorted.
    pub histograms: Vec<HistogramSummary>,
}

/// Maximum distinct label values per `(family, label)` pair. The
/// registry is name-keyed and interns names forever, so unbounded label
/// values (e.g. a `client_id` in a 10k-client federation) would leak
/// memory and blow up `/metrics`; past the cap, values fold into one
/// `overflow` series and `telemetry.labels.overflow` counts the folds.
pub const LABEL_CARDINALITY_CAP: usize = 64;

/// The instrument registry. One global instance lives for the process
/// lifetime ([`global`]); separate instances exist only for tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, &'static Counter>>,
    gauges: RwLock<BTreeMap<&'static str, &'static Gauge>>,
    histograms: RwLock<BTreeMap<&'static str, &'static Histogram>>,
    /// Admitted label values per `(family, label)` pair, enforcing
    /// [`LABEL_CARDINALITY_CAP`].
    label_values: RwLock<BTreeMap<String, std::collections::BTreeSet<String>>>,
}

/// Looks up or creates an instrument. Names seen for the first time are
/// interned (leaked) — the set of metric names is small and static.
macro_rules! get_or_insert {
    ($map:expr, $name:expr, $make:expr) => {{
        if let Some(&v) = $map.read().expect("registry lock").get($name) {
            return v;
        }
        let mut w = $map.write().expect("registry lock");
        if let Some(&v) = w.get($name) {
            return v;
        }
        let key: &'static str = Box::leak($name.to_owned().into_boxed_str());
        let value = Box::leak(Box::new($make));
        w.insert(key, value);
        value
    }};
}

impl Registry {
    /// Creates an empty registry (prefer [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves a counter by name, creating it on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        get_or_insert!(self.counters, name, Counter::new())
    }

    /// Resolves a gauge by name, creating it on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        get_or_insert!(self.gauges, name, Gauge::new())
    }

    /// Resolves a histogram by name, creating it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        get_or_insert!(self.histograms, name, Histogram::new())
    }

    /// Builds the interned series name `family{label="value"}` for a
    /// labeled instrument, admitting at most [`LABEL_CARDINALITY_CAP`]
    /// distinct values per `(family, label)` pair. Values past the cap
    /// fold into `family{label="overflow"}` (and bump
    /// `telemetry.labels.overflow`); quotes and backslashes in the value
    /// are escaped so the name stays valid Prometheus exposition.
    pub fn labeled_series(&self, family: &str, label: &str, value: &str) -> String {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        let key = format!("{family}\u{1}{label}");
        let admitted = {
            let seen = self.label_values.read().expect("label lock");
            seen.get(&key).is_some_and(|set| set.contains(&escaped))
        };
        let value = if admitted {
            escaped
        } else {
            let mut seen = self.label_values.write().expect("label lock");
            let set = seen.entry(key).or_default();
            if set.contains(&escaped) || set.len() < LABEL_CARDINALITY_CAP {
                set.insert(escaped.clone());
                escaped
            } else {
                drop(seen);
                self.counter("telemetry.labels.overflow").inc();
                "overflow".to_owned()
            }
        };
        format!("{family}{{{label}=\"{value}\"}}")
    }

    /// Resolves a labeled counter (`family{label="value"}`), subject to
    /// the cardinality guard of [`Registry::labeled_series`].
    pub fn counter_labeled(&self, family: &str, label: &str, value: &str) -> &'static Counter {
        self.counter(&self.labeled_series(family, label, value))
    }

    /// Resolves a labeled histogram (`family{label="value"}`), subject to
    /// the cardinality guard of [`Registry::labeled_series`].
    pub fn histogram_labeled(&self, family: &str, label: &str, value: &str) -> &'static Histogram {
        self.histogram(&self.labeled_series(family, label, value))
    }

    /// Snapshots every instrument, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(&n, c)| (n.to_owned(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(&n, g)| (n.to_owned(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(&n, h)| HistogramSummary {
                name: n.to_owned(),
                count: h.count(),
                sum: h.sum(),
                min: h.min().unwrap_or(0),
                max: h.max().unwrap_or(0),
                p50: h.quantile(0.5).unwrap_or(0),
                p90: h.quantile(0.9).unwrap_or(0),
                p99: h.quantile(0.99).unwrap_or(0),
                buckets: h.nonzero_buckets(),
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("test.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same instrument.
        assert_eq!(reg.counter("test.counter").get(), 5);
        let g = reg.gauge("test.gauge");
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(reg.gauge("test.gauge").get(), -2.5);
    }

    #[test]
    fn labeled_series_caps_cardinality() {
        let reg = Registry::new();
        for i in 0..LABEL_CARDINALITY_CAP {
            reg.counter_labeled("test.labeled", "client_id", &i.to_string()).inc();
        }
        // Values past the cap fold into the overflow series.
        reg.counter_labeled("test.labeled", "client_id", "way-too-many").add(3);
        reg.counter_labeled("test.labeled", "client_id", "another-one").add(2);
        assert_eq!(reg.counter(r#"test.labeled{client_id="0"}"#).get(), 1);
        assert_eq!(reg.counter(r#"test.labeled{client_id="overflow"}"#).get(), 5);
        assert_eq!(reg.counter("telemetry.labels.overflow").get(), 2);
        // Already-admitted values keep resolving to their own series.
        reg.counter_labeled("test.labeled", "client_id", "5").inc();
        assert_eq!(reg.counter(r#"test.labeled{client_id="5"}"#).get(), 2);
        // A different family gets its own budget.
        assert_eq!(
            reg.labeled_series("test.other", "client_id", "fresh"),
            r#"test.other{client_id="fresh"}"#
        );
    }

    #[test]
    fn labeled_series_escapes_values() {
        let reg = Registry::new();
        assert_eq!(reg.labeled_series("test.esc", "id", r#"a"b\c"#), r#"test.esc{id="a\"b\\c"}"#);
    }

    #[test]
    fn labeled_histogram_records_per_series() {
        let reg = Registry::new();
        reg.histogram_labeled("test.rtt", "client_id", "1").record(100);
        reg.histogram_labeled("test.rtt", "client_id", "2").record(200);
        assert_eq!(reg.histogram(r#"test.rtt{client_id="1"}"#).count(), 1);
        assert_eq!(reg.histogram(r#"test.rtt{client_id="2"}"#).sum(), 200);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_single_sample() {
        let h = Histogram::new();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(7));
        // 7 < 32 lives in an exact bucket: every quantile is exact.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7), "q = {q}");
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_below_32() {
        for v in 0..32u64 {
            let idx = Histogram::bucket_index(v);
            assert_eq!(idx, v as usize);
            assert_eq!(Histogram::bucket_lower_bound(idx), v);
        }
    }

    #[test]
    fn bucket_boundaries_at_octave_edges() {
        // Exactly at a power of two: first sub-bucket of the octave.
        for e in 5..63u32 {
            let v = 1u64 << e;
            let idx = Histogram::bucket_index(v);
            assert_eq!(Histogram::bucket_lower_bound(idx), v, "2^{e}");
            // One below the power of two: last sub-bucket of the previous
            // octave; lower bound within one sub-bucket width.
            let idx_prev = Histogram::bucket_index(v - 1);
            assert_eq!(idx_prev, idx - 1, "2^{e} - 1 sits in the previous bucket");
            let lb = Histogram::bucket_lower_bound(idx_prev);
            assert!(lb < v && (v - 1 - lb) < (1u64 << (e - 1 - SUB_BITS)) + 1);
        }
    }

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut vals: Vec<u64> = (0..4096).collect();
        for e in 12..64u32 {
            for off in [0u64, 1, 3] {
                vals.push((1u64 << e).saturating_add(off << (e - 5)));
            }
        }
        vals.push(u64::MAX);
        vals.sort_unstable();
        let mut last = 0usize;
        for v in vals {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last, "index must not decrease: v = {v}");
            assert!(idx < BUCKETS, "index {idx} out of range for v = {v}");
            last = idx;
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_on_uniform_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Log-bucketing guarantees <= 6.25% relative error.
        assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.07, "p50 = {p50}");
        assert!((p90 as f64 - 900.0).abs() / 900.0 < 0.07, "p90 = {p90}");
        assert!((p99 as f64 - 990.0).abs() / 990.0 < 0.07, "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let h = Histogram::new();
        let _ = h.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_negative() {
        let h = Histogram::new();
        h.record(1);
        let _ = h.quantile(-0.1);
    }

    #[test]
    fn quantile_extremes_hit_min_and_max_buckets() {
        let h = Histogram::new();
        for v in [3u64, 9, 27] {
            h.record(v);
        }
        // q = 0 clamps the rank to the first sample, q = 1 to the last;
        // all three samples sit in exact (< 32) buckets.
        assert_eq!(h.quantile(0.0), Some(3));
        assert_eq!(h.quantile(1.0), Some(27));
    }

    #[test]
    fn bucket_upper_bounds_tile_the_axis() {
        // Every bucket's upper bound is one below the next lower bound,
        // so the buckets partition [0, u64::MAX] with no gaps.
        for idx in 0..BUCKETS - 1 {
            assert_eq!(
                Histogram::bucket_upper_bound(idx),
                Histogram::bucket_lower_bound(idx + 1) - 1
            );
        }
        assert_eq!(Histogram::bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn nonzero_buckets_are_sparse_and_complete() {
        let h = Histogram::new();
        assert!(h.nonzero_buckets().is_empty());
        h.record(7);
        h.record(7);
        h.record(100);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (7, 2)); // exact bucket below 32
        let (ub, n) = buckets[1];
        assert!(ub >= 100 && n == 1);
        assert_eq!(buckets.iter().map(|&(_, n)| n).sum::<u64>(), h.count());
    }

    #[test]
    fn snapshot_collects_everything() {
        let reg = Registry::new();
        reg.counter("a.count").add(3);
        reg.gauge("b.gauge").set(1.5);
        reg.histogram("c.hist").record(10);
        reg.histogram("c.hist").record(20);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a.count".to_owned(), 3)]);
        assert_eq!(snap.gauges, vec![("b.gauge".to_owned(), 1.5)]);
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!((h.name.as_str(), h.count, h.sum, h.min, h.max), ("c.hist", 2, 30, 10, 20));
        assert_eq!(h.p50, 10);
        assert_eq!(h.p99, 20);
    }

    #[test]
    fn concurrent_counters_and_histograms_lose_nothing() {
        let reg = std::sync::Arc::new(Registry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let reg = &reg;
                s.spawn(move || {
                    let c = reg.counter("race.counter");
                    let h = reg.histogram("race.hist");
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record((t as u64) * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(reg.counter("race.counter").get(), THREADS as u64 * PER_THREAD);
        let h = reg.histogram("race.hist");
        assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
        let n = THREADS as u64 * PER_THREAD;
        assert_eq!(h.sum(), n * (n - 1) / 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(n - 1));
    }
}
