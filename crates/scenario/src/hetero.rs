//! Device heterogeneity: per-client speed multipliers plus a straggler
//! deadline. A client misses a round when its simulated round time —
//! speed multiplier times a pre-drawn per-round jitter — exceeds the
//! deadline, mirroring the net server's wall-clock straggler cut-off
//! without introducing wall-clock nondeterminism.

/// Per-client relative round times (1.0 = nominal hardware).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    speeds: Vec<f64>,
}

impl DeviceProfile {
    /// All `clients` run at nominal speed.
    pub fn uniform(clients: usize) -> DeviceProfile {
        DeviceProfile { speeds: vec![1.0; clients] }
    }

    /// Speeds spread linearly from `fastest` to `slowest` across client
    /// ids — the archetypal heterogeneous fleet (id 0 the flagship
    /// phone, the last id the museum piece).
    pub fn linear(clients: usize, fastest: f64, slowest: f64) -> DeviceProfile {
        let speeds = (0..clients)
            .map(|i| {
                if clients <= 1 {
                    fastest
                } else {
                    fastest + (slowest - fastest) * i as f64 / (clients - 1) as f64
                }
            })
            .collect();
        DeviceProfile { speeds }
    }

    /// Explicit per-client multipliers.
    pub fn explicit(speeds: Vec<f64>) -> DeviceProfile {
        DeviceProfile { speeds }
    }

    /// The multiplier for `client` (nominal for ids beyond the profile).
    pub fn speed(&self, client: usize) -> f64 {
        self.speeds.get(client).copied().unwrap_or(1.0)
    }

    /// Number of profiled clients.
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    /// Whether `client` would miss a round given its pre-drawn jitter
    /// fraction for that round and the straggler `deadline` (in nominal
    /// round-time units).
    pub fn misses(&self, client: usize, jitter: f64, deadline: f64) -> bool {
        self.speed(client) * (1.0 + jitter) > deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_spread() {
        let p = DeviceProfile::linear(3, 1.0, 3.0);
        assert_eq!(p.speed(0), 1.0);
        assert_eq!(p.speed(1), 2.0);
        assert_eq!(p.speed(2), 3.0);
        assert_eq!(p.speed(99), 1.0, "unprofiled clients run nominal");
    }

    #[test]
    fn straggler_misses_deadline() {
        let p = DeviceProfile::linear(4, 1.0, 4.0);
        // Deadline 2.5: clients at speed 3.0 and 4.0 miss with zero jitter.
        assert!(!p.misses(0, 0.0, 2.5));
        assert!(!p.misses(1, 0.0, 2.5));
        assert!(p.misses(2, 0.0, 2.5));
        assert!(p.misses(3, 0.0, 2.5));
        // Jitter can push a borderline client over.
        assert!(p.misses(1, 0.3, 2.5));
    }
}
