//! Executes a compiled scenario against the in-process [`Framework`]
//! via its [`RoundHooks`] seams, and exercises threshold-CKKS dropout
//! recovery whenever the churn trace drops a keyholder.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rhychee_telemetry as telemetry;

use rhychee_core::error::FlError;
use rhychee_core::framework::{Framework, RoundHooks, RoundReport};
use rhychee_core::packing;
use rhychee_data::TrainTest;
use rhychee_fhe::ckks::threshold::ThresholdGroup;
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::params::CkksParams;

use crate::defense::{self, Defense};
use crate::spec::{CompiledScenario, ScenarioSpec};

/// Salt for the threshold-CKKS key ceremony and recovery encryptions
/// (kept apart from the framework's sampling and key streams).
const THRESHOLD_SALT: u64 = 0x7E5D_0123_C0DE_9A17;

/// What happened when a scenario ran: per-round accuracy plus the
/// perturbation ledger.
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    /// Per-round framework reports, in order.
    pub rounds: Vec<RoundReport>,
    /// Accuracy after the final round.
    pub final_accuracy: f64,
    /// Attacker client ids this run (fixed at compile time).
    pub attackers: Vec<usize>,
    /// Total corrupted uploads across the run.
    pub attacks_injected: u64,
    /// Total updates rescaled by the norm-clip defense.
    pub updates_clipped: u64,
    /// Total churn transitions (departures + rejoins) that took effect.
    pub clients_churned: u64,
    /// Updates lost to straggler deadlines.
    pub stragglers_dropped: u64,
    /// Successful threshold decryptions after a keyholder departure.
    pub threshold_recoveries: u64,
    /// Departure rounds where the surviving quorum was below `k` and
    /// recovery was refused (the missing-share error path).
    pub recovery_failures: u64,
    /// Worst slot error across all threshold recoveries.
    pub recovery_max_err: f64,
}

/// Shared mutable ledger the hook closures write into.
#[derive(Debug, Default)]
struct Ledger {
    attacks: u64,
    clipped: u64,
    churned: u64,
    straggled: u64,
}

/// Runs `spec` over `data` to completion.
///
/// The run is a pure function of `(spec, data)`: every random decision
/// is pre-drawn by [`ScenarioSpec::compile`] or derived from the run
/// seed inside the framework, so two invocations — at any
/// `Parallelism` degree — produce bit-identical reports.
///
/// # Errors
///
/// Propagates [`FlError`] from the framework build, any round, or the
/// threshold-recovery encryptions.
pub fn run(spec: &ScenarioSpec, data: &TrainTest) -> Result<ScenarioReport, FlError> {
    let compiled = Rc::new(spec.compile());
    run_compiled(&compiled, data)
}

/// Runs an already-compiled scenario (see [`ScenarioSpec::compile`]).
///
/// # Errors
///
/// Propagates [`FlError`] as for [`run`].
pub fn run_compiled(
    compiled: &Rc<CompiledScenario>,
    data: &TrainTest,
) -> Result<ScenarioReport, FlError> {
    let spec = &compiled.spec;
    let mut fw = Framework::hdc_plaintext(spec.fl.clone(), data)?;
    let dim = fw.num_parameters();
    let ledger = Rc::new(RefCell::new(Ledger::default()));

    telemetry::gauge("fl.scenario.active", 1.0);
    telemetry::gauge("fl.scenario.attackers", compiled.attackers.len() as f64);

    let mut hooks = RoundHooks::default();

    // Presence: churn trace first, then straggler deadlines. Both are
    // table lookups into pre-drawn state — no live randomness.
    if !spec.churn.is_empty() || spec.devices.is_some() {
        let compiled = Rc::clone(compiled);
        let ledger = Rc::clone(&ledger);
        hooks.presence = Some(Box::new(move |round, ids: &mut Vec<usize>| {
            let spec = &compiled.spec;
            let mut ledger = ledger.borrow_mut();
            let transitions = spec.churn.transitions_at(round) as u64;
            if transitions > 0 {
                ledger.churned += transitions;
                telemetry::count("fl.scenario.clients_churned", transitions);
            }
            ids.retain(|&c| spec.churn.active(round, c));
            let before = ids.len();
            ids.retain(|&c| !compiled.straggles(round, c));
            let straggled = (before - ids.len()) as u64;
            if straggled > 0 {
                ledger.straggled += straggled;
                telemetry::count("fl.scenario.stragglers_dropped", straggled);
            }
        }));
    }

    // Updates tap: Byzantine corruption first (the attacker acts on its
    // own device, before upload), then the server-visible norm clip.
    let attack = spec.attack.map(|kind| kind.materialize(compiled.direction_seed, dim));
    if attack.is_some() || matches!(spec.defense, Defense::NormClip { .. }) {
        let compiled = Rc::clone(compiled);
        let ledger = Rc::clone(&ledger);
        hooks.updates_tap = Some(Box::new(move |round, updates| {
            let mut ledger = ledger.borrow_mut();
            if let Some(attack) = attack.as_deref() {
                for u in updates.iter_mut() {
                    if compiled.is_attacker(u.client_id) {
                        attack.corrupt(round, u.client_id, &mut u.payload);
                        ledger.attacks += 1;
                        telemetry::count("fl.scenario.attacks_injected", 1);
                    }
                }
            }
            if let Defense::NormClip { bound } = compiled.spec.defense {
                let resolved = defense::resolve_bound(bound, updates);
                let clipped = defense::clip_updates(updates, resolved);
                if clipped > 0 {
                    ledger.clipped += clipped;
                    telemetry::count("fl.scenario.updates_clipped", clipped);
                }
            }
        }));
    }

    // Aggregation override: coordinate-wise trimmed mean.
    if let Defense::CoordTrim { trim_ratio } = spec.defense {
        hooks.aggregate_override = Some(Box::new(move |_round, updates, _weights| {
            Some(defense::trimmed_mean(updates, trim_ratio))
        }));
    }

    fw.set_hooks(hooks);

    // Threshold-CKKS keyholders: the k-of-n ceremony runs up front so a
    // later departure cannot retroactively change the keys.
    let mut threshold = match spec.threshold_k {
        None => None,
        Some(k) => {
            let ctx = CkksContext::with_parallelism(CkksParams::toy(), spec.fl.parallelism)?;
            let mut rng = StdRng::seed_from_u64(spec.fl.seed ^ THRESHOLD_SALT);
            let group = ThresholdGroup::generate_kofn(&ctx, spec.fl.clients, k, &mut rng)
                .map_err(FlError::Fhe)?;
            Some((ctx, group, rng))
        }
    };

    let mut report =
        ScenarioReport { attackers: compiled.attackers.clone(), ..ScenarioReport::default() };

    for round in 0..spec.fl.rounds {
        report.rounds.push(fw.run_round()?);

        // A keyholder left this round: the surviving quorum must still
        // be able to open the encrypted global model.
        if let Some((ctx, group, rng)) = threshold.as_mut() {
            if !spec.churn.departures_at(round).is_empty() {
                let survivors: Vec<usize> =
                    (0..spec.fl.clients).filter(|&c| spec.churn.active(round, c)).collect();
                if survivors.len() < group.threshold() {
                    report.recovery_failures += 1;
                    telemetry::count("fl.scenario.threshold_recovery_failures", 1);
                } else {
                    let quorum = &survivors[..group.threshold()];
                    let flat = fw.global_model().flatten();
                    let cts = packing::encrypt_model(ctx, group.public_key(), &flat, rng)?;
                    let mut recovered = Vec::with_capacity(flat.len());
                    for ct in &cts {
                        let partials: Result<Vec<_>, _> = quorum
                            .iter()
                            .map(|&p| group.partial_decrypt_subset(ctx, p, quorum, ct, rng))
                            .collect();
                        let vals = group
                            .combine_checked(ctx, ct, &partials.map_err(FlError::Fhe)?)
                            .map_err(FlError::Fhe)?;
                        recovered.extend(vals);
                    }
                    let max_err = flat
                        .iter()
                        .zip(&recovered)
                        .map(|(&w, &r)| (f64::from(w) - r).abs())
                        .fold(0.0f64, f64::max);
                    report.recovery_max_err = report.recovery_max_err.max(max_err);
                    report.threshold_recoveries += 1;
                    telemetry::count("fl.scenario.threshold_recoveries", 1);
                }
            }
        }
    }

    report.final_accuracy = report.rounds.last().map_or(0.0, |r| r.accuracy);
    let ledger = ledger.borrow();
    report.attacks_injected = ledger.attacks;
    report.updates_clipped = ledger.clipped;
    report.clients_churned = ledger.churned;
    report.stragglers_dropped = ledger.straggled;
    telemetry::gauge("fl.scenario.active", 0.0);
    Ok(report)
}
