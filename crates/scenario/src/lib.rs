//! Rhychee-FL scenario engine: deterministic adversarial, churning,
//! heterogeneous federations.
//!
//! The paper's robustness claims are only measurable if the federation
//! can be put under stress *reproducibly*. This crate composes four
//! orthogonal perturbation layers over a seeded federated run:
//!
//! * **Byzantine clients** ([`attack`]): sign-flip, scaled-update, and
//!   colluding attackers mutate their plaintext updates before
//!   encryption, each an [`attack::Attack`] impl;
//! * **churn** ([`churn`]): declarative depart/rejoin traces drive the
//!   per-round participant set (and quorum reweighting);
//! * **device heterogeneity** ([`hetero`]): per-client speed
//!   multipliers plus pre-drawn jitter feed straggler deadlines;
//! * **defenses** ([`defense`]): norm-bound clipping and
//!   coordinate-wise trimmed mean on the server side, plus
//!   threshold-CKKS (k-of-n Shamir) dropout recovery when a keyholder
//!   departs ([`rhychee_fhe::ckks::threshold`]).
//!
//! A scenario is declared as a [`ScenarioSpec`] seeded from the
//! [`FlConfig`](rhychee_core::FlConfig) and compiled into a
//! [`CompiledScenario`] whose every random decision — attacker
//! identities, collusion direction, straggler jitter — is pre-drawn
//! before the first round (the preassigned-slot discipline of
//! DESIGN.md §8/§13). Running it ([`run`]) is then a pure function of
//! the compiled scenario and the dataset: two runs, at any
//! `Parallelism` degree, produce bit-identical [`ScenarioReport`]s.
//!
//! # Examples
//!
//! ```
//! use rhychee_core::FlConfig;
//! use rhychee_data::{DatasetKind, SyntheticConfig};
//! use rhychee_scenario::{AttackKind, ClipBound, Defense, ScenarioSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SyntheticConfig::small(DatasetKind::Har).generate(3)?;
//! let fl = FlConfig::builder().clients(5).rounds(2).hd_dim(256).seed(7).build()?;
//! let spec = ScenarioSpec::new(fl)
//!     .with_attack(AttackKind::SignFlip { scale: 10.0 }, 0.2)
//!     .with_defense(Defense::NormClip { bound: ClipBound::Median });
//! let report = rhychee_scenario::run(&spec, &data)?;
//! assert_eq!(report.attackers.len(), 1);
//! assert!(report.attacks_injected > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod attack;
pub mod churn;
pub mod defense;
pub mod hetero;
pub mod runner;
pub mod spec;

pub use attack::{Attack, AttackKind, Colluding, ScaledUpdate, SignFlip};
pub use churn::{ChurnEvent, ChurnTrace};
pub use defense::{ClipBound, Defense};
pub use hetero::DeviceProfile;
pub use runner::{run, run_compiled, ScenarioReport};
pub use spec::{CompiledScenario, ScenarioSpec};
