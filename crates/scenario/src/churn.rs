//! Client churn traces: declarative arrival / departure / rejoin
//! schedules. A trace is data, not randomness — the same trace replays
//! the same presence pattern on every run and on both the in-process
//! `Framework` and the `rhychee-net` server.

/// One presence transition in a churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The client leaves the federation at the start of `round`.
    Depart {
        /// Round (0-based) the departure takes effect.
        round: usize,
        /// Departing client id.
        client: usize,
    },
    /// The client rejoins at the start of `round`.
    Rejoin {
        /// Round (0-based) the rejoin takes effect.
        round: usize,
        /// Rejoining client id.
        client: usize,
    },
}

impl ChurnEvent {
    fn round(&self) -> usize {
        match *self {
            ChurnEvent::Depart { round, .. } | ChurnEvent::Rejoin { round, .. } => round,
        }
    }

    fn client(&self) -> usize {
        match *self {
            ChurnEvent::Depart { client, .. } | ChurnEvent::Rejoin { client, .. } => client,
        }
    }
}

/// An ordered schedule of churn events. Every client starts present;
/// the latest event at or before a round decides its presence.
#[derive(Debug, Clone, Default)]
pub struct ChurnTrace {
    events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// An empty trace: everyone stays for the whole run.
    pub fn new() -> ChurnTrace {
        ChurnTrace::default()
    }

    /// Schedules a departure at the start of `round`.
    #[must_use]
    pub fn depart(mut self, round: usize, client: usize) -> ChurnTrace {
        self.events.push(ChurnEvent::Depart { round, client });
        self
    }

    /// Schedules a rejoin at the start of `round`.
    #[must_use]
    pub fn rejoin(mut self, round: usize, client: usize) -> ChurnTrace {
        self.events.push(ChurnEvent::Rejoin { round, client });
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Whether the trace has any events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `client` is present in `round`: the latest event at or
    /// before `round` wins; ties at the same round resolve in insertion
    /// order (a depart+rejoin scheduled for the same round nets out to
    /// the later entry).
    pub fn active(&self, round: usize, client: usize) -> bool {
        let mut present = true;
        for e in &self.events {
            if e.client() == client && e.round() <= round {
                present = matches!(e, ChurnEvent::Rejoin { .. });
            }
        }
        present
    }

    /// Number of presence transitions taking effect exactly at `round`
    /// (feeds the `fl.scenario.clients_churned` counter).
    pub fn transitions_at(&self, round: usize) -> usize {
        self.events.iter().filter(|e| e.round() == round).count()
    }

    /// Clients with a departure taking effect exactly at `round` — the
    /// keyholders whose loss triggers threshold recovery.
    pub fn departures_at(&self, round: usize) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                ChurnEvent::Depart { round: r, client } if r == round => Some(client),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_present_by_default() {
        let t = ChurnTrace::new();
        assert!(t.active(0, 0));
        assert!(t.active(100, 7));
    }

    #[test]
    fn depart_then_rejoin() {
        let t = ChurnTrace::new().depart(2, 1).rejoin(4, 1);
        assert!(t.active(0, 1));
        assert!(t.active(1, 1));
        assert!(!t.active(2, 1));
        assert!(!t.active(3, 1));
        assert!(t.active(4, 1), "client 1 is back from round 4");
        assert!(t.active(9, 1));
        // Other clients are untouched.
        assert!(t.active(3, 0));
    }

    #[test]
    fn transition_counts() {
        let t = ChurnTrace::new().depart(1, 0).depart(1, 2).rejoin(3, 0);
        assert_eq!(t.transitions_at(0), 0);
        assert_eq!(t.transitions_at(1), 2);
        assert_eq!(t.transitions_at(3), 1);
        assert_eq!(t.departures_at(1), vec![0, 2]);
        assert!(t.departures_at(3).is_empty());
    }
}
