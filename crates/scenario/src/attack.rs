//! Byzantine client behaviors: each attack mutates the plaintext update
//! *before* it would be encrypted, exactly where a compromised client
//! sits in the real pipeline (the server never sees plaintext uploads).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Byzantine client's corruption of its own model update.
///
/// Implementations must be pure functions of `(round, client_id,
/// update)` plus construction-time state, so a scenario replays
/// bit-identically.
pub trait Attack {
    /// Short name for reports and telemetry labels.
    fn name(&self) -> &'static str;

    /// Corrupts `update` in place.
    fn corrupt(&self, round: usize, client_id: usize, update: &mut [f32]);
}

/// Flip-and-amplify: `w ← −scale·w`.
///
/// The classic sign-flip attack on HDC class-hypervectors (Federated
/// Hyperdimensional Computing, PAPERS.md) amplified by `scale`, which
/// both maximizes damage to the FedAvg numerator and makes the attack
/// norm-visible — the regime where norm-bound clipping is the
/// documented defense.
#[derive(Debug, Clone, Copy)]
pub struct SignFlip {
    /// Amplification applied on top of the sign flip.
    pub scale: f32,
}

impl Attack for SignFlip {
    fn name(&self) -> &'static str {
        "sign_flip"
    }

    fn corrupt(&self, _round: usize, _client_id: usize, update: &mut [f32]) {
        for w in update {
            *w *= -self.scale;
        }
    }
}

/// Scaled-update (model boosting): `w ← factor·w`.
///
/// Keeps the honest direction but inflates its weight, dragging the
/// average toward one client's local distribution.
#[derive(Debug, Clone, Copy)]
pub struct ScaledUpdate {
    /// Multiplicative boost.
    pub factor: f32,
}

impl Attack for ScaledUpdate {
    fn name(&self) -> &'static str {
        "scaled_update"
    }

    fn corrupt(&self, _round: usize, _client_id: usize, update: &mut [f32]) {
        for w in update {
            *w *= self.factor;
        }
    }
}

/// Colluding attackers: every attacker replaces its update with the
/// *same* pre-drawn malicious direction, scaled to `scale ×` its own
/// honest norm.
///
/// Collusion is what defeats per-client heuristics — the corrupted
/// updates agree with each other, so they look like a consistent
/// (wrong) consensus rather than independent outliers.
#[derive(Debug, Clone)]
pub struct Colluding {
    direction: Vec<f32>,
    scale: f32,
}

impl Colluding {
    /// Draws the shared unit-norm direction for a `dim`-parameter model
    /// from `seed` (part of the scenario's pre-draw discipline: the
    /// direction is fixed before the run starts).
    pub fn new(seed: u64, dim: usize, scale: f32) -> Colluding {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut direction: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = direction.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut direction {
                *v /= norm;
            }
        }
        Colluding { direction, scale }
    }
}

impl Attack for Colluding {
    fn name(&self) -> &'static str {
        "colluding"
    }

    fn corrupt(&self, _round: usize, _client_id: usize, update: &mut [f32]) {
        let norm = update.iter().map(|v| v * v).sum::<f32>().sqrt();
        let target = self.scale * norm.max(1.0);
        for (w, d) in update.iter_mut().zip(&self.direction) {
            *w = target * d;
        }
    }
}

/// Declarative attack selection inside a `ScenarioSpec`; materialized
/// into an [`Attack`] once the model dimension is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackKind {
    /// [`SignFlip`] with the given amplification.
    SignFlip {
        /// Amplification applied on top of the sign flip.
        scale: f32,
    },
    /// [`ScaledUpdate`] with the given boost.
    ScaledUpdate {
        /// Multiplicative boost.
        factor: f32,
    },
    /// [`Colluding`] with the given norm multiple.
    Colluding {
        /// Norm multiple of the shared malicious direction.
        scale: f32,
    },
}

impl AttackKind {
    /// Builds the concrete attack for a `dim`-parameter model;
    /// `direction_seed` feeds the colluders' shared direction.
    pub fn materialize(self, direction_seed: u64, dim: usize) -> Box<dyn Attack> {
        match self {
            AttackKind::SignFlip { scale } => Box::new(SignFlip { scale }),
            AttackKind::ScaledUpdate { factor } => Box::new(ScaledUpdate { factor }),
            AttackKind::Colluding { scale } => Box::new(Colluding::new(direction_seed, dim, scale)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_flip_flips_and_amplifies() {
        let mut w = vec![1.0f32, -2.0];
        SignFlip { scale: 10.0 }.corrupt(0, 0, &mut w);
        assert_eq!(w, vec![-10.0, 20.0]);
    }

    #[test]
    fn scaled_update_preserves_direction() {
        let mut w = vec![1.0f32, -2.0];
        ScaledUpdate { factor: 5.0 }.corrupt(0, 0, &mut w);
        assert_eq!(w, vec![5.0, -10.0]);
    }

    #[test]
    fn colluders_agree_with_each_other() {
        let attack = Colluding::new(7, 16, 3.0);
        let mut a = vec![1.0f32; 16];
        let mut b = vec![-0.5f32; 16];
        attack.corrupt(0, 0, &mut a);
        attack.corrupt(0, 1, &mut b);
        // Same direction: cosine similarity of the corrupted updates is 1.
        let dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let na = a.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb = b.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((dot / (na * nb) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn colluding_direction_is_seed_deterministic() {
        let a = Colluding::new(9, 8, 2.0);
        let b = Colluding::new(9, 8, 2.0);
        let mut u = vec![1.0f32; 8];
        let mut v = vec![1.0f32; 8];
        a.corrupt(3, 1, &mut u);
        b.corrupt(3, 1, &mut v);
        assert_eq!(u, v);
    }
}
