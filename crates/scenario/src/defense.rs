//! Server-side Byzantine defenses over HDC class-hypervector updates.
//!
//! Both defenses are order statistics over the round's update batch, so
//! they run where the server can see plaintext — the plaintext pipeline
//! here, or post-decryption in a trusted-aggregator deployment. Under
//! CKKS the server cannot evaluate them homomorphically; quantifying
//! that robustness/privacy gap is one of the scenario engine's jobs.

use rhychee_core::round::ClientUpdate;

/// The clipping bound for [`Defense::NormClip`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClipBound {
    /// Clip to the median of the round's update L2 norms — self-tuning
    /// and robust as long as attackers are a minority.
    Median,
    /// Clip to a fixed L2 norm.
    Fixed(f32),
}

/// A server-side defense applied to the round's updates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Defense {
    /// No defense: plain FedAvg over whatever arrives.
    #[default]
    None,
    /// Rescale every update whose L2 norm exceeds the bound down to it.
    NormClip {
        /// How the bound is chosen.
        bound: ClipBound,
    },
    /// Coordinate-wise trimmed mean: drop the `trim_ratio` fraction of
    /// extreme values at each end per coordinate, average the rest.
    CoordTrim {
        /// Fraction trimmed from *each* end (0.0 ≤ r < 0.5).
        trim_ratio: f64,
    },
}

/// L2 norm of a flat update.
fn l2(update: &[f32]) -> f32 {
    update.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Resolves the clipping bound over the round's batch. Median is taken
/// over updates in client-id order (the order `ServerRound` keeps), so
/// the result is arrival-order invariant.
pub fn resolve_bound(bound: ClipBound, updates: &[ClientUpdate<Vec<f32>>]) -> f32 {
    match bound {
        ClipBound::Fixed(b) => b,
        ClipBound::Median => {
            let mut norms: Vec<f32> = updates.iter().map(|u| l2(&u.payload)).collect();
            norms.sort_by(f32::total_cmp);
            if norms.is_empty() {
                0.0
            } else {
                norms[norms.len() / 2]
            }
        }
    }
}

/// Clips every update above `bound` down to it; returns how many were
/// clipped (feeds `fl.scenario.updates_clipped`).
pub fn clip_updates(updates: &mut [ClientUpdate<Vec<f32>>], bound: f32) -> u64 {
    let mut clipped = 0;
    for u in updates.iter_mut() {
        let norm = l2(&u.payload);
        if norm > bound && norm > 0.0 {
            let s = bound / norm;
            for w in &mut u.payload {
                *w *= s;
            }
            clipped += 1;
        }
    }
    clipped
}

/// Coordinate-wise trimmed mean over the batch: for each coordinate,
/// sort the per-client values, drop `trim` from each end, average the
/// rest. With `trim = 0` this degenerates to the unweighted mean.
pub fn trimmed_mean(updates: &[ClientUpdate<Vec<f32>>], trim_ratio: f64) -> Vec<f32> {
    let n = updates.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = updates[0].payload.len();
    // Trim at most enough to keep one value.
    let trim = ((n as f64 * trim_ratio) as usize).min((n - 1) / 2);
    let keep = n - 2 * trim;
    let mut column = vec![0.0f32; n];
    let mut out = vec![0.0f32; dim];
    for (c, slot) in out.iter_mut().enumerate() {
        for (i, u) in updates.iter().enumerate() {
            column[i] = u.payload[c];
        }
        column.sort_by(f32::total_cmp);
        *slot = column[trim..trim + keep].iter().sum::<f32>() / keep as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(id: usize, payload: Vec<f32>) -> ClientUpdate<Vec<f32>> {
        ClientUpdate { client_id: id, round: 0, steps: 1, payload }
    }

    #[test]
    fn median_bound_ignores_outliers() {
        let updates =
            vec![upd(0, vec![3.0, 4.0]), upd(1, vec![0.0, 5.0]), upd(2, vec![300.0, 400.0])];
        let b = resolve_bound(ClipBound::Median, &updates);
        assert_eq!(b, 5.0);
    }

    #[test]
    fn clipping_rescales_only_violators() {
        let mut updates = vec![upd(0, vec![3.0, 4.0]), upd(1, vec![30.0, 40.0])];
        let clipped = clip_updates(&mut updates, 5.0);
        assert_eq!(clipped, 1);
        assert_eq!(updates[0].payload, vec![3.0, 4.0]);
        let norm = updates[1].payload.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 5.0).abs() < 1e-4);
        // Direction preserved.
        assert!((updates[1].payload[0] / updates[1].payload[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let updates = vec![
            upd(0, vec![1.0]),
            upd(1, vec![2.0]),
            upd(2, vec![3.0]),
            upd(3, vec![1000.0]),
            upd(4, vec![-1000.0]),
        ];
        let m = trimmed_mean(&updates, 0.2);
        assert_eq!(m, vec![2.0]);
    }

    #[test]
    fn zero_trim_is_plain_mean() {
        let updates = vec![upd(0, vec![1.0, 2.0]), upd(1, vec![3.0, 6.0])];
        assert_eq!(trimmed_mean(&updates, 0.0), vec![2.0, 4.0]);
    }
}
