//! Scenario declaration and deterministic compilation.
//!
//! A [`ScenarioSpec`] is pure data: the base [`FlConfig`] plus the
//! perturbation layers stacked on top. [`ScenarioSpec::compile`]
//! pre-draws every random decision the scenario will ever make —
//! attacker assignment, the colluders' direction seed, the straggler
//! jitter matrix — from the run seed, before the first round executes.
//! This is the same preassigned-slot discipline the FHE pipeline uses
//! (DESIGN.md §8): once compiled, the run is a pure function, so it
//! replays bit-identically across processes and parallelism degrees.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rhychee_core::FlConfig;

use crate::attack::AttackKind;
use crate::churn::ChurnTrace;
use crate::defense::Defense;
use crate::hetero::DeviceProfile;

/// Salt separating the scenario pre-draw stream from the sampling /
/// key-material streams already derived from the run seed.
const SCENARIO_SALT: u64 = 0x005C_EA0A_11D5_EED5;

/// A declarative federation scenario: base config plus perturbations.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The base federated run (clients, rounds, seed, aggregation, …).
    pub fl: FlConfig,
    /// Byzantine behavior installed on the attacker subset, if any.
    pub attack: Option<AttackKind>,
    /// Fraction of clients that are attackers (rounded to a count).
    pub attack_fraction: f64,
    /// Departure / rejoin schedule.
    pub churn: ChurnTrace,
    /// Per-client speed multipliers (None = homogeneous fleet).
    pub devices: Option<DeviceProfile>,
    /// Straggler deadline in nominal round-time units (only meaningful
    /// with a device profile).
    pub deadline: f64,
    /// Maximum per-round jitter fraction added to a device's round time.
    pub jitter: f64,
    /// Server-side defense over the round's updates.
    pub defense: Defense,
    /// `Some(k)`: clients hold k-of-n Shamir CKKS key shares, and every
    /// departure round exercises threshold decryption of the global
    /// model by the surviving quorum.
    pub threshold_k: Option<usize>,
}

impl ScenarioSpec {
    /// A benign scenario over `fl` — no attacks, no churn, homogeneous
    /// devices, no defense.
    pub fn new(fl: FlConfig) -> ScenarioSpec {
        ScenarioSpec {
            fl,
            attack: None,
            attack_fraction: 0.0,
            churn: ChurnTrace::new(),
            devices: None,
            deadline: f64::INFINITY,
            jitter: 0.0,
            defense: Defense::None,
            threshold_k: None,
        }
    }

    /// Installs `attack` on a `fraction` of clients (chosen by seeded
    /// shuffle at compile time).
    #[must_use]
    pub fn with_attack(mut self, attack: AttackKind, fraction: f64) -> ScenarioSpec {
        self.attack = Some(attack);
        self.attack_fraction = fraction;
        self
    }

    /// Installs a churn trace.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnTrace) -> ScenarioSpec {
        self.churn = churn;
        self
    }

    /// Installs a device profile with a straggler deadline and per-round
    /// jitter amplitude.
    #[must_use]
    pub fn with_devices(
        mut self,
        devices: DeviceProfile,
        deadline: f64,
        jitter: f64,
    ) -> ScenarioSpec {
        self.devices = Some(devices);
        self.deadline = deadline;
        self.jitter = jitter;
        self
    }

    /// Installs a server-side defense.
    #[must_use]
    pub fn with_defense(mut self, defense: Defense) -> ScenarioSpec {
        self.defense = defense;
        self
    }

    /// Arms k-of-n threshold-CKKS dropout recovery.
    #[must_use]
    pub fn with_threshold(mut self, k: usize) -> ScenarioSpec {
        self.threshold_k = Some(k);
        self
    }

    /// Pre-draws every random decision of the scenario from the run
    /// seed, fixing attacker identities, the collusion direction seed,
    /// and the per-round straggler jitter before the run starts.
    pub fn compile(&self) -> CompiledScenario {
        let mut rng = StdRng::seed_from_u64(self.fl.seed ^ SCENARIO_SALT);
        let clients = self.fl.clients;
        let count = if self.attack.is_some() {
            ((clients as f64 * self.attack_fraction).round() as usize).min(clients)
        } else {
            0
        };
        let mut ids: Vec<usize> = (0..clients).collect();
        ids.shuffle(&mut rng);
        ids.truncate(count);
        ids.sort_unstable();
        let direction_seed = rng.gen();
        let jitter = (0..self.fl.rounds)
            .map(|_| {
                (0..clients)
                    .map(|_| if self.jitter > 0.0 { rng.gen_range(0.0..self.jitter) } else { 0.0 })
                    .collect()
            })
            .collect();
        CompiledScenario { spec: self.clone(), attackers: ids, direction_seed, jitter }
    }
}

/// A [`ScenarioSpec`] with all randomness resolved. Running it is a
/// pure function of this value and the dataset.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// The declaration this was compiled from.
    pub spec: ScenarioSpec,
    /// Attacker client ids, ascending.
    pub attackers: Vec<usize>,
    /// Seed for the colluders' shared direction (drawn here so the
    /// direction itself can be materialized once the model dimension is
    /// known, without touching any live RNG).
    pub direction_seed: u64,
    /// Pre-drawn straggler jitter, `jitter[round][client]`.
    pub jitter: Vec<Vec<f64>>,
}

impl CompiledScenario {
    /// Whether `client` attacks this run.
    pub fn is_attacker(&self, client: usize) -> bool {
        self.attackers.binary_search(&client).is_ok()
    }

    /// Whether `client` misses `round` as a straggler.
    pub fn straggles(&self, round: usize, client: usize) -> bool {
        match &self.spec.devices {
            None => false,
            Some(devices) => {
                let j =
                    self.jitter.get(round).and_then(|row| row.get(client)).copied().unwrap_or(0.0);
                devices.misses(client, j, self.spec.deadline)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackKind;

    fn base(clients: usize, rounds: usize, seed: u64) -> FlConfig {
        FlConfig::builder()
            .clients(clients)
            .rounds(rounds)
            .hd_dim(64)
            .seed(seed)
            .build()
            .expect("valid")
    }

    #[test]
    fn compile_is_deterministic() {
        let spec = ScenarioSpec::new(base(10, 3, 7))
            .with_attack(AttackKind::SignFlip { scale: 10.0 }, 0.2)
            .with_devices(DeviceProfile::linear(10, 1.0, 3.0), 2.5, 0.2);
        let a = spec.compile();
        let b = spec.compile();
        assert_eq!(a.attackers, b.attackers);
        assert_eq!(a.direction_seed, b.direction_seed);
        assert_eq!(a.jitter, b.jitter);
    }

    #[test]
    fn attacker_count_follows_fraction() {
        let spec = ScenarioSpec::new(base(10, 1, 3))
            .with_attack(AttackKind::ScaledUpdate { factor: 5.0 }, 0.2);
        let c = spec.compile();
        assert_eq!(c.attackers.len(), 2);
        assert!(c.attackers.windows(2).all(|w| w[0] < w[1]));
        // No attack installed → no attackers regardless of fraction.
        let benign = ScenarioSpec::new(base(10, 1, 3)).compile();
        assert!(benign.attackers.is_empty());
    }

    #[test]
    fn different_seeds_pick_different_attackers() {
        let pick = |seed| {
            ScenarioSpec::new(base(30, 1, seed))
                .with_attack(AttackKind::SignFlip { scale: 10.0 }, 0.3)
                .compile()
                .attackers
        };
        assert_ne!(pick(1), pick(2), "seed must steer attacker assignment");
    }

    #[test]
    fn straggler_lookup_uses_profile_and_jitter() {
        let spec = ScenarioSpec::new(base(4, 2, 9)).with_devices(
            DeviceProfile::linear(4, 1.0, 4.0),
            2.5,
            0.0,
        );
        let c = spec.compile();
        assert!(!c.straggles(0, 0));
        assert!(c.straggles(0, 3));
        // Without a profile nobody straggles.
        let benign = ScenarioSpec::new(base(4, 2, 9)).compile();
        assert!(!benign.straggles(0, 3));
    }
}
