//! Transform-count regression tests for the NTT-resident CKKS pipeline.
//!
//! The `fhe.ckks.ntt.{forward,inverse}.count` counters make the domain
//! state machine auditable: each test snapshots the global counters
//! around one operation and asserts the *exact* number of per-prime
//! transforms from the accounting table in DESIGN.md §11. Any regression
//! that sneaks a transform back into the hot path (or re-transforms
//! cached keys) fails loudly here.
//!
//! The counters are process-global, so every test serializes on one
//! mutex and measures deltas only.

use std::sync::Mutex;

use rand::{rngs::StdRng, SeedableRng};
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::params::CkksParams;
use rhychee_telemetry as telemetry;

static SERIAL: Mutex<()> = Mutex::new(());

fn ntt_counts() -> (u64, u64) {
    let m = telemetry::metrics::global();
    (m.counter("fhe.ckks.ntt.forward.count").get(), m.counter("fhe.ckks.ntt.inverse.count").get())
}

fn cache_counts() -> (u64, u64) {
    let m = telemetry::metrics::global();
    (
        m.counter("fhe.ckks.ntt.table_cache.hit").get(),
        m.counter("fhe.ckks.ntt.table_cache.miss").get(),
    )
}

#[test]
fn transform_counts_match_the_accounting_table() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_enabled(true);
    let ctx = CkksContext::new(CkksParams::toy()).expect("params");
    let mut rng = StdRng::seed_from_u64(42);
    let (sk, pk) = ctx.generate_keys(&mut rng);
    let levels = ctx.primes().len() as u64;
    let values = vec![0.5; 100];

    // Resident public-key encrypt: one forward per prime for each of
    // v (shared by both components), e0, e1, and the encoded message —
    // no inverses, and no key transforms (keys were cached at keygen).
    let (f0, i0) = ntt_counts();
    let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
    let (f1, i1) = ntt_counts();
    assert_eq!((f1 - f0, i1 - i0), (4 * levels, 0), "resident encrypt");

    // The server aggregation loop is transform-free.
    let ct2 = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
    let (f0, i0) = ntt_counts();
    let mut acc = ctx.mul_scalar(&ct, 0.5);
    let scaled = ctx.mul_scalar(&ct2, 0.5);
    ctx.add_assign(&mut acc, &scaled).expect("add");
    let (f1, i1) = ntt_counts();
    assert_eq!((f1 - f0, i1 - i0), (0, 0), "aggregate");

    // Evaluation-domain decrypt: exactly one inverse per prime (the
    // cached NTT-form secret key makes c1·s a pointwise product).
    let (f0, i0) = ntt_counts();
    let _ = ctx.decrypt(&sk, &acc);
    let (f1, i1) = ntt_counts();
    assert_eq!((f1 - f0, i1 - i0), (0, levels), "eval decrypt");

    // Symmetric seeded encrypt: c1 is expanded from the seed directly in
    // the evaluation domain, so only e and the message transform.
    let (f0, i0) = ntt_counts();
    let sct = ctx.encrypt_symmetric(&sk, &values, &mut rng).expect("encrypt");
    let (f1, i1) = ntt_counts();
    assert_eq!((f1 - f0, i1 - i0), (2 * levels, 0), "symmetric encrypt");

    // Canonical serialization is the one place a resident ciphertext
    // pays inverses: one per prime per component.
    let (f0, i0) = ntt_counts();
    let bytes = ctx.serialize(&sct);
    let (f1, i1) = ntt_counts();
    assert_eq!((f1 - f0, i1 - i0), (0, 2 * levels), "canonical serialize");

    // Canonical deserialization yields a coefficient-domain ciphertext;
    // decrypting it pays one forward (c1 into NTT form against the
    // cached key) plus the final inverse, per prime.
    let back = ctx.deserialize(&bytes).expect("deserialize");
    let (f0, i0) = ntt_counts();
    let _ = ctx.decrypt(&sk, &back);
    let (f1, i1) = ntt_counts();
    assert_eq!((f1 - f0, i1 - i0), (levels, levels), "coeff decrypt");
}

#[test]
fn reference_pipeline_pays_the_transforms_the_resident_one_saves() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_enabled(true);
    let mut ctx = CkksContext::new(CkksParams::toy()).expect("params");
    ctx.set_eval_resident(false);
    let mut rng = StdRng::seed_from_u64(43);
    let (_, pk) = ctx.generate_keys(&mut rng);
    let levels = ctx.primes().len() as u64;

    // Coefficient-domain reference encrypt: two polynomial products
    // (b·v and a·v), each transforming both operands forward and the
    // result back — 4 forwards + 2 inverses per prime, every call.
    let (f0, i0) = ntt_counts();
    let _ = ctx.encrypt(&pk, &[0.5; 100], &mut rng).expect("encrypt");
    let (f1, i1) = ntt_counts();
    assert_eq!((f1 - f0, i1 - i0), (4 * levels, 2 * levels), "reference encrypt");
}

#[test]
fn ntt_table_cache_is_shared_across_contexts() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_enabled(true);
    // Parameters used nowhere else in this binary, so the first context
    // must miss for every prime and the second must hit for every one.
    let params = CkksParams { n: 1024, prime_bits: vec![44, 33], scale_bits: 25, sigma: 3.2 };
    let (h0, m0) = cache_counts();
    let a = CkksContext::new(params.clone()).expect("params");
    let (h1, m1) = cache_counts();
    assert_eq!(h1 - h0, 0, "first context cannot hit");
    assert_eq!(m1 - m0, a.primes().len() as u64, "one miss per prime");
    let b = CkksContext::new(params).expect("params");
    let (h2, m2) = cache_counts();
    assert_eq!(h2 - h1, b.primes().len() as u64, "second context hits every prime");
    assert_eq!(m2 - m1, 0, "second context cannot miss");
    assert_eq!(a.primes(), b.primes());
}
