//! Property-based tests for homomorphic-encryption invariants.
//!
//! Uses small (insecure) parameter sets so each case runs in microseconds;
//! the properties themselves are parameter-independent.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use rhychee_fhe::ckks::{ntt::negacyclic_mul_naive, ntt::NttTable, CkksContext};
use rhychee_fhe::lwe::LweContext;
use rhychee_fhe::params::{CkksParams, LweParams};

fn toy_ckks() -> CkksContext {
    CkksContext::new(CkksParams { n: 64, prime_bits: vec![50, 40], scale_bits: 30, sigma: 3.2 })
        .expect("valid params")
}

fn toy_lwe() -> LweContext {
    LweContext::new(LweParams { dimension: 64, log_q: 12, plaintext_modulus: 16, sigma_int: 0.6 })
        .expect("valid params")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ckks_decrypt_of_encrypt_is_close(
        seed in any::<u64>(),
        values in prop::collection::vec(-100.0f64..100.0, 1..32),
    ) {
        let ctx = toy_ckks();
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let ct = ctx.encrypt(&pk, &values, &mut rng).unwrap();
        let back = ctx.decrypt(&sk, &ct);
        for (v, b) in values.iter().zip(&back) {
            prop_assert!((v - b).abs() < 1e-2, "{v} vs {b}");
        }
    }

    #[test]
    fn ckks_addition_homomorphism(
        seed in any::<u64>(),
        x in prop::collection::vec(-50.0f64..50.0, 8),
        y in prop::collection::vec(-50.0f64..50.0, 8),
    ) {
        let ctx = toy_ckks();
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let cx = ctx.encrypt(&pk, &x, &mut rng).unwrap();
        let cy = ctx.encrypt(&pk, &y, &mut rng).unwrap();
        let back = ctx.decrypt(&sk, &ctx.add(&cx, &cy).unwrap());
        for i in 0..8 {
            prop_assert!((back[i] - (x[i] + y[i])).abs() < 2e-2);
        }
    }

    #[test]
    fn ckks_scalar_mul_homomorphism(
        seed in any::<u64>(),
        x in prop::collection::vec(-10.0f64..10.0, 4),
        k in -5.0f64..5.0,
    ) {
        let ctx = toy_ckks();
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let cx = ctx.encrypt(&pk, &x, &mut rng).unwrap();
        let back = ctx.decrypt(&sk, &ctx.mul_scalar(&cx, k));
        for i in 0..4 {
            prop_assert!((back[i] - k * x[i]).abs() < 2e-2, "{} vs {}", back[i], k * x[i]);
        }
    }

    #[test]
    fn ckks_serialization_preserves_plaintext(
        seed in any::<u64>(),
        x in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let ctx = toy_ckks();
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let ct = ctx.encrypt(&pk, &x, &mut rng).unwrap();
        let back = ctx.deserialize(&ctx.serialize(&ct)).unwrap();
        let dec = ctx.decrypt(&sk, &back);
        for i in 0..4 {
            prop_assert!((dec[i] - x[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn ntt_linear_in_first_argument(
        a in prop::collection::vec(0u64..1000, 32),
        b in prop::collection::vec(0u64..1000, 32),
        c in prop::collection::vec(0u64..1000, 32),
    ) {
        // (a + b) * c == a*c + b*c in the negacyclic ring.
        let q = rhychee_fhe::ckks::modarith::find_ntt_primes(40, 1, 64)[0];
        let table = NttTable::new(32, q);
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % q).collect();
        let lhs = table.multiply(&sum, &c);
        let ac = table.multiply(&a, &c);
        let bc = table.multiply(&b, &c);
        let rhs: Vec<u64> = ac.iter().zip(&bc).map(|(&x, &y)| (x + y) % q).collect();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ntt_matches_naive_product(
        a in prop::collection::vec(0u64..100_000, 16),
        b in prop::collection::vec(0u64..100_000, 16),
    ) {
        let q = rhychee_fhe::ckks::modarith::find_ntt_primes(40, 1, 32)[0];
        let table = NttTable::new(16, q);
        prop_assert_eq!(table.multiply(&a, &b), negacyclic_mul_naive(&a, &b, q));
    }

    #[test]
    fn shoup_ntt_forward_inverse_is_identity(
        raw in prop::collection::vec(any::<u64>(), 64),
        prime_bits in 40u32..=61,
    ) {
        // The Shoup/Harvey lazy butterflies must stay exact right up to
        // the 62-bit modulus cap, for arbitrary canonical inputs.
        let q = rhychee_fhe::ckks::modarith::find_ntt_primes(prime_bits, 1, 128)[0];
        let table = NttTable::new(64, q);
        let a: Vec<u64> = raw.iter().map(|&x| x % q).collect();
        let mut t = a.clone();
        table.forward(&mut t);
        table.inverse(&mut t);
        prop_assert_eq!(t, a);
    }

    #[test]
    fn shoup_ntt_multiply_matches_naive_at_large_prime(
        raw_a in prop::collection::vec(any::<u64>(), 32),
        raw_b in prop::collection::vec(any::<u64>(), 32),
    ) {
        let q = rhychee_fhe::ckks::modarith::find_ntt_primes(61, 1, 64)[0];
        let table = NttTable::new(32, q);
        let a: Vec<u64> = raw_a.iter().map(|&x| x % q).collect();
        let b: Vec<u64> = raw_b.iter().map(|&x| x % q).collect();
        prop_assert_eq!(table.multiply(&a, &b), negacyclic_mul_naive(&a, &b, q));
    }

    #[test]
    fn lwe_round_trip(seed in any::<u64>(), m in 0u64..16) {
        let ctx = toy_lwe();
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = ctx.generate_key(&mut rng);
        let ct = ctx.encrypt(&sk, m, &mut rng).unwrap();
        prop_assert_eq!(ctx.decrypt(&sk, &ct), m);
    }

    #[test]
    fn lwe_addition_homomorphism(seed in any::<u64>(), x in 0u64..16, y in 0u64..16) {
        let ctx = toy_lwe();
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = ctx.generate_key(&mut rng);
        let cx = ctx.encrypt(&sk, x, &mut rng).unwrap();
        let cy = ctx.encrypt(&sk, y, &mut rng).unwrap();
        let sum = ctx.add(&cx, &cy).unwrap();
        prop_assert_eq!(ctx.decrypt(&sk, &sum), (x + y) % 16);
    }

    #[test]
    fn lwe_serialization_round_trip(seed in any::<u64>(), m in 0u64..16) {
        let ctx = toy_lwe();
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = ctx.generate_key(&mut rng);
        let ct = ctx.encrypt(&sk, m, &mut rng).unwrap();
        let back = ctx.deserialize(&ctx.serialize(&ct)).unwrap();
        prop_assert_eq!(back, ct);
    }
}

// Every compiled-and-detected NTT backend must agree with the scalar
// reference bit for bit: the kernels share one contract (canonical
// outputs in `[0, q)`), so SIMD lane tricks and fused passes are free
// to differ internally but never externally.
mod ntt_backends {
    use super::*;
    use rhychee_fhe::ckks::modarith::find_ntt_primes;
    use rhychee_fhe::ckks::ntt::{available_kernels, negacyclic_mul_naive, NttTable};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn every_backend_round_trips(
            raw in prop::collection::vec(any::<u64>(), 128),
            prime_bits in 30u32..=61,
        ) {
            let q = find_ntt_primes(prime_bits, 1, 256)[0];
            let a: Vec<u64> = raw.iter().map(|&x| x % q).collect();
            for &kernel in available_kernels() {
                let table = NttTable::with_kernel(128, q, kernel);
                let mut t = a.clone();
                table.forward(&mut t);
                table.inverse(&mut t);
                prop_assert!(t == a, "backend {} broke the round trip", kernel.name());
            }
        }

        #[test]
        fn every_backend_matches_naive_product(
            raw_a in prop::collection::vec(any::<u64>(), 64),
            raw_b in prop::collection::vec(any::<u64>(), 64),
        ) {
            let q = find_ntt_primes(50, 1, 128)[0];
            let a: Vec<u64> = raw_a.iter().map(|&x| x % q).collect();
            let b: Vec<u64> = raw_b.iter().map(|&x| x % q).collect();
            let expected = negacyclic_mul_naive(&a, &b, q);
            for &kernel in available_kernels() {
                let table = NttTable::with_kernel(64, q, kernel);
                prop_assert!(
                    table.multiply(&a, &b) == expected,
                    "backend {} diverged from the naive product",
                    kernel.name()
                );
            }
        }
    }

    /// Forward and inverse transforms of every backend are bit-identical
    /// to scalar at every prime width a workspace `CkksParams` preset
    /// uses (30/35/40/45/50/61), for both a vectorized and a
    /// fallback-sized ring.
    #[test]
    fn backends_bit_identical_at_workspace_primes() {
        use rand::Rng;
        use rhychee_fhe::ckks::ntt::kernel_by_name;
        let mut rng = StdRng::seed_from_u64(0x5eed_bac4);
        let scalar = kernel_by_name("scalar").expect("scalar kernel always present");
        for &bits in &[30u32, 35, 40, 45, 50, 61] {
            for &n in &[16usize, 512] {
                let q = find_ntt_primes(bits, 1, 2 * n as u64)[0];
                let input: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();

                let scalar_table = NttTable::with_kernel(n, q, scalar);
                let mut fwd_ref = input.clone();
                scalar_table.forward(&mut fwd_ref);
                let mut inv_ref = fwd_ref.clone();
                scalar_table.inverse(&mut inv_ref);

                for &kernel in available_kernels() {
                    let table = NttTable::with_kernel(n, q, kernel);
                    let mut fwd = input.clone();
                    table.forward(&mut fwd);
                    assert_eq!(
                        fwd,
                        fwd_ref,
                        "forward({}) != forward(scalar) at {bits}-bit prime, n = {n}",
                        kernel.name()
                    );
                    let mut inv = fwd;
                    table.inverse(&mut inv);
                    assert_eq!(
                        inv,
                        inv_ref,
                        "inverse({}) != inverse(scalar) at {bits}-bit prime, n = {n}",
                        kernel.name()
                    );
                    assert_eq!(inv, input, "round trip must be the identity");
                }
            }
        }
    }
}

// Paillier proptests use a fixed key (keygen dominates runtime) shared
// across cases via a lazily-initialized static.
mod paillier_props {
    use super::*;
    use rhychee_bigint::BigUint;
    use rhychee_fhe::paillier::PaillierContext;
    use std::sync::OnceLock;

    fn shared_ctx() -> &'static PaillierContext {
        static CTX: OnceLock<PaillierContext> = OnceLock::new();
        CTX.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(123);
            PaillierContext::generate(&mut rng, 256).expect("keygen")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn paillier_round_trip(seed in any::<u64>(), m in any::<u64>()) {
            let ctx = shared_ctx();
            let mut rng = StdRng::seed_from_u64(seed);
            let ct = ctx.encrypt_u64(m, &mut rng);
            prop_assert_eq!(ctx.decrypt_u64(&ct).unwrap(), m);
        }

        #[test]
        fn paillier_addition_homomorphism(seed in any::<u64>(), x in 0u64..u32::MAX as u64, y in 0u64..u32::MAX as u64) {
            let ctx = shared_ctx();
            let mut rng = StdRng::seed_from_u64(seed);
            let cx = ctx.encrypt_u64(x, &mut rng);
            let cy = ctx.encrypt_u64(y, &mut rng);
            prop_assert_eq!(ctx.decrypt_u64(&ctx.add(&cx, &cy)).unwrap(), x + y);
        }

        #[test]
        fn paillier_scalar_homomorphism(seed in any::<u64>(), m in 0u64..u32::MAX as u64, k in 0u64..1000) {
            let ctx = shared_ctx();
            let mut rng = StdRng::seed_from_u64(seed);
            let c = ctx.encrypt_u64(m, &mut rng);
            let ck = ctx.mul_scalar(&c, &BigUint::from(k));
            prop_assert_eq!(ctx.decrypt_u64(&ck).unwrap(), m * k);
        }

        #[test]
        fn paillier_f64_signed_round_trip(seed in any::<u64>(), v in -1e6f64..1e6) {
            let ctx = shared_ctx();
            let mut rng = StdRng::seed_from_u64(seed);
            let ct = ctx.encrypt_f64(v, &mut rng);
            prop_assert!((ctx.decrypt_f64(&ct) - v).abs() < 1e-6);
        }
    }
}
