//! Standalone suite for `ckks::threshold` dropout recovery: k-of-n
//! Shamir partial decryptions, quorum validation, and the missing-share
//! error path. Until now this machinery was only reachable indirectly
//! through the doc example; the scenario engine leans on it for
//! keyholder-churn recovery, so it gets direct coverage here.

use rand::{rngs::StdRng, SeedableRng};
use rhychee_fhe::ckks::threshold::ThresholdGroup;
use rhychee_fhe::ckks::CkksContext;
use rhychee_fhe::error::FheError;
use rhychee_fhe::params::CkksParams;

fn toy_ctx() -> CkksContext {
    CkksContext::new(CkksParams::toy()).expect("toy params")
}

fn assert_close(got: &[f64], want: &[f64], tol: f64) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!((g - w).abs() < tol, "slot {i}: {g} vs {w}");
    }
}

#[test]
fn every_3_of_5_quorum_decrypts_identically() {
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(41);
    let group = ThresholdGroup::generate_kofn(&ctx, 5, 3, &mut rng).expect("kofn");
    let values = vec![0.5, -3.75, 12.0, 0.0];
    let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
    // Exhaustively try all C(5,3) = 10 quorums: each must recover the
    // plaintext regardless of which two parties dropped.
    for a in 0..5usize {
        for b in a + 1..5 {
            for c in b + 1..5 {
                let subset = [a, b, c];
                let partials: Vec<_> = subset
                    .iter()
                    .map(|&p| {
                        group
                            .partial_decrypt_subset(&ctx, p, &subset, &ct, &mut rng)
                            .expect("member of a valid quorum")
                    })
                    .collect();
                let back = group.combine_checked(&ctx, &ct, &partials).expect("quorum met");
                assert_close(&back[..values.len()], &values, 0.05);
            }
        }
    }
}

#[test]
fn oversized_quorum_also_decrypts() {
    // More than k survivors is fine: Lagrange interpolation over any
    // subset of size >= k still lands on F(0).
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(42);
    let group = ThresholdGroup::generate_kofn(&ctx, 4, 2, &mut rng).expect("kofn");
    let values = vec![7.0, 8.0];
    let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
    let subset = [0usize, 1, 3];
    let partials: Vec<_> = subset
        .iter()
        .map(|&p| group.partial_decrypt_subset(&ctx, p, &subset, &ct, &mut rng).expect("valid"))
        .collect();
    let back = group.combine_checked(&ctx, &ct, &partials).expect("quorum met");
    assert_close(&back[..2], &values, 0.05);
}

#[test]
fn below_threshold_subset_is_rejected() {
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(43);
    let group = ThresholdGroup::generate_kofn(&ctx, 5, 3, &mut rng).expect("kofn");
    let ct = ctx.encrypt(group.public_key(), &[1.0], &mut rng).expect("encrypt");
    let err = group.partial_decrypt_subset(&ctx, 0, &[0, 1], &ct, &mut rng).unwrap_err();
    assert!(matches!(err, FheError::InvalidParams(_)), "got {err}");
}

#[test]
fn combine_checked_rejects_missing_share() {
    // The dropout error path: three partials were promised but one
    // keyholder died before publishing — combine must refuse rather
    // than hand back garbage.
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(44);
    let group = ThresholdGroup::generate_kofn(&ctx, 5, 3, &mut rng).expect("kofn");
    let ct = ctx.encrypt(group.public_key(), &[9.0], &mut rng).expect("encrypt");
    let subset = [0usize, 2, 4];
    let partials: Vec<_> = subset[..2]
        .iter()
        .map(|&p| group.partial_decrypt_subset(&ctx, p, &subset, &ct, &mut rng).expect("valid"))
        .collect();
    let err = group.combine_checked(&ctx, &ct, &partials).unwrap_err();
    assert!(matches!(err, FheError::InvalidParams(_)), "got {err}");
}

#[test]
fn combine_checked_rejects_duplicate_share() {
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(45);
    let group = ThresholdGroup::generate_kofn(&ctx, 5, 3, &mut rng).expect("kofn");
    let ct = ctx.encrypt(group.public_key(), &[9.0], &mut rng).expect("encrypt");
    let subset = [0usize, 2, 4];
    let p0 = group.partial_decrypt_subset(&ctx, 0, &subset, &ct, &mut rng).expect("valid");
    let p2 = group.partial_decrypt_subset(&ctx, 2, &subset, &ct, &mut rng).expect("valid");
    let err = group.combine_checked(&ctx, &ct, &[p0.clone(), p0, p2]).unwrap_err();
    assert!(matches!(err, FheError::InvalidParams(_)), "got {err}");
}

#[test]
fn party_outside_declared_subset_is_rejected() {
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(46);
    let group = ThresholdGroup::generate_kofn(&ctx, 5, 3, &mut rng).expect("kofn");
    let ct = ctx.encrypt(group.public_key(), &[1.0], &mut rng).expect("encrypt");
    let err = group.partial_decrypt_subset(&ctx, 1, &[0, 2, 4], &ct, &mut rng).unwrap_err();
    assert!(matches!(err, FheError::InvalidParams(_)), "got {err}");
}

#[test]
fn out_of_range_and_degenerate_params_are_rejected() {
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(47);
    assert!(ThresholdGroup::generate_kofn(&ctx, 3, 0, &mut rng).is_err());
    assert!(ThresholdGroup::generate_kofn(&ctx, 3, 4, &mut rng).is_err());
    assert!(ThresholdGroup::generate_kofn(&ctx, 0, 0, &mut rng).is_err());
    let group = ThresholdGroup::generate_kofn(&ctx, 3, 2, &mut rng).expect("kofn");
    let ct = ctx.encrypt(group.public_key(), &[1.0], &mut rng).expect("encrypt");
    let err = group.partial_decrypt_subset(&ctx, 0, &[0, 7], &ct, &mut rng).unwrap_err();
    assert!(matches!(err, FheError::InvalidParams(_)), "got {err}");
}

#[test]
fn below_threshold_coalition_sees_garbage() {
    // k−1 colluders who lie about the quorum (declare a full subset but
    // only sum their own partials) must not recover the plaintext.
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(48);
    let group = ThresholdGroup::generate_kofn(&ctx, 5, 3, &mut rng).expect("kofn");
    let values = vec![42.0; 8];
    let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
    let subset = [0usize, 2, 4];
    let partials: Vec<_> = [0usize, 2]
        .iter()
        .map(|&p| group.partial_decrypt_subset(&ctx, p, &subset, &ct, &mut rng).expect("valid"))
        .collect();
    let broken = ThresholdGroup::combine(&ctx, &ct, &partials);
    let max_err = broken[..8].iter().map(|b| (b - 42.0).abs()).fold(0.0f64, f64::max);
    assert!(max_err > 1.0, "2-of-3 coalition must not learn the plaintext (err {max_err})");
}

#[test]
fn homomorphic_average_survives_keyholder_dropout() {
    // The federation story end-to-end: clients encrypt under the joint
    // key, the server averages homomorphically, a keyholder churns out,
    // and the surviving quorum still opens the global model.
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(49);
    let group = ThresholdGroup::generate_kofn(&ctx, 4, 3, &mut rng).expect("kofn");
    let models = [[2.0, 4.0], [4.0, 8.0], [6.0, 12.0], [8.0, 16.0]];
    let mut acc = ctx.encrypt(group.public_key(), &models[0], &mut rng).expect("encrypt");
    for m in &models[1..] {
        let ct = ctx.encrypt(group.public_key(), m, &mut rng).expect("encrypt");
        ctx.add_assign(&mut acc, &ct).expect("add");
    }
    let avg = ctx.mul_scalar(&acc, 0.25);
    // Party 1 dropped with its share; {0, 2, 3} recover the average.
    let subset = [0usize, 2, 3];
    let partials: Vec<_> = subset
        .iter()
        .map(|&p| group.partial_decrypt_subset(&ctx, p, &subset, &avg, &mut rng).expect("valid"))
        .collect();
    let back = group.combine_checked(&ctx, &avg, &partials).expect("quorum met");
    assert_close(&back[..2], &[5.0, 10.0], 0.05);
}

#[test]
fn kofn_replays_bit_identically_from_the_same_seed() {
    // The scenario engine's determinism contract extends to threshold
    // recovery: same seed, same ceremony, same partials, same bits.
    let run = || {
        let ctx = toy_ctx();
        let mut rng = StdRng::seed_from_u64(50);
        let group = ThresholdGroup::generate_kofn(&ctx, 5, 3, &mut rng).expect("kofn");
        let ct = ctx.encrypt(group.public_key(), &[1.25, 2.5], &mut rng).expect("encrypt");
        let subset = [1usize, 2, 3];
        let partials: Vec<_> = subset
            .iter()
            .map(|&p| group.partial_decrypt_subset(&ctx, p, &subset, &ct, &mut rng).expect("ok"))
            .collect();
        group.combine_checked(&ctx, &ct, &partials).expect("quorum met")
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "replay must be bit-identical");
    }
}
