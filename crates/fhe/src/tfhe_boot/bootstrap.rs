//! The programmable bootstrap: blind rotation → sample extraction →
//! key switching → modulus switching.

use rand::Rng;

use crate::ckks::modarith::{add_mod, find_ntt_primes, mul_mod, neg_mod, sub_mod};
use crate::ckks::ntt::NttTable;
use crate::error::FheError;
use crate::lwe::{LweCiphertext, LweContext, LweSecretKey};
use crate::params::LweParams;
use crate::sampling::{discrete_gaussian, uniform_vec};

use super::rlwe::{rotate_poly, sample_rlwe_key, GadgetDecomposer, RgswCiphertext, RlweCiphertext};

/// Parameters of the bootstrapping machinery layered over an
/// [`LweParams`] base scheme.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapParams {
    /// The base LWE scheme; its modulus must equal `2 · ring_degree`.
    pub lwe: LweParams,
    /// Accumulator ring degree N.
    pub ring_degree: usize,
    /// Bit size of the accumulator modulus Q (an NTT prime is chosen).
    pub ring_modulus_bits: u32,
    /// Blind-rotation gadget base (log2).
    pub gadget_log_base: u32,
    /// Blind-rotation gadget levels.
    pub gadget_levels: usize,
    /// Key-switching gadget base (log2).
    pub ks_log_base: u32,
    /// Key-switching gadget levels.
    pub ks_levels: usize,
    /// Error σ for the RLWE/RGSW and key-switching encryptions.
    pub rlwe_sigma: f64,
}

impl Default for BootstrapParams {
    /// FHEW-style parameters over the paper's TFHE-3 base scheme:
    /// n = 448, q = 2^10 = 2N with N = 512, 27-bit accumulator prime.
    fn default() -> Self {
        BootstrapParams {
            lwe: LweParams::tfhe3(),
            ring_degree: 512,
            ring_modulus_bits: 27,
            gadget_log_base: 9,
            gadget_levels: 3,
            ks_log_base: 7,
            ks_levels: 4,
            rlwe_sigma: 3.2,
        }
    }
}

impl BootstrapParams {
    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if `q ≠ 2N` or a gadget does
    /// not cover its modulus.
    pub fn validate(&self) -> Result<(), FheError> {
        self.lwe.validate()?;
        if self.lwe.q() != 2 * self.ring_degree as u64 {
            return Err(FheError::InvalidParams(format!(
                "bootstrapping requires q = 2N (q = {}, N = {})",
                self.lwe.q(),
                self.ring_degree
            )));
        }
        if !self.ring_degree.is_power_of_two() {
            return Err(FheError::InvalidParams("ring degree must be a power of two".into()));
        }
        if u32::try_from(self.gadget_levels).unwrap_or(u32::MAX) * self.gadget_log_base
            < self.ring_modulus_bits
        {
            return Err(FheError::InvalidParams("blind-rotation gadget too small".into()));
        }
        if u32::try_from(self.ks_levels).unwrap_or(u32::MAX) * self.ks_log_base
            < self.ring_modulus_bits
        {
            return Err(FheError::InvalidParams("key-switching gadget too small".into()));
        }
        Ok(())
    }
}

/// One key-switching-key entry: an LWE (dim n, mod Q) encryption.
#[derive(Debug, Clone)]
struct KskEntry {
    a: Vec<u64>,
    b: u64,
}

/// Evaluation keys for programmable bootstrapping: the blind-rotation
/// key (one RGSW per LWE secret bit) and the key-switching key.
pub struct BootstrapContext {
    params: BootstrapParams,
    table: NttTable,
    decomposer: GadgetDecomposer,
    ks_decomposer: GadgetDecomposer,
    /// RGSW(s_i) for every bit of the base LWE secret.
    blind_rotation_key: Vec<RgswCiphertext>,
    /// ksk[i][j] = LWE_s(z_i · B_ks^j) mod Q, for the RLWE key z.
    key_switching_key: Vec<Vec<KskEntry>>,
    /// Accumulator modulus Q.
    ring_q: u64,
}

impl BootstrapContext {
    /// Generates the evaluation keys for a base-scheme secret key.
    ///
    /// This is the expensive client-side setup (seconds); the keys are
    /// then reusable for any number of bootstraps.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if parameter validation fails
    /// or the context's parameters disagree with `params.lwe`.
    pub fn generate<R: Rng + ?Sized>(
        params: &BootstrapParams,
        ctx: &LweContext,
        sk: &LweSecretKey,
        rng: &mut R,
    ) -> Result<Self, FheError> {
        params.validate()?;
        if *ctx.params() != params.lwe {
            return Err(FheError::InvalidParams(
                "LWE context parameters disagree with bootstrap parameters".into(),
            ));
        }
        let n_ring = params.ring_degree;
        let ring_q = find_ntt_primes(params.ring_modulus_bits, 1, 2 * n_ring as u64)[0];
        let table = NttTable::new(n_ring, ring_q);
        let decomposer =
            GadgetDecomposer::new(ring_q, params.gadget_log_base, params.gadget_levels);
        let ks_decomposer = GadgetDecomposer::new(ring_q, params.ks_log_base, params.ks_levels);

        // Accumulator (RLWE) key.
        let z = sample_rlwe_key(n_ring, rng);

        // Blind-rotation key: RGSW(s_i) under z.
        let s_bits = sk.bits();
        let blind_rotation_key = s_bits
            .iter()
            .map(|&bit| {
                RgswCiphertext::encrypt(bit, &z, &table, &decomposer, params.rlwe_sigma, rng)
            })
            .collect();

        // Key-switching key: LWE_s^{(Q)}(z_i · B^j).
        let n_lwe = params.lwe.dimension;
        let factors = ks_decomposer.factors();
        let mut key_switching_key = Vec::with_capacity(n_ring);
        for &z_i in &z {
            let z_res = ((z_i % ring_q as i64 + ring_q as i64) % ring_q as i64) as u64;
            let mut per_coeff = Vec::with_capacity(factors.len());
            for &f in &factors {
                let m = mul_mod(z_res, f % ring_q, ring_q);
                let a = uniform_vec(rng, n_lwe, ring_q);
                let inner = a
                    .iter()
                    .zip(s_bits)
                    .fold(0u64, |acc, (&ai, &si)| add_mod(acc, mul_mod(ai, si, ring_q), ring_q));
                let e = discrete_gaussian(rng, params.rlwe_sigma);
                let e_res = ((e % ring_q as i64 + ring_q as i64) % ring_q as i64) as u64;
                let b = add_mod(add_mod(inner, e_res, ring_q), m, ring_q);
                per_coeff.push(KskEntry { a, b });
            }
            key_switching_key.push(per_coeff);
        }

        Ok(BootstrapContext {
            params: *params,
            table,
            decomposer,
            ks_decomposer,
            blind_rotation_key,
            key_switching_key,
            ring_q,
        })
    }

    /// The accumulator modulus Q.
    pub fn ring_modulus(&self) -> u64 {
        self.ring_q
    }

    /// Evaluates `lut[m]` homomorphically on an encryption of `m`,
    /// returning a *fresh-noise* encryption of the result — the
    /// programmable bootstrap.
    ///
    /// `lut` must have exactly `t` entries with values `< t`. Message
    /// correctness is guaranteed for `m < t/2` (the negacyclic domain
    /// restriction; see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if the LUT shape is wrong.
    pub fn bootstrap(&self, ct: &LweCiphertext, lut: &[u64]) -> Result<LweCiphertext, FheError> {
        let t = self.params.lwe.plaintext_modulus;
        if lut.len() != t as usize {
            return Err(FheError::InvalidParams(format!(
                "LUT must have t = {t} entries, got {}",
                lut.len()
            )));
        }
        if let Some(&bad) = lut.iter().find(|&&v| v >= t) {
            return Err(FheError::MessageOutOfRange { value: bad as i64, modulus: t });
        }
        let n_ring = self.params.ring_degree;
        let two_n = 2 * n_ring;
        let q = self.params.lwe.q();
        let big_q = self.ring_q;
        let delta = self.params.lwe.delta(); // q/t
        let delta_q = big_q / t; // Q/t

        // Test vector: v[idx] = -Δ_Q · f(floor((N - idx)/Δ)) for idx ≥ 1.
        let mut test_vector = vec![0u64; n_ring];
        test_vector[0] = mul_mod(delta_q, lut[0] % big_q, big_q);
        for (idx, tv) in test_vector.iter_mut().enumerate().skip(1) {
            let m = ((n_ring - idx) as u64 / delta) % t;
            *tv = neg_mod(mul_mod(delta_q, lut[m as usize], big_q), big_q);
        }

        // Rounding offset: shift the phase by Δ/2 so each message owns a
        // full Δ-wide window in [0, N).
        let (a, b) = ct.components();
        let b_shifted = (b + delta / 2) % q;

        // Blind rotation: ACC = v · X^{b'} · Π X^{-a_i s_i}.
        let init = rotate_poly(&test_vector, (b_shifted % two_n as u64) as usize, big_q);
        let mut acc = RlweCiphertext::trivial(init);
        for (ai, rgsw) in a.iter().zip(&self.blind_rotation_key) {
            let k = (two_n as u64 - (ai % two_n as u64)) % two_n as u64;
            if k == 0 {
                continue;
            }
            acc = rgsw.cmux_rotate(&acc, k as usize, &self.table, &self.decomposer);
        }

        // Sample extraction: LWE (dim N, mod Q) of the constant coefficient.
        let b_out = acc.b[0];
        let mut a_out = vec![0u64; n_ring];
        a_out[0] = acc.a[0];
        for (i, ai) in a_out.iter_mut().enumerate().skip(1) {
            *ai = neg_mod(acc.a[n_ring - i], big_q);
        }

        // Key switch to the base dimension (still mod Q).
        let n_lwe = self.params.lwe.dimension;
        let mut ks_a = vec![0u64; n_lwe];
        let mut ks_b = b_out;
        for (i, &coeff) in a_out.iter().enumerate() {
            let digits = self.ks_decomposer.decompose(std::slice::from_ref(&coeff));
            for (j, digit_poly) in digits.iter().enumerate() {
                let d = digit_poly[0];
                if d == 0 {
                    continue;
                }
                let entry = &self.key_switching_key[i][j];
                for (x, &ea) in ks_a.iter_mut().zip(&entry.a) {
                    *x = add_mod(*x, mul_mod(d, ea, big_q), big_q);
                }
                ks_b = sub_mod(ks_b, mul_mod(d, entry.b, big_q), big_q);
            }
        }
        // We accumulated +Σ d·a_entry while subtracting Σ d·b_entry from
        // b; the decryption convention b − ⟨a, s⟩ therefore needs a = −Σ.
        let ks_a: Vec<u64> = ks_a.into_iter().map(|x| neg_mod(x, big_q)).collect();

        // Modulus switch Q → q with rounding.
        let switch = |x: u64| -> u64 {
            (((x as u128 * q as u128 + (big_q / 2) as u128) / big_q as u128) % q as u128) as u64
        };
        let final_a: Vec<u64> = ks_a.iter().map(|&x| switch(x)).collect();
        let final_b = switch(ks_b);
        Ok(LweCiphertext::from_components(final_a, final_b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Reduced parameters for fast unit tests (insecure, same structure).
    fn toy_params() -> BootstrapParams {
        BootstrapParams {
            lwe: LweParams {
                dimension: 64,
                log_q: 9, // q = 512 = 2N for N = 256
                plaintext_modulus: 8,
                sigma_int: 0.4,
            },
            ring_degree: 256,
            ring_modulus_bits: 27,
            gadget_log_base: 9,
            gadget_levels: 3,
            ks_log_base: 7,
            ks_levels: 4,
            rlwe_sigma: 3.2,
        }
    }

    fn setup(params: BootstrapParams) -> (LweContext, LweSecretKey, BootstrapContext, StdRng) {
        let ctx = LweContext::new(params.lwe).expect("lwe params");
        let mut rng = StdRng::seed_from_u64(17);
        let sk = ctx.generate_key(&mut rng);
        let boot = BootstrapContext::generate(&params, &ctx, &sk, &mut rng).expect("keygen");
        (ctx, sk, boot, rng)
    }

    #[test]
    fn identity_lut_refreshes_messages() {
        let (ctx, sk, boot, mut rng) = setup(toy_params());
        let t = ctx.params().plaintext_modulus;
        let identity: Vec<u64> = (0..t).collect();
        for m in 0..t / 2 {
            let ct = ctx.encrypt(&sk, m, &mut rng).expect("encrypt");
            let out = boot.bootstrap(&ct, &identity).expect("bootstrap");
            assert_eq!(ctx.decrypt(&sk, &out), m, "identity LUT at m = {m}");
        }
    }

    #[test]
    fn nonlinear_lut_square() {
        let (ctx, sk, boot, mut rng) = setup(toy_params());
        let t = ctx.params().plaintext_modulus;
        let square: Vec<u64> = (0..t).map(|x| (x * x) % t).collect();
        for m in 0..t / 2 {
            let ct = ctx.encrypt(&sk, m, &mut rng).expect("encrypt");
            let out = boot.bootstrap(&ct, &square).expect("bootstrap");
            assert_eq!(ctx.decrypt(&sk, &out), (m * m) % t, "square LUT at m = {m}");
        }
    }

    #[test]
    fn bootstrap_after_homomorphic_additions() {
        // The use-case the paper's S IV-B2 describes: accumulate
        // homomorphically, then apply a non-linear function exactly.
        let (ctx, sk, boot, mut rng) = setup(toy_params());
        let t = ctx.params().plaintext_modulus;
        let threshold: Vec<u64> = (0..t).map(|x| u64::from(x >= 2)).collect();
        let c1 = ctx.encrypt(&sk, 1, &mut rng).expect("encrypt");
        let c2 = ctx.encrypt(&sk, 2, &mut rng).expect("encrypt");
        let sum = ctx.add(&c1, &c2).expect("add"); // encrypts 3
        let out = boot.bootstrap(&sum, &threshold).expect("bootstrap");
        assert_eq!(ctx.decrypt(&sk, &out), 1, "threshold(3) = 1");
    }

    #[test]
    fn bootstrap_output_supports_further_additions() {
        // Fresh-noise output: two bootstrapped results can be combined.
        let (ctx, sk, boot, mut rng) = setup(toy_params());
        let t = ctx.params().plaintext_modulus;
        let identity: Vec<u64> = (0..t).collect();
        let c1 = ctx.encrypt(&sk, 1, &mut rng).expect("encrypt");
        let c2 = ctx.encrypt(&sk, 2, &mut rng).expect("encrypt");
        let b1 = boot.bootstrap(&c1, &identity).expect("bootstrap");
        let b2 = boot.bootstrap(&c2, &identity).expect("bootstrap");
        let sum = ctx.add(&b1, &b2).expect("add");
        assert_eq!(ctx.decrypt(&sk, &sum), 3);
    }

    #[test]
    fn lut_validation() {
        let (ctx, sk, boot, mut rng) = setup(toy_params());
        let ct = ctx.encrypt(&sk, 1, &mut rng).expect("encrypt");
        assert!(boot.bootstrap(&ct, &[0, 1]).is_err(), "wrong LUT length");
        let bad: Vec<u64> = (0..8).map(|_| 99).collect();
        assert!(boot.bootstrap(&ct, &bad).is_err(), "LUT values out of range");
    }

    #[test]
    fn params_validation() {
        let mut p = toy_params();
        p.ring_degree = 128; // q != 2N
        assert!(p.validate().is_err());
        let mut p = toy_params();
        p.gadget_levels = 1; // 2^9 < 2^27
        assert!(p.validate().is_err());
        assert!(toy_params().validate().is_ok());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "full FHEW parameters are slow in debug builds")]
    fn paper_parameters_bootstrap() {
        // The real TFHE-3 base scheme (n = 448, q = 2^10) with N = 512.
        let (ctx, sk, boot, mut rng) = setup(BootstrapParams::default());
        let t = ctx.params().plaintext_modulus;
        assert_eq!(t, 16);
        let relu_shift: Vec<u64> = (0..t).map(|x| x.saturating_sub(3)).collect();
        for m in [0u64, 2, 5, 7] {
            let ct = ctx.encrypt(&sk, m, &mut rng).expect("encrypt");
            let out = boot.bootstrap(&ct, &relu_shift).expect("bootstrap");
            assert_eq!(ctx.decrypt(&sk, &out), m.saturating_sub(3), "m = {m}");
        }
    }
}
