//! TFHE/FHEW programmable bootstrapping.
//!
//! The paper's design-space discussion (§IV-B2) picks TFHE over CKKS
//! when "high-precision non-linear operations are prioritized": *"TFHE
//! is known to support an arbitrary LUT without losing integer
//! precision."* This module implements that capability — the GINX/CGGI
//! blind-rotation bootstrap over an NTT-friendly accumulator ring, as in
//! FHEW/OpenFHE:
//!
//! 1. **Blind rotation** — an RLWE accumulator initialized with the LUT
//!    test vector is rotated by the encrypted phase using one CMUX (an
//!    RGSW external product) per LWE secret bit;
//! 2. **Sample extraction** — coefficient 0 of the accumulator becomes
//!    an LWE ciphertext of `f(m)` under the accumulator key;
//! 3. **Key switching** — back to the original LWE dimension;
//! 4. **Modulus switching** — back to the original LWE modulus.
//!
//! The LWE layer is the paper-parameterized scheme from
//! [`crate::lwe`]; bootstrapping requires `q = 2N` so ring exponents and
//! LWE phases align (e.g. `q = 2^10`, `N = 512` — exactly the Table III
//! TFHE modulus).
//!
//! # Domain restriction
//!
//! The accumulator ring is negacyclic (`X^N = −1`), so a *single*
//! bootstrap can evaluate an arbitrary function only on messages in
//! `[0, t/2)`; phases in the upper half return the negated LUT value.
//! This is the standard TFHE functional-bootstrap constraint; callers
//! keep one spare message bit (as every TFHE-based system does).
//!
//! # Examples
//!
//! ```no_run
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_fhe::lwe::LweContext;
//! use rhychee_fhe::tfhe_boot::{BootstrapContext, BootstrapParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = BootstrapParams::default();
//! let ctx = LweContext::new(params.lwe)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let sk = ctx.generate_key(&mut rng);
//! let boot = BootstrapContext::generate(&params, &ctx, &sk, &mut rng)?;
//! // Square each message (mod 8), homomorphically and exactly.
//! let lut: Vec<u64> = (0..8).map(|x| (x * x) % 8).collect();
//! let ct = ctx.encrypt(&sk, 3, &mut rng)?;
//! let squared = boot.bootstrap(&ct, &lut)?;
//! assert_eq!(ctx.decrypt(&sk, &squared), 1); // 3² mod 8
//! # Ok(())
//! # }
//! ```

mod bootstrap;
mod rlwe;

pub use bootstrap::{BootstrapContext, BootstrapParams};
pub use rlwe::{GadgetDecomposer, RgswCiphertext, RlweCiphertext};
