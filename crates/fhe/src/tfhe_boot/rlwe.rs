//! RLWE/RGSW machinery for the bootstrap accumulator: gadget
//! decomposition, external products, and the CMUX gate.
//!
//! The accumulator ring is `Z_Q[X]/(X^N + 1)` with an NTT-friendly prime
//! `Q`, so every polynomial product runs through the same
//! [`NttTable`](crate::ckks::ntt::NttTable) backend as CKKS.

use rand::Rng;

use crate::ckks::modarith::{add_mod, mul_mod, sub_mod};
use crate::ckks::ntt::NttTable;
use crate::sampling::{gaussian_vec, ternary_vec};

/// An RLWE ciphertext `(a, b)` with `b = a·s + e + m`, coefficient
/// domain, modulus `Q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlweCiphertext {
    /// Mask polynomial.
    pub a: Vec<u64>,
    /// Body polynomial.
    pub b: Vec<u64>,
}

impl RlweCiphertext {
    /// The all-zero (trivial, noiseless) encryption of `m`.
    pub fn trivial(m: Vec<u64>) -> Self {
        RlweCiphertext { a: vec![0; m.len()], b: m }
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.b.len()
    }

    /// Adds another ciphertext in place.
    pub fn add_assign(&mut self, rhs: &RlweCiphertext, q: u64) {
        for (x, &y) in self.a.iter_mut().zip(&rhs.a) {
            *x = add_mod(*x, y, q);
        }
        for (x, &y) in self.b.iter_mut().zip(&rhs.b) {
            *x = add_mod(*x, y, q);
        }
    }

    /// Multiplies by the monomial `X^k` (negacyclic rotation), `k` taken
    /// modulo `2N`.
    pub fn rotate(&self, k: usize, q: u64) -> RlweCiphertext {
        RlweCiphertext { a: rotate_poly(&self.a, k, q), b: rotate_poly(&self.b, k, q) }
    }
}

/// Negacyclic multiplication of a polynomial by `X^k`.
pub fn rotate_poly(p: &[u64], k: usize, q: u64) -> Vec<u64> {
    let n = p.len();
    let k = k % (2 * n);
    let mut out = vec![0u64; n];
    for (i, &c) in p.iter().enumerate() {
        let j = (i + k) % (2 * n);
        if j < n {
            out[j] = add_mod(out[j], c, q);
        } else {
            out[j - n] = sub_mod(out[j - n], c, q);
        }
    }
    out
}

/// Signed base-B gadget decomposition.
///
/// Splits each coefficient into `levels` digits such that
/// `Σ digit_j · B^j = x̃` exactly, where `x̃` is the centred lift of `x`.
/// The low `levels − 1` digits are balanced into `[−B/2, B/2)`; the top
/// digit absorbs the final carry and is bounded by `B/2 + 1`, which
/// keeps the decomposition exact across the whole centred range even
/// when `B^levels` only barely covers `Q` (balanced digits alone top out
/// at `(B/2 − 1)·(B^levels − 1)/(B − 1) < Q/2` in that regime). Signed
/// digits halve the noise growth of external products versus plain
/// positional digits.
#[derive(Debug, Clone)]
pub struct GadgetDecomposer {
    q: u64,
    log_base: u32,
    levels: usize,
}

impl GadgetDecomposer {
    /// Creates a decomposer with base `2^log_base` and `levels` digits.
    ///
    /// # Panics
    ///
    /// Panics unless `levels · log_base` covers the modulus bits.
    pub fn new(q: u64, log_base: u32, levels: usize) -> Self {
        let q_bits = 64 - (q - 1).leading_zeros();
        assert!(
            levels as u32 * log_base >= q_bits,
            "gadget {levels} x 2^{log_base} does not cover a {q_bits}-bit modulus"
        );
        GadgetDecomposer { q, log_base, levels }
    }

    /// Number of digits per coefficient.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The gadget factors `B^j` for `j = 0..levels`.
    pub fn factors(&self) -> Vec<u64> {
        (0..self.levels).map(|j| 1u64 << (self.log_base * j as u32)).collect()
    }

    /// Decomposes a polynomial into `levels` signed-digit polynomials
    /// (each returned as residues mod Q).
    ///
    /// Coefficients are first lifted to their centred representative in
    /// `(−Q/2, Q/2]`, which signed digits of `levels` base-B positions
    /// cover exactly (the constructor guarantees `B^levels ≥ Q`).
    pub fn decompose(&self, poly: &[u64]) -> Vec<Vec<u64>> {
        let base = 1i64 << self.log_base;
        let half = base / 2;
        let mut out = vec![vec![0u64; poly.len()]; self.levels];
        for (i, &x) in poly.iter().enumerate() {
            // Centred lift.
            let mut v: i64 = if x > self.q / 2 { x as i64 - self.q as i64 } else { x as i64 };
            for (j, level) in out.iter_mut().enumerate() {
                let digit = if j + 1 == self.levels {
                    // The top digit takes the remainder verbatim: after
                    // `levels − 1` centred-rounding steps |v| ≤ B/2 + 1,
                    // so this stays a small digit and the sum is exact.
                    std::mem::take(&mut v)
                } else {
                    let mut d = v.rem_euclid(base);
                    v = v.div_euclid(base);
                    if d >= half {
                        d -= base;
                        v += 1;
                    }
                    d
                };
                debug_assert!(digit.unsigned_abs() <= (base as u64) / 2 + 1);
                level[i] = if digit < 0 { self.q - (-digit as u64) } else { digit as u64 };
            }
        }
        out
    }
}

/// An RGSW ciphertext: `2·levels` RLWE rows encrypting `m·B^j` in the
/// two gadget columns, stored in the NTT domain for fast external
/// products.
#[derive(Debug, Clone)]
pub struct RgswCiphertext {
    /// Rows encrypting `−s·m·B^j` in the `a` slot ("a-column"), NTT domain.
    rows_a: Vec<(Vec<u64>, Vec<u64>)>,
    /// Rows encrypting `m·B^j` in the `b` slot ("b-column"), NTT domain.
    rows_b: Vec<(Vec<u64>, Vec<u64>)>,
}

impl RgswCiphertext {
    /// Encrypts a small integer `m` (typically a secret bit) under the
    /// RLWE key `s` (coefficient domain, signed).
    pub fn encrypt<R: Rng + ?Sized>(
        m: u64,
        s: &[i64],
        table: &NttTable,
        decomposer: &GadgetDecomposer,
        sigma: f64,
        rng: &mut R,
    ) -> Self {
        let q = table.modulus();
        let n = table.degree();
        let s_res: Vec<u64> =
            s.iter().map(|&c| ((c % q as i64 + q as i64) % q as i64) as u64).collect();
        let mut s_ntt = s_res.clone();
        table.forward(&mut s_ntt);

        let fresh_rlwe = |message: &[u64], rng: &mut R| -> (Vec<u64>, Vec<u64>) {
            // b = a·s + e + message
            let mut a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let mut a_ntt = a.clone();
            table.forward(&mut a_ntt);
            let mut b_ntt: Vec<u64> =
                a_ntt.iter().zip(&s_ntt).map(|(&x, &y)| mul_mod(x, y, q)).collect();
            table.inverse(&mut b_ntt);
            let e = gaussian_vec(rng, n, sigma);
            for ((bi, &ei), &mi) in b_ntt.iter_mut().zip(&e).zip(message) {
                let e_res = ((ei % q as i64 + q as i64) % q as i64) as u64;
                *bi = add_mod(add_mod(*bi, e_res, q), mi, q);
            }
            // Store both halves in NTT domain.
            table.forward(&mut a);
            table.forward(&mut b_ntt);
            (a, b_ntt)
        };

        let factors = decomposer.factors();
        let mut rows_a = Vec::with_capacity(factors.len());
        let mut rows_b = Vec::with_capacity(factors.len());
        for &f in &factors {
            let scaled = mul_mod(m % q, f % q, q);
            // a-column row: RLWE(0) + (scaled, 0)·... i.e. add scaled to `a`.
            let (mut a0, b0) = fresh_rlwe(&vec![0u64; n], rng);
            // Adding `scaled` to the a-part corresponds to encrypting −s·m·B^j.
            let mut scaled_ntt = vec![0u64; n];
            scaled_ntt[0] = scaled;
            table.forward(&mut scaled_ntt);
            for (x, &y) in a0.iter_mut().zip(&scaled_ntt) {
                *x = add_mod(*x, y, q);
            }
            rows_a.push((a0, b0));
            // b-column row: RLWE(m·B^j).
            let mut msg = vec![0u64; n];
            msg[0] = scaled;
            rows_b.push(fresh_rlwe(&msg, rng));
        }
        RgswCiphertext { rows_a, rows_b }
    }

    /// External product `self ⊡ ct`: multiplies the RGSW plaintext into
    /// the RLWE ciphertext. `ct` is in coefficient domain; so is the
    /// result.
    pub fn external_product(
        &self,
        ct: &RlweCiphertext,
        table: &NttTable,
        decomposer: &GadgetDecomposer,
    ) -> RlweCiphertext {
        let q = table.modulus();
        let n = table.degree();
        let dig_a = decomposer.decompose(&ct.a);
        let dig_b = decomposer.decompose(&ct.b);
        let mut acc_a = vec![0u64; n];
        let mut acc_b = vec![0u64; n];
        for (level, (da, db)) in dig_a.iter().zip(&dig_b).enumerate() {
            let mut da_ntt = da.clone();
            let mut db_ntt = db.clone();
            table.forward(&mut da_ntt);
            table.forward(&mut db_ntt);
            let (ra, rb_of_a) = &self.rows_a[level];
            let (rb_a, rb_b) = &self.rows_b[level];
            for i in 0..n {
                // a-digit hits the a-column rows, b-digit the b-column rows.
                let ta = add_mod(mul_mod(da_ntt[i], ra[i], q), mul_mod(db_ntt[i], rb_a[i], q), q);
                let tb =
                    add_mod(mul_mod(da_ntt[i], rb_of_a[i], q), mul_mod(db_ntt[i], rb_b[i], q), q);
                acc_a[i] = add_mod(acc_a[i], ta, q);
                acc_b[i] = add_mod(acc_b[i], tb, q);
            }
        }
        table.inverse(&mut acc_a);
        table.inverse(&mut acc_b);
        RlweCiphertext { a: acc_a, b: acc_b }
    }

    /// The GINX CMUX accumulator step:
    /// `acc ← acc + (X^k − 1) ⊙ (self ⊡ acc)`.
    ///
    /// When the RGSW plaintext is a secret bit `s_i`, this multiplies the
    /// accumulator by `X^{k·s_i}`.
    pub fn cmux_rotate(
        &self,
        acc: &RlweCiphertext,
        k: usize,
        table: &NttTable,
        decomposer: &GadgetDecomposer,
    ) -> RlweCiphertext {
        let q = table.modulus();
        let prod = self.external_product(acc, table, decomposer);
        // (X^k − 1)·prod = rotate(prod, k) − prod.
        let rotated = prod.rotate(k, q);
        let mut out = acc.clone();
        for i in 0..out.a.len() {
            out.a[i] = add_mod(out.a[i], sub_mod(rotated.a[i], prod.a[i], q), q);
            out.b[i] = add_mod(out.b[i], sub_mod(rotated.b[i], prod.b[i], q), q);
        }
        out
    }
}

/// Decrypts an RLWE ciphertext (test helper): `m = b − a·s`.
#[cfg(test)]
pub fn rlwe_decrypt(ct: &RlweCiphertext, s: &[i64], table: &NttTable) -> Vec<u64> {
    let q = table.modulus();
    let s_res: Vec<u64> =
        s.iter().map(|&c| ((c % q as i64 + q as i64) % q as i64) as u64).collect();
    let a_s = table.multiply(&ct.a, &s_res);
    ct.b.iter().zip(&a_s).map(|(&b, &x)| sub_mod(b, x, q)).collect()
}

/// Samples a ternary RLWE key in signed form.
pub fn sample_rlwe_key<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<i64> {
    ternary_vec(rng, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckks::modarith::find_ntt_primes;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (NttTable, GadgetDecomposer, Vec<i64>, StdRng) {
        let n = 64usize;
        let q = find_ntt_primes(27, 1, 2 * n as u64)[0];
        let table = NttTable::new(n, q);
        let decomposer = GadgetDecomposer::new(q, 9, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let key = sample_rlwe_key(n, &mut rng);
        (table, decomposer, key, rng)
    }

    /// Max absolute centred error of a decrypted RLWE message.
    fn max_err(decrypted: &[u64], expected: &[u64], q: u64) -> u64 {
        decrypted
            .iter()
            .zip(expected)
            .map(|(&d, &e)| {
                let diff = (d + q - e) % q;
                diff.min(q - diff)
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn gadget_decomposition_reconstructs() {
        let (table, decomposer, _, mut rng) = setup();
        let q = table.modulus();
        let poly: Vec<u64> =
            (0..table.degree()).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();
        let digits = decomposer.decompose(&poly);
        let factors = decomposer.factors();
        let mut recon = vec![0u64; poly.len()];
        for (digit_poly, &f) in digits.iter().zip(&factors) {
            for (r, &d) in recon.iter_mut().zip(digit_poly) {
                *r = add_mod(*r, mul_mod(d, f % q, q), q);
            }
        }
        // The top digit absorbs the final carry, so signed decomposition
        // reconstructs exactly modulo Q.
        let err = max_err(&recon, &poly, q);
        assert_eq!(err, 0, "reconstruction error {err}");
    }

    #[test]
    fn gadget_decomposition_covers_the_centred_extremes() {
        // Regression: with q close to B^levels, balanced digits alone top
        // out at (B/2 − 1)·(B³ − 1)/(B − 1) < q/2 and values near ±q/2
        // used to leave a nonzero final carry (observed at x = 66995341,
        // q = 134215681).
        let q = 134_215_681u64;
        let decomposer = GadgetDecomposer::new(q, 9, 3);
        let factors = decomposer.factors();
        for x in [66_995_341, q / 2, q / 2 + 1, q - 1, 1, 0, 66_977_535, 66_977_536] {
            let digits = decomposer.decompose(&[x]);
            let mut recon = 0u64;
            for (digit_poly, &f) in digits.iter().zip(&factors) {
                recon = add_mod(recon, mul_mod(digit_poly[0], f % q, q), q);
            }
            assert_eq!(recon, x % q, "exact reconstruction of {x}");
        }
    }

    #[test]
    fn digits_are_centred() {
        let (table, decomposer, _, mut rng) = setup();
        let q = table.modulus();
        let poly: Vec<u64> =
            (0..table.degree()).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();
        let half = 1u64 << 8; // B/2 for B = 2^9
        for digit_poly in decomposer.decompose(&poly) {
            for &d in &digit_poly {
                let centred = d.min(q - d);
                // The top digit may carry one unit past B/2.
                assert!(centred <= half + 1, "digit {d} exceeds B/2 + 1");
            }
        }
    }

    #[test]
    fn rotate_poly_negacyclic() {
        let q = 97u64;
        let p = vec![1u64, 2, 3, 0];
        // X^1: (0,1,2,3) with wrap 3·X^4 = -3.
        assert_eq!(rotate_poly(&p, 1, q), vec![0, 1, 2, 3]);
        assert_eq!(rotate_poly(&p, 2, q), vec![q - 3, 0, 1, 2]);
        // Full 2N rotation is the identity.
        assert_eq!(rotate_poly(&p, 8, q), p);
        // X^N = −1.
        assert_eq!(rotate_poly(&p, 4, q), vec![q - 1, q - 2, q - 3, 0]);
    }

    #[test]
    fn external_product_by_one_preserves_message() {
        let (table, decomposer, key, mut rng) = setup();
        let q = table.modulus();
        let n = table.degree();
        // Message scaled well above the noise floor.
        let delta = q / 16;
        let mut m = vec![0u64; n];
        m[0] = delta;
        m[3] = mul_mod(3, delta, q);
        let ct = RlweCiphertext::trivial(m.clone());
        let rgsw_one = RgswCiphertext::encrypt(1, &key, &table, &decomposer, 3.2, &mut rng);
        let out = rgsw_one.external_product(&ct, &table, &decomposer);
        let dec = rlwe_decrypt(&out, &key, &table);
        let err = max_err(&dec, &m, q);
        assert!(err < delta / 8, "noise {err} too large vs delta {delta}");
    }

    #[test]
    fn external_product_by_zero_annihilates() {
        let (table, decomposer, key, mut rng) = setup();
        let q = table.modulus();
        let n = table.degree();
        let mut m = vec![0u64; n];
        m[0] = q / 4;
        let ct = RlweCiphertext::trivial(m);
        let rgsw_zero = RgswCiphertext::encrypt(0, &key, &table, &decomposer, 3.2, &mut rng);
        let out = rgsw_zero.external_product(&ct, &table, &decomposer);
        let dec = rlwe_decrypt(&out, &key, &table);
        let err = max_err(&dec, &vec![0u64; n], q);
        assert!(err < q / 64, "zero product must leave only noise, got {err}");
    }

    #[test]
    fn cmux_rotates_when_bit_set() {
        let (table, decomposer, key, mut rng) = setup();
        let q = table.modulus();
        let n = table.degree();
        let delta = q / 16;
        let mut m = vec![0u64; n];
        m[0] = delta;
        let acc = RlweCiphertext::trivial(m.clone());

        // Bit = 1: accumulator rotates by X^k.
        let rgsw_one = RgswCiphertext::encrypt(1, &key, &table, &decomposer, 3.2, &mut rng);
        let rotated = rgsw_one.cmux_rotate(&acc, 5, &table, &decomposer);
        let dec = rlwe_decrypt(&rotated, &key, &table);
        let expected = rotate_poly(&m, 5, q);
        assert!(max_err(&dec, &expected, q) < delta / 8);

        // Bit = 0: accumulator unchanged.
        let rgsw_zero = RgswCiphertext::encrypt(0, &key, &table, &decomposer, 3.2, &mut rng);
        let same = rgsw_zero.cmux_rotate(&acc, 5, &table, &decomposer);
        let dec = rlwe_decrypt(&same, &key, &table);
        assert!(max_err(&dec, &m, q) < delta / 8);
    }

    #[test]
    fn chained_cmux_accumulates_rotations() {
        let (table, decomposer, key, mut rng) = setup();
        let q = table.modulus();
        let n = table.degree();
        let delta = q / 16;
        let mut m = vec![0u64; n];
        m[0] = delta;
        let mut acc = RlweCiphertext::trivial(m.clone());
        let bits = [1u64, 0, 1, 1];
        let ks = [3usize, 7, 11, 2];
        let mut total = 0usize;
        for (&bit, &k) in bits.iter().zip(&ks) {
            let rgsw = RgswCiphertext::encrypt(bit, &key, &table, &decomposer, 3.2, &mut rng);
            acc = rgsw.cmux_rotate(&acc, k, &table, &decomposer);
            total += bit as usize * k;
        }
        let dec = rlwe_decrypt(&acc, &key, &table);
        let expected = rotate_poly(&m, total, q);
        assert!(max_err(&dec, &expected, q) < delta / 4, "chained CMUX drifted");
    }
}
