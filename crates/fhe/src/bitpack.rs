//! Bit-level packing for ciphertext wire formats.
//!
//! Ciphertext sizes in the paper are counted in *bits* (`2N·log Q` for
//! RLWE, `(n+1)·log q` for LWE). Packing each residue at exactly
//! `⌈log2 q⌉` bits makes our serialized sizes match the analytical
//! formulas, which the channel experiments depend on.

use crate::error::FheError;

/// Append-only bit writer (little-endian within bytes).
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    bit_pos: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `bits` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64` or if `value` has bits set above `bits`.
    pub fn write_bits(&mut self, value: u64, bits: u32) {
        assert!(bits <= 64, "cannot write more than 64 bits at once");
        assert!(bits == 64 || value < (1u64 << bits), "value {value} does not fit in {bits} bits");
        for i in 0..bits {
            let byte = self.bit_pos / 8;
            let off = self.bit_pos % 8;
            if byte == self.buf.len() {
                self.buf.push(0);
            }
            if (value >> i) & 1 == 1 {
                self.buf[byte] |= 1 << off;
            }
            self.bit_pos += 1;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_pos
    }

    /// Finishes writing and returns the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, bit_pos: 0 }
    }

    /// Reads the next `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Deserialize`] if the buffer is exhausted.
    pub fn read_bits(&mut self, bits: u32) -> Result<u64, FheError> {
        assert!(bits <= 64, "cannot read more than 64 bits at once");
        if self.bit_pos + bits as usize > self.buf.len() * 8 {
            return Err(FheError::Deserialize(format!(
                "unexpected end of buffer at bit {}",
                self.bit_pos
            )));
        }
        let mut value = 0u64;
        for i in 0..bits {
            let byte = self.bit_pos / 8;
            let off = self.bit_pos % 8;
            if (self.buf[byte] >> off) & 1 == 1 {
                value |= 1 << i;
            }
            self.bit_pos += 1;
        }
        Ok(value)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.bit_pos
    }
}

/// Number of bits needed to represent values in `[0, q)`.
pub fn bits_for(q: u64) -> u32 {
    64 - (q - 1).leading_zeros()
}

/// Integer payload budget of one CKKS slot under bit-interleaved
/// packing, in bits.
///
/// A packed slot travels through the encoder as an `f64` and comes back
/// from decryption with an absolute error well below `0.5` at the
/// workspace scales (≥ 2^26), so exact recovery needs the packed
/// integer to stay (a) inside the `f64` mantissa and (b) small enough
/// that the canonical-embedding round trip's *relative* error
/// (~`2^-52 · √N` per slot) keeps the absolute error under the rounding
/// threshold. 32 bits leaves ~20 bits of margin at `N = 8192` — the
/// conservative choice, since a mis-rounded lane corrupts a gradient
/// coordinate silently.
pub const SLOT_PAYLOAD_BITS: u32 = 32;

/// How flat model coordinates map onto CKKS ciphertext slots.
///
/// `Dense` is the paper's layout — one `f32` coordinate per slot.
/// `BitInterleaved` (FedBit-style co-design) quantizes each coordinate
/// to `bits` bits and packs several per slot at a stride wide enough
/// that homomorphically *summing* up to `max_clients` uploads never
/// carries across lane boundaries; the per-client mean is recovered
/// after decryption. Fewer slots per model means fewer ciphertexts,
/// and therefore fewer NTTs, per upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackingLayout {
    /// One coordinate per slot, full `f32` precision.
    Dense,
    /// `bits`-bit quantized coordinates, several per slot.
    BitInterleaved {
        /// Quantization width per coordinate, including the sign
        /// (biased-unsigned on the wire). Must satisfy
        /// `2 ≤ bits` and `bits + ⌈log2 max_clients⌉ ≤`
        /// [`SLOT_PAYLOAD_BITS`].
        bits: u32,
    },
}

impl PackingLayout {
    /// Stride of one packed coordinate in bits: the quantization width
    /// plus headroom for summing `max_clients` lane values without
    /// carry (`max_clients · (2^bits − 1) < 2^lane_bits`).
    ///
    /// # Panics
    ///
    /// Panics on `Dense` (which has no lane structure) and on
    /// `max_clients == 0`.
    pub fn lane_bits(&self, max_clients: usize) -> u32 {
        match self {
            PackingLayout::Dense => panic!("Dense layout has no lanes"),
            PackingLayout::BitInterleaved { bits } => {
                assert!(max_clients > 0, "max_clients must be positive");
                bits + ceil_log2(max_clients)
            }
        }
    }

    /// Coordinates carried per slot: `Dense` → 1;
    /// `BitInterleaved` → `SLOT_PAYLOAD_BITS / lane_bits` (≥ 1 for any
    /// layout that passes [`PackingLayout::validate`]).
    pub fn lanes_per_slot(&self, max_clients: usize) -> usize {
        match self {
            PackingLayout::Dense => 1,
            PackingLayout::BitInterleaved { .. } => {
                (SLOT_PAYLOAD_BITS / self.lane_bits(max_clients)) as usize
            }
        }
    }

    /// Checks that the layout can pack at least one coordinate per slot
    /// with carry-free headroom for `max_clients` summands.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] when `bits < 2` (no room for
    /// a sign) or the lane stride exceeds [`SLOT_PAYLOAD_BITS`].
    pub fn validate(&self, max_clients: usize) -> Result<(), FheError> {
        if let PackingLayout::BitInterleaved { bits } = *self {
            if bits < 2 {
                return Err(FheError::InvalidParams(format!(
                    "BitInterleaved needs at least 2 bits per coordinate, got {bits}"
                )));
            }
            if max_clients == 0 {
                return Err(FheError::InvalidParams("max_clients must be positive".into()));
            }
            let lane = bits + ceil_log2(max_clients);
            if lane > SLOT_PAYLOAD_BITS {
                return Err(FheError::InvalidParams(format!(
                    "lane stride {lane} bits ({bits} + ⌈log2 {max_clients}⌉) exceeds the \
                     {SLOT_PAYLOAD_BITS}-bit slot payload budget"
                )));
            }
        }
        Ok(())
    }
}

/// `⌈log2 n⌉` for `n ≥ 1`.
fn ceil_log2(n: usize) -> u32 {
    usize::BITS - (n - 1).leading_zeros()
}

/// Packs lane values (each `< 2^lane_bits`) into one slot word,
/// lane 0 in the least-significant bits.
///
/// # Panics
///
/// Panics when a value overflows its lane or the lanes overflow 64
/// bits — both are internal invariant breaches, not wire-input paths.
pub fn pack_lanes(vals: &[u64], lane_bits: u32) -> u64 {
    assert!(vals.len() as u32 * lane_bits <= 64, "lanes overflow the slot word");
    let mut word = 0u64;
    for (i, &v) in vals.iter().enumerate() {
        assert!(lane_bits == 64 || v < (1u64 << lane_bits), "value {v} overflows {lane_bits} bits");
        word |= v << (i as u32 * lane_bits);
    }
    word
}

/// Extracts lane `lane` (0-based from the least-significant bits) from
/// a packed slot word.
pub fn unpack_lane(word: u64, lane: usize, lane_bits: u32) -> u64 {
    let mask = if lane_bits == 64 { u64::MAX } else { (1u64 << lane_bits) - 1 };
    (word >> (lane as u32 * lane_bits)) & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 1);
        w.write_bits(u64::MAX, 64);
        let expected_bits = 3 + 16 + 1 + 64;
        assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), expected_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn random_round_trip() {
        let mut rng = StdRng::seed_from_u64(8);
        let entries: Vec<(u64, u32)> = (0..500)
            .map(|_| {
                let bits = rng.gen_range(1..=63);
                let value = rng.gen::<u64>() & ((1u64 << bits) - 1);
                (value, bits)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, b) in &entries {
            w.write_bits(v, b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, b) in &entries {
            assert_eq!(r.read_bits(b).unwrap(), v);
        }
    }

    #[test]
    fn read_past_end_errors() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.read_bits(8).unwrap(); // the padded byte is readable
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.write_bits(8, 3);
    }

    #[test]
    fn boundary_width_writes_cross_bytes() {
        // 1-, 63- and 64-bit writes at deliberately unaligned bit
        // positions: every write below starts mid-byte.
        let mut w = BitWriter::new();
        w.write_bits(1, 3); // misalign
        w.write_bits(1, 1);
        w.write_bits((1u64 << 63) - 1, 63);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        w.write_bits(1u64 << 62, 63);
        assert_eq!(w.bit_len(), 3 + 1 + 63 + 64 + 1 + 63);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 1);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(63).unwrap(), (1u64 << 63) - 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(63).unwrap(), 1u64 << 62);
    }

    #[test]
    fn read_past_end_is_positional() {
        // A 64-bit read one bit short of the buffer must fail without
        // consuming anything, then succeed at the right width.
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(17).is_err());
        assert_eq!(r.bit_pos(), 0, "failed read must not consume bits");
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert!(r.read_bits(64).is_err());
    }

    #[test]
    fn lane_round_trip_at_exact_budget() {
        // The exact per-lane budget BitInterleaved uses: bits + ⌈log2 P⌉
        // headroom, lanes_per_slot lanes filling SLOT_PAYLOAD_BITS.
        let layout = PackingLayout::BitInterleaved { bits: 8 };
        for p in [1usize, 2, 3, 4, 7, 8, 16] {
            layout.validate(p).expect("valid");
            let lane_bits = layout.lane_bits(p);
            let lanes = layout.lanes_per_slot(p);
            assert!(lanes as u32 * lane_bits <= SLOT_PAYLOAD_BITS);
            // Worst-case lane value: P clients each contributing the
            // maximum biased coordinate.
            let max_sum = p as u64 * ((1u64 << 8) - 1);
            assert!(max_sum < 1u64 << lane_bits, "P={p}: sums must not carry across lanes");
            let vals: Vec<u64> = (0..lanes).map(|i| max_sum - i as u64).collect();
            let word = pack_lanes(&vals, lane_bits);
            assert!(word < 1u64 << SLOT_PAYLOAD_BITS);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(unpack_lane(word, i, lane_bits), v);
            }
            // The same values survive a BitWriter/BitReader trip at the
            // lane width — the wire-level counterpart.
            let mut w = BitWriter::new();
            for &v in &vals {
                w.write_bits(v, lane_bits);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &vals {
                assert_eq!(r.read_bits(lane_bits).unwrap(), v);
            }
        }
    }

    #[test]
    fn layout_validation_and_density() {
        assert!(PackingLayout::Dense.validate(0).is_ok(), "Dense ignores clients");
        assert_eq!(PackingLayout::Dense.lanes_per_slot(4), 1);
        let l8 = PackingLayout::BitInterleaved { bits: 8 };
        // P=4 → lane 10 bits → 3 lanes in 32.
        assert_eq!(l8.lane_bits(4), 10);
        assert_eq!(l8.lanes_per_slot(4), 3);
        // P=1 → no headroom → 4 lanes.
        assert_eq!(l8.lane_bits(1), 8);
        assert_eq!(l8.lanes_per_slot(1), 4);
        assert!(PackingLayout::BitInterleaved { bits: 1 }.validate(4).is_err(), "too narrow");
        assert!(PackingLayout::BitInterleaved { bits: 31 }.validate(4).is_err(), "no lane fits");
        assert!(l8.validate(0).is_err(), "zero clients");
        assert!(PackingLayout::BitInterleaved { bits: 30 }.validate(8).is_err());
        assert!(
            PackingLayout::BitInterleaved { bits: 30 }.validate(4).is_ok(),
            "exactly at budget"
        );
    }

    #[test]
    fn bits_for_moduli() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(1024), 10);
        assert_eq!(bits_for(1025), 11);
        assert_eq!(bits_for(1u64 << 61), 61);
        assert_eq!(bits_for((1u64 << 61) - 1), 61);
    }
}
