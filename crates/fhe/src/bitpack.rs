//! Bit-level packing for ciphertext wire formats.
//!
//! Ciphertext sizes in the paper are counted in *bits* (`2N·log Q` for
//! RLWE, `(n+1)·log q` for LWE). Packing each residue at exactly
//! `⌈log2 q⌉` bits makes our serialized sizes match the analytical
//! formulas, which the channel experiments depend on.

use crate::error::FheError;

/// Append-only bit writer (little-endian within bytes).
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    bit_pos: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `bits` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64` or if `value` has bits set above `bits`.
    pub fn write_bits(&mut self, value: u64, bits: u32) {
        assert!(bits <= 64, "cannot write more than 64 bits at once");
        assert!(bits == 64 || value < (1u64 << bits), "value {value} does not fit in {bits} bits");
        for i in 0..bits {
            let byte = self.bit_pos / 8;
            let off = self.bit_pos % 8;
            if byte == self.buf.len() {
                self.buf.push(0);
            }
            if (value >> i) & 1 == 1 {
                self.buf[byte] |= 1 << off;
            }
            self.bit_pos += 1;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_pos
    }

    /// Finishes writing and returns the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, bit_pos: 0 }
    }

    /// Reads the next `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Deserialize`] if the buffer is exhausted.
    pub fn read_bits(&mut self, bits: u32) -> Result<u64, FheError> {
        assert!(bits <= 64, "cannot read more than 64 bits at once");
        if self.bit_pos + bits as usize > self.buf.len() * 8 {
            return Err(FheError::Deserialize(format!(
                "unexpected end of buffer at bit {}",
                self.bit_pos
            )));
        }
        let mut value = 0u64;
        for i in 0..bits {
            let byte = self.bit_pos / 8;
            let off = self.bit_pos % 8;
            if (self.buf[byte] >> off) & 1 == 1 {
                value |= 1 << i;
            }
            self.bit_pos += 1;
        }
        Ok(value)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.bit_pos
    }
}

/// Number of bits needed to represent values in `[0, q)`.
pub fn bits_for(q: u64) -> u32 {
    64 - (q - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 1);
        w.write_bits(u64::MAX, 64);
        let expected_bits = 3 + 16 + 1 + 64;
        assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), expected_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn random_round_trip() {
        let mut rng = StdRng::seed_from_u64(8);
        let entries: Vec<(u64, u32)> = (0..500)
            .map(|_| {
                let bits = rng.gen_range(1..=63);
                let value = rng.gen::<u64>() & ((1u64 << bits) - 1);
                (value, bits)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, b) in &entries {
            w.write_bits(v, b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, b) in &entries {
            assert_eq!(r.read_bits(b).unwrap(), v);
        }
    }

    #[test]
    fn read_past_end_errors() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.read_bits(8).unwrap(); // the padded byte is readable
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.write_bits(8, 3);
    }

    #[test]
    fn bits_for_moduli() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(1024), 10);
        assert_eq!(bits_for(1025), 11);
        assert_eq!(bits_for(1u64 << 61), 61);
        assert_eq!(bits_for((1u64 << 61) - 1), 61);
    }
}
