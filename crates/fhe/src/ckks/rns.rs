//! Residue-number-system (RNS) polynomials for CKKS.
//!
//! A ring element of `R_Q = Z_Q[X]/(X^N + 1)` with `Q = q_0 · q_1 ⋯ q_L`
//! is stored as one residue vector per prime. All homomorphic operations
//! act independently per prime, which keeps every limb in native `u64`
//! arithmetic — the entire scheme runs without big-integer maths except at
//! decode time, where coefficients are CRT-reconstructed.

use rhychee_bigint::{mod_inv, BigUint};
use rhychee_par::Parallelism;

use super::modarith::{add_mod, inv_mod, mul_mod, neg_mod, sub_mod};

/// Which basis the residue rows of an [`RnsPoly`] are expressed in.
///
/// `Coeff` rows hold polynomial coefficients; `Eval` rows hold the values
/// of the negacyclic NTT at the 2N-th roots (the "double-CRT" form). The
/// NTT is a per-prime `Z_q`-linear bijection, so additions, subtractions
/// and scalar multiplications are valid — and identical — in either
/// domain; only convolution (`poly_mul`), rescale, digit decomposition
/// and CRT decoding care which domain they run in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Coefficient domain: `residues[i][j]` is coefficient `j` mod `q_i`.
    Coeff,
    /// Evaluation (NTT) domain: `residues[i][j]` is the transform point
    /// `j` of the negacyclic NTT mod `q_i`.
    Eval,
}

/// A polynomial in RNS representation, tagged with its [`Domain`].
///
/// `residues[i][j]` is coefficient (or evaluation point) `j` reduced
/// modulo prime `i`. The active primes are implied by `residues.len()`
/// (the *level* of the polynomial).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    residues: Vec<Vec<u64>>,
    domain: Domain,
}

impl RnsPoly {
    /// The all-zero coefficient-domain polynomial at the given degree and
    /// level.
    pub fn zero(n: usize, levels: usize) -> Self {
        Self::zero_in(n, levels, Domain::Coeff)
    }

    /// The all-zero polynomial in an explicit domain (zero is the same
    /// ring element either way; the tag only steers later dispatch).
    pub fn zero_in(n: usize, levels: usize, domain: Domain) -> Self {
        RnsPoly { residues: vec![vec![0u64; n]; levels], domain }
    }

    /// Assembles a polynomial from per-prime residue rows produced
    /// elsewhere (e.g. a fused per-prime kernel). All rows must share
    /// one length.
    pub(crate) fn from_rows(residues: Vec<Vec<u64>>, domain: Domain) -> Self {
        debug_assert!(residues.windows(2).all(|w| w[0].len() == w[1].len()));
        RnsPoly { residues, domain }
    }

    /// The domain the residue rows are currently expressed in.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Retags the polynomial after its rows were transformed in place.
    ///
    /// The caller must have actually (inverse-)NTT'd every row; this only
    /// flips the bookkeeping bit.
    pub(crate) fn set_domain(&mut self, domain: Domain) {
        self.domain = domain;
    }

    /// Builds an RNS polynomial from signed coefficients.
    ///
    /// Each coefficient is reduced into `[0, q_i)` per prime, mapping
    /// negative values to `q_i - |c|`.
    pub fn from_signed_coeffs(coeffs: &[i64], primes: &[u64]) -> Self {
        let mut out = RnsPoly { residues: Vec::new(), domain: Domain::Coeff };
        out.fill_from_signed(coeffs, primes);
        out
    }

    /// Refills `self` from signed coefficients, reusing the existing row
    /// allocations. Produces the exact shape and values of
    /// [`RnsPoly::from_signed_coeffs`] and retags to `Coeff`.
    pub(crate) fn fill_from_signed(&mut self, coeffs: &[i64], primes: &[u64]) {
        self.ensure_shape(coeffs.len(), primes.len(), Domain::Coeff);
        for (row, &q) in self.residues.iter_mut().zip(primes) {
            for (slot, &c) in row.iter_mut().zip(coeffs) {
                *slot = ((c % q as i64 + q as i64) % q as i64) as u64;
            }
        }
    }

    /// Resizes the residue rows to `levels` rows of `n` limbs each and
    /// retags the domain, reusing allocations where possible. Row
    /// contents are unspecified afterwards — callers must overwrite them.
    pub(crate) fn ensure_shape(&mut self, n: usize, levels: usize, domain: Domain) {
        self.residues.resize_with(levels, Vec::new);
        for row in &mut self.residues {
            row.resize(n, 0);
        }
        self.domain = domain;
    }

    /// Heap bytes held by the residue rows (capacity, not length).
    pub fn heap_bytes(&self) -> u64 {
        8 * self.residues.iter().map(|r| r.capacity() as u64).sum::<u64>()
            + (self.residues.capacity() * std::mem::size_of::<Vec<u64>>()) as u64
    }

    /// Ring degree N.
    pub fn degree(&self) -> usize {
        self.residues.first().map_or(0, Vec::len)
    }

    /// Number of active primes (level + 1).
    pub fn levels(&self) -> usize {
        self.residues.len()
    }

    /// Residues of this polynomial modulo the `i`-th prime.
    pub fn residues(&self, i: usize) -> &[u64] {
        &self.residues[i]
    }

    /// Mutable residues modulo the `i`-th prime.
    pub fn residues_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.residues[i]
    }

    /// All residue rows at once, for kernels that split work per prime
    /// (each row is an independently owned `Vec`, so rows can be handed
    /// to different threads).
    pub fn residues_all_mut(&mut self) -> &mut [Vec<u64>] {
        &mut self.residues
    }

    /// Element-wise addition. Operands must share degree and level.
    ///
    /// # Panics
    ///
    /// Panics on mismatched shapes.
    pub fn add(&self, rhs: &RnsPoly, primes: &[u64]) -> RnsPoly {
        self.zip_with(rhs, primes, add_mod)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on mismatched shapes.
    pub fn sub(&self, rhs: &RnsPoly, primes: &[u64]) -> RnsPoly {
        self.zip_with(rhs, primes, sub_mod)
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, rhs: &RnsPoly, primes: &[u64]) {
        assert_eq!(self.levels(), rhs.levels(), "level mismatch");
        assert_eq!(self.domain, rhs.domain, "domain mismatch");
        for (i, &q) in primes.iter().take(self.levels()).enumerate() {
            for (a, &b) in self.residues[i].iter_mut().zip(&rhs.residues[i]) {
                *a = add_mod(*a, b, q);
            }
        }
    }

    /// Negation.
    pub fn neg(&self, primes: &[u64]) -> RnsPoly {
        let residues = self
            .residues
            .iter()
            .zip(primes)
            .map(|(r, &q)| r.iter().map(|&a| neg_mod(a, q)).collect())
            .collect();
        RnsPoly { residues, domain: self.domain }
    }

    /// Multiplies every coefficient by a signed scalar.
    pub fn mul_scalar_signed(&self, scalar: i64, primes: &[u64]) -> RnsPoly {
        let residues = self
            .residues
            .iter()
            .zip(primes)
            .map(|(r, &q)| {
                let s = ((scalar % q as i64 + q as i64) % q as i64) as u64;
                r.iter().map(|&a| mul_mod(a, s, q)).collect()
            })
            .collect();
        RnsPoly { residues, domain: self.domain }
    }

    /// Drops the last prime, rescaling by it: `x ↦ round(x / q_last)`.
    ///
    /// Implements the standard RNS rescale: for each remaining prime
    /// `q_i`, computes `(x_i − x_last) · q_last^{-1} mod q_i`.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial has only one level.
    pub fn rescale(&self, primes: &[u64]) -> RnsPoly {
        self.rescale_with(primes, Parallelism::sequential())
    }

    /// [`RnsPoly::rescale`] with the remaining primes processed in up to
    /// `par.degree()` chunks. Each output row depends only on its own
    /// prime and the dropped one, so the result is bit-identical for
    /// every degree.
    pub fn rescale_with(&self, primes: &[u64], par: Parallelism) -> RnsPoly {
        let l = self.levels();
        assert!(l >= 2, "cannot rescale a level-0 polynomial");
        assert_eq!(self.domain, Domain::Coeff, "rescale requires coefficient domain");
        let q_last = primes[l - 1];
        let last = &self.residues[l - 1];
        let mut residues = vec![Vec::new(); l - 1];
        rhychee_par::for_each_mut(par, &mut residues, |i, row| {
            let q = primes[i];
            let q_last_inv = inv_mod(q_last % q, q);
            *row = self.residues[i]
                .iter()
                .zip(last)
                .map(|(&xi, &xl)| {
                    // Centered lift of x_last before reduction mod q_i so
                    // the rounding error stays within ±1/2.
                    let xl_centered = if xl > q_last / 2 {
                        sub_mod(xi, (xl + q - (q_last % q)) % q, q)
                    } else {
                        sub_mod(xi, xl % q, q)
                    };
                    mul_mod(xl_centered, q_last_inv, q)
                })
                .collect();
        });
        RnsPoly { residues, domain: Domain::Coeff }
    }

    fn zip_with(&self, rhs: &RnsPoly, primes: &[u64], f: fn(u64, u64, u64) -> u64) -> RnsPoly {
        assert_eq!(self.levels(), rhs.levels(), "level mismatch");
        assert_eq!(self.degree(), rhs.degree(), "degree mismatch");
        assert_eq!(self.domain, rhs.domain, "domain mismatch");
        let residues = self
            .residues
            .iter()
            .zip(&rhs.residues)
            .zip(primes)
            .map(|((a, b), &q)| a.iter().zip(b).map(|(&x, &y)| f(x, y, q)).collect())
            .collect();
        RnsPoly { residues, domain: self.domain }
    }

    /// Decomposes every coefficient's *centered integer value* into
    /// `num_digits` signed base-`2^log_base` digits that are globally
    /// consistent across the RNS basis: `Σ_j digit_j · B^j = coeff` as
    /// integers. Each digit polynomial is returned as an [`RnsPoly`] at
    /// the same level, with digit magnitudes `< B`.
    ///
    /// This is the decomposition key switching needs — per-prime digit
    /// extraction would yield residues of *different* integers per prime
    /// and break CRT reconstruction of the switched ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if the digits cannot cover `Q/2` (i.e.
    /// `num_digits · log_base` is too small).
    pub fn to_signed_digits(
        &self,
        primes: &[u64],
        log_base: u32,
        num_digits: usize,
    ) -> Vec<RnsPoly> {
        let levels = self.levels();
        assert_eq!(self.domain, Domain::Coeff, "digit decomposition requires coefficient domain");
        let active = &primes[..levels];
        let total_bits: u32 = active.iter().map(|&q| 64 - (q - 1).leading_zeros()).sum();
        assert!(
            num_digits as u32 * log_base >= total_bits,
            "{num_digits} digits of 2^{log_base} cannot cover a {total_bits}-bit modulus"
        );
        let n = self.degree();
        let crt = CrtReconstructor::new(active);
        let mut out = vec![RnsPoly::zero(n, levels); num_digits];
        let base_mask = (1u64 << log_base) - 1;
        for j in 0..n {
            let rs: Vec<u64> = (0..levels).map(|i| self.residues[i][j]).collect();
            let (negative, mut mag) = crt.centered_parts(&rs);
            for digit_poly in out.iter_mut() {
                let limb = mag.limbs().first().copied().unwrap_or(0) & base_mask;
                mag = mag >> (log_base as usize);
                for (i, &q) in active.iter().enumerate() {
                    let r = limb % q;
                    digit_poly.residues_mut(i)[j] = if negative && r != 0 { q - r } else { r };
                }
            }
            debug_assert!(mag.is_zero(), "digits must cover the centered value");
        }
        out
    }

    /// CRT-reconstructs each coefficient to a centered `f64` value.
    ///
    /// Coefficients are lifted to `[0, Q)`, re-centered into
    /// `(-Q/2, Q/2]`, and converted to `f64`. The message magnitude in
    /// CKKS is far below `Q/2`, so the conversion is exact enough for
    /// decoding.
    pub fn to_centered_f64(&self, primes: &[u64]) -> Vec<f64> {
        self.to_centered_f64_with(primes, Parallelism::sequential())
    }

    /// [`RnsPoly::to_centered_f64`] with coefficients reconstructed in
    /// up to `par.degree()` chunks (the per-coefficient big-integer CRT
    /// dominates decrypt time at high degree). Each coefficient is
    /// independent, so the result is bit-identical for every degree.
    pub fn to_centered_f64_with(&self, primes: &[u64], par: Parallelism) -> Vec<f64> {
        let l = self.levels();
        assert_eq!(self.domain, Domain::Coeff, "CRT decode requires coefficient domain");
        let active = &primes[..l];
        if l == 1 {
            let q = active[0];
            return self.residues[0]
                .iter()
                .map(|&x| if x > q / 2 { x as f64 - q as f64 } else { x as f64 })
                .collect();
        }
        let crt = CrtReconstructor::new(active);
        rhychee_par::map(par, self.degree(), |j| {
            let rs: Vec<u64> = (0..l).map(|i| self.residues[i][j]).collect();
            crt.centered_f64(&rs)
        })
    }
}

/// Precomputed Chinese-remainder reconstruction for a prime basis.
pub struct CrtReconstructor {
    primes: Vec<u64>,
    q: BigUint,
    half_q: BigUint,
    /// `(Q/q_i)` as big integers.
    q_hat: Vec<BigUint>,
    /// `(Q/q_i)^{-1} mod q_i`.
    q_hat_inv: Vec<u64>,
}

impl CrtReconstructor {
    /// Builds a reconstructor for the given coprime basis.
    pub fn new(primes: &[u64]) -> Self {
        let q = primes.iter().fold(BigUint::one(), |acc, &p| acc.mul_u64(p));
        let half_q = &q >> 1;
        let q_hat: Vec<BigUint> = primes.iter().map(|&p| q.div_rem_u64(p).0).collect();
        let q_hat_inv = primes
            .iter()
            .zip(&q_hat)
            .map(|(&p, h)| {
                let h_mod_p = h.rem_of(&BigUint::from(p));
                let inv = mod_inv(&h_mod_p, &BigUint::from(p)).expect("primes are coprime");
                u64::try_from(&inv).expect("inverse fits in u64")
            })
            .collect();
        CrtReconstructor { primes: primes.to_vec(), q, half_q, q_hat, q_hat_inv }
    }

    /// Reconstructs residues to the centered representative as `f64`.
    pub fn centered_f64(&self, residues: &[u64]) -> f64 {
        let (negative, magnitude) = self.centered_parts(residues);
        let v = biguint_to_f64(&magnitude);
        if negative {
            -v
        } else {
            v
        }
    }

    /// Reconstructs residues to `(is_negative, |value|)` of the centered
    /// representative in `(−Q/2, Q/2]`.
    pub fn centered_parts(&self, residues: &[u64]) -> (bool, BigUint) {
        let mut acc = BigUint::zero();
        for ((&r, &p), (hat, &hat_inv)) in self.residues_iter(residues) {
            let t = mul_mod(r, hat_inv, p);
            acc += &hat.mul_u64(t);
        }
        let v = acc.rem_of(&self.q);
        if v > self.half_q {
            (true, &self.q - &v)
        } else {
            (false, v)
        }
    }

    #[allow(clippy::type_complexity)]
    fn residues_iter<'a>(
        &'a self,
        residues: &'a [u64],
    ) -> impl Iterator<Item = ((&'a u64, &'a u64), (&'a BigUint, &'a u64))> {
        residues.iter().zip(&self.primes).zip(self.q_hat.iter().zip(&self.q_hat_inv))
    }
}

/// Converts a non-negative big integer to `f64` (with rounding).
fn biguint_to_f64(v: &BigUint) -> f64 {
    let mut acc = 0.0f64;
    for &limb in v.limbs().iter().rev() {
        acc = acc * 1.8446744073709552e19 + limb as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRIMES: [u64; 3] = [1125899906826241, 1125899906629633, 1125899905744897];

    #[test]
    fn signed_round_trip_through_crt() {
        let coeffs = [0i64, 1, -1, 42, -12345, i32::MAX as i64, -(i32::MAX as i64)];
        let p = RnsPoly::from_signed_coeffs(&coeffs, &PRIMES);
        let back = p.to_centered_f64(&PRIMES);
        for (c, b) in coeffs.iter().zip(&back) {
            assert_eq!(*c as f64, *b);
        }
    }

    #[test]
    fn single_prime_fast_path() {
        let coeffs = [7i64, -9, 0];
        let p = RnsPoly::from_signed_coeffs(&coeffs, &PRIMES[..1]);
        assert_eq!(p.to_centered_f64(&PRIMES[..1]), vec![7.0, -9.0, 0.0]);
    }

    #[test]
    fn add_sub_inverse() {
        let a = RnsPoly::from_signed_coeffs(&[5, -3, 100], &PRIMES);
        let b = RnsPoly::from_signed_coeffs(&[2, 8, -50], &PRIMES);
        let sum = a.add(&b, &PRIMES);
        assert_eq!(sum.sub(&b, &PRIMES), a);
        assert_eq!(sum.to_centered_f64(&PRIMES), vec![7.0, 5.0, 50.0]);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = RnsPoly::from_signed_coeffs(&[5, -3, 0], &PRIMES);
        let z = a.add(&a.neg(&PRIMES), &PRIMES);
        assert_eq!(z.to_centered_f64(&PRIMES), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn scalar_multiplication() {
        let a = RnsPoly::from_signed_coeffs(&[5, -3, 7], &PRIMES);
        let b = a.mul_scalar_signed(-4, &PRIMES);
        assert_eq!(b.to_centered_f64(&PRIMES), vec![-20.0, 12.0, -28.0]);
    }

    #[test]
    fn rescale_divides_by_last_prime() {
        // Value v encoded across 3 primes; rescale should give round(v / q2).
        let q_last = PRIMES[2] as i64;
        let v = q_last * 7 + 3; // rounds to 7
        let p = RnsPoly::from_signed_coeffs(&[v, -v, 0], &PRIMES);
        let r = p.rescale(&PRIMES);
        assert_eq!(r.levels(), 2);
        let back = r.to_centered_f64(&PRIMES[..2]);
        assert_eq!(back[0], 7.0);
        assert_eq!(back[1], -7.0);
        assert_eq!(back[2], 0.0);
    }

    #[test]
    fn rescale_rounding_error_is_bounded() {
        let q_last = PRIMES[2] as i64;
        for frac in [1i64, q_last / 3, q_last / 2, q_last - 1] {
            let v = q_last * 11 + frac;
            let p = RnsPoly::from_signed_coeffs(&[v], &PRIMES);
            let r = p.rescale(&PRIMES).to_centered_f64(&PRIMES[..2])[0];
            let exact = v as f64 / q_last as f64;
            assert!((r - exact).abs() <= 1.0, "rescale error too large: {r} vs {exact}");
        }
    }

    #[test]
    #[should_panic(expected = "rescale")]
    fn rescale_at_bottom_level_panics() {
        let p = RnsPoly::from_signed_coeffs(&[1], &PRIMES[..1]);
        let _ = p.rescale(&PRIMES[..1]);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = RnsPoly::from_signed_coeffs(&[1, 2, 3], &PRIMES);
        let b = RnsPoly::from_signed_coeffs(&[10, -20, 30], &PRIMES);
        let expected = a.add(&b, &PRIMES);
        a.add_assign(&b, &PRIMES);
        assert_eq!(a, expected);
    }

    #[test]
    fn parallel_variants_match_sequential() {
        let coeffs: Vec<i64> = (0..64).map(|i| (i * 7919 - 2048) as i64).collect();
        let p = RnsPoly::from_signed_coeffs(&coeffs, &PRIMES);
        for par in [Parallelism::Fixed(2), Parallelism::Fixed(4), Parallelism::Auto] {
            assert_eq!(p.rescale_with(&PRIMES, par), p.rescale(&PRIMES), "{par}");
            let seq = p.to_centered_f64(&PRIMES);
            let parv = p.to_centered_f64_with(&PRIMES, par);
            assert!(
                seq.iter().zip(&parv).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{par}: reconstruction differs"
            );
        }
    }

    #[test]
    fn biguint_f64_conversion_accuracy() {
        assert_eq!(biguint_to_f64(&BigUint::from(0u64)), 0.0);
        assert_eq!(biguint_to_f64(&BigUint::from(1u64 << 52)), (1u64 << 52) as f64);
        let big = BigUint::from(u128::MAX);
        let expected = 2.0f64.powi(128);
        assert!((biguint_to_f64(&big) - expected).abs() / expected < 1e-15);
    }
}
