//! AVX-512 backend: 8-lane Harvey/Shoup butterflies.
//!
//! Where the AVX2 backend must emulate every 64-bit product from
//! 32×32→64 partials, AVX-512DQ has a native vector 64×64→low-64
//! multiply (`vpmullq`), and AVX-512F a native unsigned 64-bit min
//! (`vpminuq`) that turns the conditional lazy reduction
//! `x >= b ? x - b : x` into two ops (`min(x, x - b)` — the
//! subtraction wraps far above `b` exactly when `x < b`). Only the
//! Shoup multiply-high still needs the schoolbook 32-bit partial
//! products.
//!
//! Unlike the AVX2 backend, *every* pass is vectorized: the short
//! passes (`t < 8`), whose butterfly halves are interleaved within a
//! vector, run through `vpermi2q` deinterleave/reinterleave shuffles
//! with the per-group twiddles gathered by `vpermq` from the
//! contiguous twiddle table. Two full-array sweeps are also fused
//! away: the forward canonicalization happens inside the last
//! (`t = 1`) pass, and the inverse `N^{-1}` scaling is pre-folded
//! into the single twiddle of the final (`t = N/2`) pass
//! (`NttTable::inv_last_folded`). Both fusions only change lazy
//! intermediates; canonical outputs are bit-identical to the scalar
//! reference.
//!
//! # Safety
//!
//! Mirrors the AVX2 module: intrinsics only inside
//! `#[target_feature(enable = "avx512f,avx512dq")]` functions, the
//! kernel handed out only when both features are detected at runtime
//! ([`available`]), raw-pointer accesses in bounds by the scalar
//! loops' index algebra (main passes: `j + t + 7 ≤ j1 + 2t − 1 < n`;
//! tail passes: whole 16-element blocks of `a` and ≤ 8-element
//! twiddle loads ending exactly at the table's length).

use core::arch::x86_64::*;

use super::{NttKernel, NttTable};

/// Tail passes need 16-element blocks; below 32 the main loop never
/// runs and the scalar path is at no disadvantage.
const MIN_VECTOR_RING: usize = 32;

#[derive(Debug)]
pub(super) struct Avx512Kernel;

static KERNEL: Avx512Kernel = Avx512Kernel;

/// Runtime gate: the only path that hands out the AVX-512 kernel.
pub(super) fn available() -> bool {
    is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq")
}

pub(super) fn kernel() -> &'static dyn NttKernel {
    &KERNEL
}

impl NttKernel for Avx512Kernel {
    fn name(&self) -> &'static str {
        "avx512"
    }
    fn forward(&self, table: &NttTable, a: &mut [u64]) {
        if table.n < MIN_VECTOR_RING {
            return table.forward_scalar(a);
        }
        // SAFETY: kernel only obtainable after the `available()` check.
        unsafe { forward_avx512(table, a) }
    }
    fn inverse(&self, table: &NttTable, a: &mut [u64]) {
        if table.n < MIN_VECTOR_RING {
            return table.inverse_scalar(a);
        }
        // SAFETY: as above.
        unsafe { inverse_avx512(table, a) }
    }
}

/// Per lane: `x >= bound ? x - bound : x` via `vpminuq`.
#[inline]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn sub_if_ge(x: __m512i, bound: __m512i) -> __m512i {
    _mm512_min_epu64(x, _mm512_sub_epi64(x, bound))
}

/// High 64 bits of the 128-bit product per lane (Hacker's Delight
/// `mulhu` over `vpmuludq` partials — see the AVX2 twin for the
/// overflow argument). `b_hi`/`y_hi` are the per-lane high halves.
#[inline]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn mul_hi64(b: __m512i, b_hi: __m512i, y: __m512i, y_hi: __m512i) -> __m512i {
    let lo_lo = _mm512_mul_epu32(b, y);
    let hi_lo = _mm512_mul_epu32(b_hi, y);
    let lo_hi = _mm512_mul_epu32(b, y_hi);
    let hi_hi = _mm512_mul_epu32(b_hi, y_hi);
    let t1 = _mm512_add_epi64(hi_lo, _mm512_srli_epi64::<32>(lo_lo));
    let m = _mm512_set1_epi64(0xFFFF_FFFF);
    let u = _mm512_add_epi64(lo_hi, _mm512_and_si512(t1, m));
    _mm512_add_epi64(
        _mm512_add_epi64(hi_hi, _mm512_srli_epi64::<32>(t1)),
        _mm512_srli_epi64::<32>(u),
    )
}

/// 8-lane `mul_shoup_lazy(y, w, w_shoup, q)` — the two low-64
/// products are single `vpmullq`s.
#[inline]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn mul_shoup_lazy8(
    y: __m512i,
    w: __m512i,
    ws: __m512i,
    ws_hi: __m512i,
    q: __m512i,
) -> __m512i {
    let y_hi = _mm512_srli_epi64::<32>(y);
    let hi = mul_hi64(ws, ws_hi, y, y_hi);
    _mm512_sub_epi64(_mm512_mullo_epi64(w, y), _mm512_mullo_epi64(hi, q))
}

/// Shuffle patterns for one interleaved ("tail") pass at `t ∈ {1,2,4}`.
///
/// A 16-element block holds `16/(2t)` butterfly groups; `u`/`v` pick
/// the group halves out of the block (indices 0–7 address the first
/// loaded vector, 8–15 the second, per `vpermi2q`), `tw` replicates
/// each of the block's consecutive twiddles `t` times, and `o0`/`o1`
/// interleave the halves back into block order.
struct TailIdx {
    u: __m512i,
    v: __m512i,
    tw: __m512i,
    o0: __m512i,
    o1: __m512i,
}

#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn tail_idx(t: usize) -> TailIdx {
    match t {
        4 => TailIdx {
            u: _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11),
            v: _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15),
            tw: _mm512_setr_epi64(0, 0, 0, 0, 1, 1, 1, 1),
            o0: _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11),
            o1: _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15),
        },
        2 => TailIdx {
            u: _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13),
            v: _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15),
            tw: _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3),
            o0: _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11),
            o1: _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15),
        },
        _ => TailIdx {
            u: _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14),
            v: _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15),
            tw: _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7),
            o0: _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11),
            o1: _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15),
        },
    }
}

#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn forward_avx512(table: &NttTable, a: &mut [u64]) {
    let q = table.q;
    let two_q = 2 * q;
    let n = table.n;
    let q_v = _mm512_set1_epi64(q as i64);
    let two_q_v = _mm512_set1_epi64(two_q as i64);
    let base = a.as_mut_ptr();
    let mut t = n;
    let mut m = 1;
    // Main passes: each group's halves are ≥ one vector long.
    while t > 8 {
        t /= 2;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = table.psi_rev[m + i];
            let s_shoup = table.psi_rev_shoup[m + i];
            let w = _mm512_set1_epi64(s as i64);
            let ws = _mm512_set1_epi64(s_shoup as i64);
            let ws_hi = _mm512_set1_epi64((s_shoup >> 32) as i64);
            let mut j = j1;
            while j < j1 + t {
                // SAFETY: j + t + 7 ≤ j1 + 2t − 1 < n.
                let pu = base.add(j) as *mut __m512i;
                let pv = base.add(j + t) as *mut __m512i;
                let u = sub_if_ge(_mm512_loadu_si512(pu), two_q_v);
                let y = _mm512_loadu_si512(pv);
                let v = mul_shoup_lazy8(y, w, ws, ws_hi, q_v);
                _mm512_storeu_si512(pu, _mm512_add_epi64(u, v));
                _mm512_storeu_si512(pv, _mm512_add_epi64(u, _mm512_sub_epi64(two_q_v, v)));
                j += 8;
            }
        }
        m *= 2;
    }
    // Tail passes (t = 4, 2, 1): interleaved halves via vpermi2q. The
    // last pass canonicalizes its outputs, replacing the separate
    // [0, 4q) → [0, q) sweep.
    while m < n {
        t /= 2;
        let idx = tail_idx(t);
        let groups_per_block = 16 / (2 * t);
        let tw_base = table.psi_rev.as_ptr().add(m);
        let tws_base = table.psi_rev_shoup.as_ptr().add(m);
        let mut k = 0;
        let mut g = 0;
        while k < n {
            // SAFETY: blocks cover a[k..k+16], k + 16 ≤ n (16 | n for
            // n ≥ MIN_VECTOR_RING). Twiddle loads read 8 u64 at
            // offset m + g; the largest such read ends at
            // m + (m − groups_per_block) + 8 ≤ 2m ≤ n.
            let p0 = base.add(k) as *mut __m512i;
            let p1 = base.add(k + 8) as *mut __m512i;
            let z0 = _mm512_loadu_si512(p0);
            let z1 = _mm512_loadu_si512(p1);
            let u = sub_if_ge(_mm512_permutex2var_epi64(z0, idx.u, z1), two_q_v);
            let y = _mm512_permutex2var_epi64(z0, idx.v, z1);
            let tw_raw = _mm512_loadu_si512(tw_base.add(g) as *const __m512i);
            let tws_raw = _mm512_loadu_si512(tws_base.add(g) as *const __m512i);
            let w = _mm512_permutexvar_epi64(idx.tw, tw_raw);
            let ws = _mm512_permutexvar_epi64(idx.tw, tws_raw);
            let ws_hi = _mm512_srli_epi64::<32>(ws);
            let v = mul_shoup_lazy8(y, w, ws, ws_hi, q_v);
            let mut out_u = _mm512_add_epi64(u, v);
            let mut out_v = _mm512_add_epi64(u, _mm512_sub_epi64(two_q_v, v));
            if t == 1 {
                out_u = sub_if_ge(sub_if_ge(out_u, two_q_v), q_v);
                out_v = sub_if_ge(sub_if_ge(out_v, two_q_v), q_v);
            }
            _mm512_storeu_si512(p0, _mm512_permutex2var_epi64(out_u, idx.o0, out_v));
            _mm512_storeu_si512(p1, _mm512_permutex2var_epi64(out_u, idx.o1, out_v));
            k += 16;
            g += groups_per_block;
        }
        m *= 2;
    }
}

#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn inverse_avx512(table: &NttTable, a: &mut [u64]) {
    let q = table.q;
    let two_q = 2 * q;
    let n = table.n;
    let q_v = _mm512_set1_epi64(q as i64);
    let two_q_v = _mm512_set1_epi64(two_q as i64);
    let base = a.as_mut_ptr();
    let mut t = 1;
    let mut m = n;
    // Tail passes (t = 1, 2, 4): interleaved halves.
    while t < 8 && m > 2 {
        let h = m / 2;
        let idx = tail_idx(t);
        let groups_per_block = 16 / (2 * t);
        let tw_base = table.psi_inv_rev.as_ptr().add(h);
        let tws_base = table.psi_inv_rev_shoup.as_ptr().add(h);
        let mut k = 0;
        let mut g = 0;
        while k < n {
            // SAFETY: same block/twiddle bounds as the forward tail.
            let p0 = base.add(k) as *mut __m512i;
            let p1 = base.add(k + 8) as *mut __m512i;
            let z0 = _mm512_loadu_si512(p0);
            let z1 = _mm512_loadu_si512(p1);
            let u = _mm512_permutex2var_epi64(z0, idx.u, z1);
            let v = _mm512_permutex2var_epi64(z0, idx.v, z1);
            let tw_raw = _mm512_loadu_si512(tw_base.add(g) as *const __m512i);
            let tws_raw = _mm512_loadu_si512(tws_base.add(g) as *const __m512i);
            let w = _mm512_permutexvar_epi64(idx.tw, tw_raw);
            let ws = _mm512_permutexvar_epi64(idx.tw, tws_raw);
            let ws_hi = _mm512_srli_epi64::<32>(ws);
            let sum = sub_if_ge(_mm512_add_epi64(u, v), two_q_v);
            let diff = _mm512_sub_epi64(_mm512_add_epi64(u, two_q_v), v);
            let out_v = mul_shoup_lazy8(diff, w, ws, ws_hi, q_v);
            _mm512_storeu_si512(p0, _mm512_permutex2var_epi64(sum, idx.o0, out_v));
            _mm512_storeu_si512(p1, _mm512_permutex2var_epi64(sum, idx.o1, out_v));
            k += 16;
            g += groups_per_block;
        }
        t *= 2;
        m = h;
    }
    // Main passes, stopping before the final (t = N/2) one.
    while m > 2 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let s = table.psi_inv_rev[h + i];
            let s_shoup = table.psi_inv_rev_shoup[h + i];
            let w = _mm512_set1_epi64(s as i64);
            let ws = _mm512_set1_epi64(s_shoup as i64);
            let ws_hi = _mm512_set1_epi64((s_shoup >> 32) as i64);
            let mut j = j1;
            while j < j1 + t {
                // SAFETY: j + t + 7 ≤ j1 + 2t − 1 < n.
                let pu = base.add(j) as *mut __m512i;
                let pv = base.add(j + t) as *mut __m512i;
                let u = _mm512_loadu_si512(pu);
                let v = _mm512_loadu_si512(pv);
                let sum = sub_if_ge(_mm512_add_epi64(u, v), two_q_v);
                _mm512_storeu_si512(pu, sum);
                let diff = _mm512_sub_epi64(_mm512_add_epi64(u, two_q_v), v);
                let out = mul_shoup_lazy8(diff, w, ws, ws_hi, q_v);
                _mm512_storeu_si512(pv, out);
                j += 8;
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    // Final pass (t = N/2, one twiddle): fold in N^{-1} on the sum
    // half and the prefolded twiddle on the difference half, emitting
    // fully reduced outputs — replaces the separate scaling sweep.
    let w_n = _mm512_set1_epi64(table.n_inv as i64);
    let ws_n = _mm512_set1_epi64(table.n_inv_shoup as i64);
    let ws_n_hi = _mm512_set1_epi64((table.n_inv_shoup >> 32) as i64);
    let w_f = _mm512_set1_epi64(table.inv_last_folded as i64);
    let ws_f = _mm512_set1_epi64(table.inv_last_folded_shoup as i64);
    let ws_f_hi = _mm512_set1_epi64((table.inv_last_folded_shoup >> 32) as i64);
    let half = n / 2;
    let mut j = 0;
    while j < half {
        // SAFETY: j + half + 7 ≤ n − 1.
        let pu = base.add(j) as *mut __m512i;
        let pv = base.add(j + half) as *mut __m512i;
        let u = _mm512_loadu_si512(pu);
        let v = _mm512_loadu_si512(pv);
        let sum = sub_if_ge(_mm512_add_epi64(u, v), two_q_v);
        let out_u = mul_shoup_lazy8(sum, w_n, ws_n, ws_n_hi, q_v);
        _mm512_storeu_si512(pu, sub_if_ge(out_u, q_v));
        let diff = _mm512_sub_epi64(_mm512_add_epi64(u, two_q_v), v);
        let out_v = mul_shoup_lazy8(diff, w_f, ws_f, ws_f_hi, q_v);
        _mm512_storeu_si512(pv, sub_if_ge(out_v, q_v));
        j += 8;
    }
}
