//! NEON backend: 2-lane Harvey/Shoup butterflies for `aarch64`.
//!
//! AArch64 NEON has no 64×64→128 multiply either, so the Shoup
//! multiply-high is rebuilt from `vmull_u32` 32×32→64 widening partial
//! products with the same schoolbook carry propagation as the AVX2
//! backend (and the same wrapping-u64 operation sequence as the scalar
//! reference, so outputs are bit-identical). Unlike AVX2, NEON has a
//! native unsigned 64-bit compare (`vcgeq_u64`), so the conditional
//! lazy reductions need no sign-bias trick.
//!
//! Passes with contiguous runs shorter than one vector (`t < 2`: the
//! last forward / first inverse pass) fall through to the scalar loop.
//!
//! # Safety
//!
//! Mirrors the AVX2 module: intrinsics run inside
//! `#[target_feature(enable = "neon")]` functions, the kernel is
//! handed out only when `is_aarch64_feature_detected!("neon")` holds,
//! and every raw-pointer access stays within `a[..n]` by the scalar
//! loops' index algebra (`j + t + 1 < j1 + 2t ≤ n`).

use core::arch::aarch64::*;

use super::{NttKernel, NttTable};

/// Below this ring degree most passes are scalar anyway; use the
/// reference path outright.
const MIN_VECTOR_RING: usize = 8;

#[derive(Debug)]
pub(super) struct NeonKernel;

static KERNEL: NeonKernel = NeonKernel;

/// Runtime gate: the only path that hands out the NEON kernel.
pub(super) fn available() -> bool {
    std::arch::is_aarch64_feature_detected!("neon")
}

pub(super) fn kernel() -> &'static dyn NttKernel {
    &KERNEL
}

impl NttKernel for NeonKernel {
    fn name(&self) -> &'static str {
        "neon"
    }
    fn forward(&self, table: &NttTable, a: &mut [u64]) {
        if table.n < MIN_VECTOR_RING {
            return table.forward_scalar(a);
        }
        // SAFETY: kernel only obtainable after the `available()` check.
        unsafe { forward_neon(table, a) }
    }
    fn inverse(&self, table: &NttTable, a: &mut [u64]) {
        if table.n < MIN_VECTOR_RING {
            return table.inverse_scalar(a);
        }
        // SAFETY: as above.
        unsafe { inverse_neon(table, a) }
    }
}

/// High 64 bits of the 128-bit product per lane from 32-bit halves;
/// `b_lo`/`b_hi` are the broadcast low/high 32-bit halves of the
/// scalar multiplicand.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn mul_hi64(b_lo: uint32x2_t, b_hi: uint32x2_t, y: uint64x2_t) -> uint64x2_t {
    let y_lo = vmovn_u64(y);
    let y_hi = vshrn_n_u64::<32>(y);
    let lo_lo = vmull_u32(b_lo, y_lo);
    let hi_lo = vmull_u32(b_hi, y_lo);
    let lo_hi = vmull_u32(b_lo, y_hi);
    let hi_hi = vmull_u32(b_hi, y_hi);
    let m = vdupq_n_u64(0xFFFF_FFFF);
    let cross =
        vaddq_u64(vaddq_u64(vshrq_n_u64::<32>(lo_lo), vandq_u64(hi_lo, m)), vandq_u64(lo_hi, m));
    vaddq_u64(
        vaddq_u64(hi_hi, vshrq_n_u64::<32>(hi_lo)),
        vaddq_u64(vshrq_n_u64::<32>(lo_hi), vshrq_n_u64::<32>(cross)),
    )
}

/// Wrapping low 64 bits of the product per lane.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn mul_lo64(b_lo: uint32x2_t, b_hi: uint32x2_t, y: uint64x2_t) -> uint64x2_t {
    let y_lo = vmovn_u64(y);
    let y_hi = vshrn_n_u64::<32>(y);
    let lo_lo = vmull_u32(b_lo, y_lo);
    let hi_lo = vmull_u32(b_hi, y_lo);
    let lo_hi = vmull_u32(b_lo, y_hi);
    vaddq_u64(lo_lo, vshlq_n_u64::<32>(vaddq_u64(hi_lo, lo_hi)))
}

/// Per lane: `x >= bound ? x - bound : x` via the native unsigned
/// 64-bit compare.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn sub_if_ge(x: uint64x2_t, bound: uint64x2_t) -> uint64x2_t {
    let ge = vcgeq_u64(x, bound);
    vsubq_u64(x, vandq_u64(ge, bound))
}

/// 2-lane `mul_shoup_lazy(y, w, w_shoup, q)` in wrapping u64.
#[inline]
#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)]
unsafe fn mul_shoup_lazy2(
    y: uint64x2_t,
    w_lo: uint32x2_t,
    w_hi: uint32x2_t,
    ws_lo: uint32x2_t,
    ws_hi: uint32x2_t,
    q_lo: uint32x2_t,
    q_hi: uint32x2_t,
) -> uint64x2_t {
    let hi = mul_hi64(ws_lo, ws_hi, y);
    vsubq_u64(mul_lo64(w_lo, w_hi, y), mul_lo64(q_lo, q_hi, hi))
}

/// Broadcast the low/high 32-bit halves of a scalar.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn halves(x: u64) -> (uint32x2_t, uint32x2_t) {
    (vdup_n_u32(x as u32), vdup_n_u32((x >> 32) as u32))
}

#[target_feature(enable = "neon")]
unsafe fn forward_neon(table: &NttTable, a: &mut [u64]) {
    let q = table.q;
    let two_q = 2 * q;
    let n = table.n;
    let (q_lo, q_hi) = halves(q);
    let q_v = vdupq_n_u64(q);
    let two_q_v = vdupq_n_u64(two_q);
    let base = a.as_mut_ptr();
    let mut t = n;
    let mut m = 1;
    while m < n {
        t /= 2;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = table.psi_rev[m + i];
            let s_shoup = table.psi_rev_shoup[m + i];
            if t >= 2 {
                let (w_lo, w_hi) = halves(s);
                let (ws_lo, ws_hi) = halves(s_shoup);
                let mut j = j1;
                while j < j1 + t {
                    // SAFETY: j + t + 1 ≤ j1 + 2t − 1 < n.
                    let pu = base.add(j);
                    let pv = base.add(j + t);
                    let u = sub_if_ge(vld1q_u64(pu), two_q_v);
                    let y = vld1q_u64(pv);
                    let v = mul_shoup_lazy2(y, w_lo, w_hi, ws_lo, ws_hi, q_lo, q_hi);
                    vst1q_u64(pu, vaddq_u64(u, v));
                    vst1q_u64(pv, vaddq_u64(u, vsubq_u64(two_q_v, v)));
                    j += 2;
                }
            } else {
                for j in j1..j1 + t {
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = super::mul_shoup_lazy(a[j + t], s, s_shoup, q);
                    a[j] = u + v;
                    a[j + t] = u + two_q - v;
                }
            }
        }
        m *= 2;
    }
    let mut j = 0;
    while j < n {
        // SAFETY: j + 1 < n since 2 | n.
        let p = base.add(j);
        let x = sub_if_ge(sub_if_ge(vld1q_u64(p), two_q_v), q_v);
        vst1q_u64(p, x);
        j += 2;
    }
}

#[target_feature(enable = "neon")]
unsafe fn inverse_neon(table: &NttTable, a: &mut [u64]) {
    let q = table.q;
    let two_q = 2 * q;
    let n = table.n;
    let (q_lo, q_hi) = halves(q);
    let q_v = vdupq_n_u64(q);
    let two_q_v = vdupq_n_u64(two_q);
    let base = a.as_mut_ptr();
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let s = table.psi_inv_rev[h + i];
            let s_shoup = table.psi_inv_rev_shoup[h + i];
            if t >= 2 {
                let (w_lo, w_hi) = halves(s);
                let (ws_lo, ws_hi) = halves(s_shoup);
                let mut j = j1;
                while j < j1 + t {
                    // SAFETY: j + t + 1 ≤ j1 + 2t − 1 < n.
                    let pu = base.add(j);
                    let pv = base.add(j + t);
                    let u = vld1q_u64(pu);
                    let v = vld1q_u64(pv);
                    vst1q_u64(pu, sub_if_ge(vaddq_u64(u, v), two_q_v));
                    let diff = vsubq_u64(vaddq_u64(u, two_q_v), v);
                    let out = mul_shoup_lazy2(diff, w_lo, w_hi, ws_lo, ws_hi, q_lo, q_hi);
                    vst1q_u64(pv, out);
                    j += 2;
                }
            } else {
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    let mut sum = u + v;
                    if sum >= two_q {
                        sum -= two_q;
                    }
                    a[j] = sum;
                    a[j + t] = super::mul_shoup_lazy(u + two_q - v, s, s_shoup, q);
                }
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    let (w_lo, w_hi) = halves(table.n_inv);
    let (ws_lo, ws_hi) = halves(table.n_inv_shoup);
    let mut j = 0;
    while j < n {
        // SAFETY: j + 1 < n since 2 | n.
        let p = base.add(j);
        let r = mul_shoup_lazy2(vld1q_u64(p), w_lo, w_hi, ws_lo, ws_hi, q_lo, q_hi);
        vst1q_u64(p, sub_if_ge(r, q_v));
        j += 2;
    }
}
