//! AVX2 backend: 4-lane Harvey/Shoup butterflies.
//!
//! AVX2 has no 64×64→128 multiply, so the Shoup multiply-high is
//! rebuilt from four `_mm256_mul_epu32` 32×32→64 partial products per
//! lane (the classic schoolbook high-half with explicit carry
//! propagation), and the wrapping low half from three. Every operation
//! is exact wrapping u64 arithmetic — the same sequence of additions,
//! subtractions and conditional reductions as the scalar reference —
//! so outputs are **bit-identical** to `NttTable::forward_scalar` /
//! `inverse_scalar` by construction, not merely congruent mod q.
//!
//! Butterfly passes whose contiguous run is shorter than one vector
//! (`t < 4`: the last two forward passes, the first two inverse
//! passes) fall through to the scalar loop; for the ring degrees the
//! workspace uses (512–8192) that leaves ≥ 80 % of the butterflies
//! vectorized.
//!
//! # Safety
//!
//! All `unsafe` here is (a) AVX2 intrinsics inside
//! `#[target_feature(enable = "avx2")]` functions and (b) raw-pointer
//! loads/stores within `a[..n]` proven in bounds by the same index
//! algebra the scalar loops use (`j + t + 3 < j1 + 2t ≤ n`). The
//! module is compiled only on `x86_64` and the kernel is handed out
//! only when `is_x86_feature_detected!("avx2")` holds (see
//! [`available`]), so the target-feature contract is met at every
//! call site.

use core::arch::x86_64::*;

use super::{NttKernel, NttTable};

/// Rings smaller than this gain nothing from 4-lane vectors (most
/// passes would hit the scalar fallback anyway); dispatch whole
/// transforms to the scalar reference instead.
const MIN_VECTOR_RING: usize = 16;

#[derive(Debug)]
pub(super) struct Avx2Kernel;

static KERNEL: Avx2Kernel = Avx2Kernel;

/// Runtime gate: the only path that hands out the AVX2 kernel.
pub(super) fn available() -> bool {
    is_x86_feature_detected!("avx2")
}

pub(super) fn kernel() -> &'static dyn NttKernel {
    &KERNEL
}

impl NttKernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }
    fn forward(&self, table: &NttTable, a: &mut [u64]) {
        if table.n < MIN_VECTOR_RING {
            return table.forward_scalar(a);
        }
        // SAFETY: this kernel is only obtainable through
        // `available_kernels()` / `active_kernel()`, both of which
        // check `is_x86_feature_detected!("avx2")` first.
        unsafe { forward_avx2(table, a) }
    }
    fn inverse(&self, table: &NttTable, a: &mut [u64]) {
        if table.n < MIN_VECTOR_RING {
            return table.inverse_scalar(a);
        }
        // SAFETY: as above — AVX2 presence is checked before the
        // kernel is ever handed out.
        unsafe { inverse_avx2(table, a) }
    }
}

/// High 64 bits of the full 128-bit product per lane, from 32-bit
/// partial products (Hacker's Delight `mulhu`): with
/// `a·b = lo·lo + 2^32(hi·lo + lo·hi) + 2^64 hi·hi`,
/// `t1 = hi·lo + (lo·lo >> 32)` and `u = lo·hi + (t1 mod 2^32)`
/// (neither overflows a lane), the high half is
/// `hi·hi + (t1 >> 32) + (u >> 32)`.
///
/// `b_hi` must be `b >> 32` per lane (`_mm256_mul_epu32` reads only
/// the low 32 bits of each lane, so `b` itself serves as `b_lo`);
/// `y_hi` likewise, precomputed so it can be shared with [`mul_lo64`].
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mul_hi64(b: __m256i, b_hi: __m256i, y: __m256i, y_hi: __m256i) -> __m256i {
    let lo_lo = _mm256_mul_epu32(b, y);
    let hi_lo = _mm256_mul_epu32(b_hi, y);
    let lo_hi = _mm256_mul_epu32(b, y_hi);
    let hi_hi = _mm256_mul_epu32(b_hi, y_hi);
    let t1 = _mm256_add_epi64(hi_lo, _mm256_srli_epi64::<32>(lo_lo));
    let m = _mm256_set1_epi64x(0xFFFF_FFFF);
    let u = _mm256_add_epi64(lo_hi, _mm256_and_si256(t1, m));
    _mm256_add_epi64(
        _mm256_add_epi64(hi_hi, _mm256_srli_epi64::<32>(t1)),
        _mm256_srli_epi64::<32>(u),
    )
}

/// Wrapping low 64 bits of the product per lane:
/// `lo·lo + ((hi·lo + lo·hi) << 32)` — bits above 2^64 are discarded
/// exactly as scalar `u64::wrapping_mul` discards them.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mul_lo64(b: __m256i, b_hi: __m256i, y: __m256i, y_hi: __m256i) -> __m256i {
    let lo_lo = _mm256_mul_epu32(b, y);
    let hi_lo = _mm256_mul_epu32(b_hi, y);
    let lo_hi = _mm256_mul_epu32(b, y_hi);
    _mm256_add_epi64(lo_lo, _mm256_slli_epi64::<32>(_mm256_add_epi64(hi_lo, lo_hi)))
}

/// Per lane: `x >= bound ? x - bound : x`, unsigned. AVX2 only has a
/// signed 64-bit compare, so `x` is biased by `2^63`; `bound_biased`
/// must be `bound ^ 2^63`, hoisted by the caller.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sub_if_ge(x: __m256i, bound: __m256i, bound_biased: __m256i, sign: __m256i) -> __m256i {
    let lt = _mm256_cmpgt_epi64(bound_biased, _mm256_xor_si256(x, sign));
    _mm256_sub_epi64(x, _mm256_andnot_si256(lt, bound))
}

/// 4-lane `mul_shoup_lazy(y, w, w_shoup, q)`:
/// `w·y − ((w_shoup·y) >> 64)·q` in wrapping u64, result in `[0, 2q)`.
#[inline]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn mul_shoup_lazy4(
    y: __m256i,
    w: __m256i,
    w_hi: __m256i,
    ws: __m256i,
    ws_hi: __m256i,
    q: __m256i,
    q_hi: __m256i,
) -> __m256i {
    let y_hi = _mm256_srli_epi64::<32>(y);
    let hi = mul_hi64(ws, ws_hi, y, y_hi);
    let hi_hi = _mm256_srli_epi64::<32>(hi);
    _mm256_sub_epi64(mul_lo64(w, w_hi, y, y_hi), mul_lo64(q, q_hi, hi, hi_hi))
}

#[target_feature(enable = "avx2")]
unsafe fn forward_avx2(table: &NttTable, a: &mut [u64]) {
    let q = table.q;
    let two_q = 2 * q;
    let n = table.n;
    let q_v = _mm256_set1_epi64x(q as i64);
    let q_hi = _mm256_set1_epi64x((q >> 32) as i64);
    let two_q_v = _mm256_set1_epi64x(two_q as i64);
    let sign = _mm256_set1_epi64x(i64::MIN);
    let two_q_b = _mm256_xor_si256(two_q_v, sign);
    let q_b = _mm256_xor_si256(q_v, sign);
    let base = a.as_mut_ptr();
    let mut t = n;
    let mut m = 1;
    while m < n {
        t /= 2;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = table.psi_rev[m + i];
            let s_shoup = table.psi_rev_shoup[m + i];
            if t >= 4 {
                let w = _mm256_set1_epi64x(s as i64);
                let w_hi = _mm256_set1_epi64x((s >> 32) as i64);
                let ws = _mm256_set1_epi64x(s_shoup as i64);
                let ws_hi = _mm256_set1_epi64x((s_shoup >> 32) as i64);
                let mut j = j1;
                while j < j1 + t {
                    // SAFETY: j + t + 3 ≤ j1 + 2t − 1 < n.
                    let pu = base.add(j) as *mut __m256i;
                    let pv = base.add(j + t) as *mut __m256i;
                    let mut u = _mm256_loadu_si256(pu);
                    let y = _mm256_loadu_si256(pv);
                    u = sub_if_ge(u, two_q_v, two_q_b, sign);
                    let v = mul_shoup_lazy4(y, w, w_hi, ws, ws_hi, q_v, q_hi);
                    _mm256_storeu_si256(pu, _mm256_add_epi64(u, v));
                    _mm256_storeu_si256(pv, _mm256_add_epi64(u, _mm256_sub_epi64(two_q_v, v)));
                    j += 4;
                }
            } else {
                for j in j1..j1 + t {
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = super::mul_shoup_lazy(a[j + t], s, s_shoup, q);
                    a[j] = u + v;
                    a[j + t] = u + two_q - v;
                }
            }
        }
        m *= 2;
    }
    // Canonicalize [0, 4q) → [0, q), 4 lanes at a time (n is a power
    // of two ≥ MIN_VECTOR_RING, so it divides evenly).
    let mut j = 0;
    while j < n {
        // SAFETY: j + 3 < n since 4 | n.
        let p = base.add(j) as *mut __m256i;
        let mut x = _mm256_loadu_si256(p);
        x = sub_if_ge(x, two_q_v, two_q_b, sign);
        x = sub_if_ge(x, q_v, q_b, sign);
        _mm256_storeu_si256(p, x);
        j += 4;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn inverse_avx2(table: &NttTable, a: &mut [u64]) {
    let q = table.q;
    let two_q = 2 * q;
    let n = table.n;
    let q_v = _mm256_set1_epi64x(q as i64);
    let q_hi = _mm256_set1_epi64x((q >> 32) as i64);
    let two_q_v = _mm256_set1_epi64x(two_q as i64);
    let sign = _mm256_set1_epi64x(i64::MIN);
    let two_q_b = _mm256_xor_si256(two_q_v, sign);
    let q_b = _mm256_xor_si256(q_v, sign);
    let base = a.as_mut_ptr();
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let s = table.psi_inv_rev[h + i];
            let s_shoup = table.psi_inv_rev_shoup[h + i];
            if t >= 4 {
                let w = _mm256_set1_epi64x(s as i64);
                let w_hi = _mm256_set1_epi64x((s >> 32) as i64);
                let ws = _mm256_set1_epi64x(s_shoup as i64);
                let ws_hi = _mm256_set1_epi64x((s_shoup >> 32) as i64);
                let mut j = j1;
                while j < j1 + t {
                    // SAFETY: j + t + 3 ≤ j1 + 2t − 1 < n.
                    let pu = base.add(j) as *mut __m256i;
                    let pv = base.add(j + t) as *mut __m256i;
                    let u = _mm256_loadu_si256(pu);
                    let v = _mm256_loadu_si256(pv);
                    let sum = sub_if_ge(_mm256_add_epi64(u, v), two_q_v, two_q_b, sign);
                    _mm256_storeu_si256(pu, sum);
                    let diff = _mm256_sub_epi64(_mm256_add_epi64(u, two_q_v), v);
                    let out = mul_shoup_lazy4(diff, w, w_hi, ws, ws_hi, q_v, q_hi);
                    _mm256_storeu_si256(pv, out);
                    j += 4;
                }
            } else {
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    let mut sum = u + v;
                    if sum >= two_q {
                        sum -= two_q;
                    }
                    a[j] = sum;
                    a[j + t] = super::mul_shoup_lazy(u + two_q - v, s, s_shoup, q);
                }
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    // Fold in N^{-1} and fully reduce, 4 lanes at a time.
    let n_inv = table.n_inv;
    let w = _mm256_set1_epi64x(n_inv as i64);
    let w_hi = _mm256_set1_epi64x((n_inv >> 32) as i64);
    let ws = _mm256_set1_epi64x(table.n_inv_shoup as i64);
    let ws_hi = _mm256_set1_epi64x((table.n_inv_shoup >> 32) as i64);
    let mut j = 0;
    while j < n {
        // SAFETY: j + 3 < n since 4 | n.
        let p = base.add(j) as *mut __m256i;
        let x = _mm256_loadu_si256(p);
        let r = mul_shoup_lazy4(x, w, w_hi, ws, ws_hi, q_v, q_hi);
        _mm256_storeu_si256(p, sub_if_ge(r, q_v, q_b, sign));
        j += 4;
    }
}
