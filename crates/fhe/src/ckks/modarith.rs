//! 64-bit modular arithmetic primitives for the RNS-CKKS backend.
//!
//! All CKKS polynomial arithmetic happens modulo word-sized NTT-friendly
//! primes `q ≡ 1 (mod 2N)`. This module provides the scalar operations
//! (add/sub/mul/pow/inv mod q), deterministic 64-bit Miller–Rabin, and the
//! prime/root search used when instantiating a parameter set.

/// Adds two residues modulo `q`. Inputs must be `< q`.
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    let s = a + b; // q < 2^63 in all parameter sets, so this cannot overflow
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `q`. Inputs must be `< q`.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Multiplies two residues modulo `q` via a 128-bit intermediate.
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    (u128::from(a) * u128::from(b) % u128::from(q)) as u64
}

/// Negates a residue modulo `q`.
#[inline]
pub fn neg_mod(a: u64, q: u64) -> u64 {
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Computes `base^exp mod q` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    base %= q;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Computes the inverse of `a` modulo prime `q` via Fermat's little theorem.
///
/// # Panics
///
/// Panics if `a` is zero (no inverse exists).
pub fn inv_mod(a: u64, q: u64) -> u64 {
    assert!(!a.is_multiple_of(q), "zero has no modular inverse");
    pow_mod(a, q - 2, q)
}

/// Deterministic Miller–Rabin primality test, valid for all `u64`.
///
/// Uses the fixed witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37},
/// which is known to be sufficient for every 64-bit integer.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let s = (n - 1).trailing_zeros();
    let d = (n - 1) >> s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds `count` distinct primes of exactly `bits` bits with `q ≡ 1 (mod m)`.
///
/// Searches downward from `2^bits - 1` in steps of `m`, so the returned
/// primes are the largest NTT-friendly primes of the requested size. The
/// primes are returned largest-first.
///
/// # Panics
///
/// Panics if `bits` is not in `[20, 62]`, if `m` is not a power of two, or
/// if fewer than `count` suitable primes exist in the size class (does not
/// happen for the parameter sets in this crate).
pub fn find_ntt_primes(bits: u32, count: usize, m: u64) -> Vec<u64> {
    assert!((20..=62).contains(&bits), "prime size {bits} out of range");
    assert!(m.is_power_of_two(), "NTT modulus group order must be a power of two");
    let hi = if bits == 63 { u64::MAX } else { (1u64 << bits) - 1 };
    let lo = 1u64 << (bits - 1);
    // Largest candidate ≡ 1 (mod m) that is ≤ hi.
    let mut candidate = hi - ((hi - 1) % m);
    let mut out = Vec::with_capacity(count);
    while out.len() < count && candidate > lo {
        if is_prime_u64(candidate) {
            out.push(candidate);
        }
        candidate -= m;
    }
    assert!(out.len() == count, "could not find {count} NTT primes of {bits} bits (mod {m})");
    out
}

/// Finds a primitive `order`-th root of unity modulo prime `q`.
///
/// # Panics
///
/// Panics if `order` does not divide `q - 1`.
pub fn primitive_root(order: u64, q: u64) -> u64 {
    assert_eq!((q - 1) % order, 0, "order must divide q - 1");
    let cofactor = (q - 1) / order;
    // Try small candidate generators; g^cofactor has order dividing `order`,
    // and has order exactly `order` iff (g^cofactor)^(order/2) != 1.
    for g in 2u64.. {
        let root = pow_mod(g, cofactor, q);
        if root != 1 && pow_mod(root, order / 2, q) == q - 1 {
            return root;
        }
        if g > 1000 {
            unreachable!("no primitive root found — q is not prime?");
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_mod_wrap() {
        let q = 17u64;
        assert_eq!(add_mod(16, 5, q), 4);
        assert_eq!(sub_mod(3, 5, q), 15);
        assert_eq!(neg_mod(0, q), 0);
        assert_eq!(neg_mod(5, q), 12);
    }

    #[test]
    fn mul_mod_large_operands() {
        let q = (1u64 << 61) - 1; // Mersenne prime
        let a = q - 1;
        assert_eq!(mul_mod(a, a, q), 1); // (-1)^2 = 1
    }

    #[test]
    fn pow_and_inv() {
        let q = 97u64;
        assert_eq!(pow_mod(5, 96, q), 1); // Fermat
        for a in 1..97u64 {
            assert_eq!(mul_mod(a, inv_mod(a, q), q), 1);
        }
    }

    #[test]
    #[should_panic(expected = "inverse")]
    fn inv_of_zero_panics() {
        inv_mod(0, 97);
    }

    #[test]
    fn u64_primality_known_values() {
        assert!(is_prime_u64(2));
        assert!(is_prime_u64((1 << 61) - 1));
        assert!(is_prime_u64(0xFFFF_FFFF_FFFF_FFC5)); // largest prime < 2^64
        assert!(!is_prime_u64(1));
        assert!(!is_prime_u64(3_215_031_751)); // strong pseudoprime to bases 2,3,5,7
        assert!(!is_prime_u64((1 << 62) - 1));
    }

    #[test]
    fn ntt_primes_are_valid() {
        let m = 1u64 << 16; // 2N for N = 32768
        let primes = find_ntt_primes(45, 3, m);
        assert_eq!(primes.len(), 3);
        for &p in &primes {
            assert!(is_prime_u64(p));
            assert_eq!(p % m, 1);
            assert_eq!(64 - p.leading_zeros(), 45);
        }
        // Distinct and descending.
        assert!(primes.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn primitive_root_has_exact_order() {
        let m = 1u64 << 12;
        let q = find_ntt_primes(30, 1, m)[0];
        let w = primitive_root(m, q);
        assert_eq!(pow_mod(w, m, q), 1);
        assert_ne!(pow_mod(w, m / 2, q), 1);
    }
}
