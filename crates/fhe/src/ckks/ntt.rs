//! Negacyclic number-theoretic transform over `Z_q[X]/(X^N + 1)`.
//!
//! Implements the merged-twist NTT of Longa–Naehrig: the powers of the
//! primitive 2N-th root ψ are folded into the butterfly twiddles, so the
//! transform computes the negacyclic convolution directly without separate
//! pre-/post-scaling passes.
//!
//! Twiddle multiplications use Shoup's precomputed-quotient trick: for
//! each twiddle `w` we store `w_shoup = ⌊w·2^64/q⌋`, turning the modular
//! product into one `u64×u64→u128` high half, two wrapping `u64`
//! multiplies and at most one conditional subtraction. Butterflies run
//! with Harvey-style lazy reduction — values stay in `[0, 4q)` through
//! the forward passes and `[0, 2q)` through the inverse passes, and are
//! reduced to canonical `[0, q)` once at the end — which requires
//! `q < 2^62` (guaranteed: `find_ntt_primes` caps primes at 62 bits).
//! Outputs are bit-identical to the plain `mul_mod` implementation this
//! replaces.
//!
//! # Kernel backends
//!
//! The butterfly loops run behind the [`NttKernel`] trait. Three
//! backends exist: the scalar Harvey path above (always compiled, the
//! reference), an AVX2 backend (`x86_64`, 4-lane butterflies with the
//! Shoup multiply-high rebuilt from `_mm256_mul_epu32` 32×32→64
//! partial products), and a NEON backend (`aarch64`, 2-lane). One
//! backend is selected per process — runtime feature detection under
//! an `RHYCHEE_NTT_BACKEND={scalar,avx2,neon,auto}` env override — and
//! the choice is cached inside every [`NttTable`], so `forward`/
//! `inverse`/`multiply` and the per-RNS-prime parallel loops dispatch
//! through a preresolved vtable pointer with zero per-call branching.
//! All backends perform the *same* wrapping-u64 lazy-reduction
//! arithmetic, so outputs are bit-identical across backends (asserted
//! by proptests and the cross-backend identity test).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use super::modarith::{add_mod, inv_mod, mul_mod, primitive_root, sub_mod};
use rhychee_telemetry as telemetry;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
#[cfg(target_arch = "aarch64")]
mod neon;

/// One NTT butterfly-kernel backend.
///
/// Implementations must reproduce the scalar reference arithmetic
/// exactly — same lazy-reduction bounds, same wrapping-u64 operations —
/// so that every backend is bit-identical to [`forward_scalar`]
/// (`NttTable::forward_scalar`); the repo's determinism invariants
/// (parallel determinism, resident-vs-reference identity) depend on it.
/// The table's twiddles are passed back in so kernels stay stateless
/// and one process-global instance serves every `(n, q)` pair.
pub trait NttKernel: Send + Sync + std::fmt::Debug {
    /// Stable backend name: `"scalar"`, `"avx2"` or `"neon"`.
    fn name(&self) -> &'static str;
    /// In-place forward butterflies + canonicalization for `table`.
    fn forward(&self, table: &NttTable, a: &mut [u64]);
    /// In-place inverse butterflies + `N^{-1}` scaling for `table`.
    fn inverse(&self, table: &NttTable, a: &mut [u64]);
}

/// The scalar Harvey lazy-reduction reference backend (always available).
#[derive(Debug)]
struct ScalarKernel;

static SCALAR_KERNEL: ScalarKernel = ScalarKernel;

impl NttKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }
    fn forward(&self, table: &NttTable, a: &mut [u64]) {
        table.forward_scalar(a);
    }
    fn inverse(&self, table: &NttTable, a: &mut [u64]) {
        table.inverse_scalar(a);
    }
}

/// Every backend compiled into this binary *and* usable on this CPU,
/// scalar first. SIMD backends appear only when the corresponding
/// feature is detected at runtime, so handing any element of this
/// slice to [`NttTable::with_kernel`] is always safe.
pub fn available_kernels() -> &'static [&'static dyn NttKernel] {
    static KERNELS: OnceLock<Vec<&'static dyn NttKernel>> = OnceLock::new();
    KERNELS.get_or_init(|| {
        #[allow(unused_mut)]
        let mut v: Vec<&'static dyn NttKernel> = vec![&SCALAR_KERNEL];
        #[cfg(target_arch = "x86_64")]
        if avx2::available() {
            v.push(avx2::kernel());
        }
        #[cfg(target_arch = "x86_64")]
        if avx512::available() {
            v.push(avx512::kernel());
        }
        #[cfg(target_arch = "aarch64")]
        if neon::available() {
            v.push(neon::kernel());
        }
        v
    })
}

/// Looks up an available backend by name (`"scalar"`, `"avx2"`, `"neon"`).
pub fn kernel_by_name(name: &str) -> Option<&'static dyn NttKernel> {
    available_kernels().iter().copied().find(|k| k.name() == name)
}

/// The process-wide backend: resolved once from `RHYCHEE_NTT_BACKEND`
/// (`scalar` / `avx2` / `neon` / `auto`, default `auto` = fastest
/// detected) and cached, so per-call dispatch is a preresolved vtable
/// pointer. Requesting a backend this host cannot run falls back to
/// scalar with a warning rather than aborting, so one CI matrix works
/// across architectures. Publishes the `fhe.ckks.ntt.backend` info
/// metric on first resolution.
pub fn active_kernel() -> &'static dyn NttKernel {
    static ACTIVE: OnceLock<&'static dyn NttKernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let requested = std::env::var("RHYCHEE_NTT_BACKEND").unwrap_or_default();
        let kernel = match requested.as_str() {
            "" | "auto" => *available_kernels().last().expect("scalar kernel always present"),
            name => kernel_by_name(name).unwrap_or_else(|| {
                eprintln!(
                    "warning: RHYCHEE_NTT_BACKEND={name} unavailable on this host \
                     (compiled+detected: {:?}); falling back to scalar",
                    available_kernels().iter().map(|k| k.name()).collect::<Vec<_>>()
                );
                &SCALAR_KERNEL
            }),
        };
        telemetry::count_labeled("fhe.ckks.ntt.backend", "backend", kernel.name(), 1);
        kernel
    })
}

/// Process-wide table cache keyed by `(n, q)`.
///
/// Twiddle tables are pure functions of the ring degree and modulus, so
/// every [`CkksContext`](super::cipher::CkksContext) built for the same
/// parameter set can share one table per prime — repeated context
/// construction (per-client setups, tests) stops redoing the root search
/// and `O(N)` twiddle precomputation. Like the `rhychee-par` pool the
/// cache is spawn-once and never evicted; a workload touches a handful
/// of `(n, q)` pairs at most.
type TableMap = HashMap<(usize, u64), Arc<NttTable>>;
static TABLE_CACHE: OnceLock<Mutex<TableMap>> = OnceLock::new();

/// Returns the shared table for `(n, q)`, building it on first use.
///
/// Emits `fhe.ckks.ntt.table_cache.hit` / `.miss` counters so the
/// reuse rate is observable.
///
/// # Panics
///
/// Panics under the same conditions as [`NttTable::new`].
pub fn cached_table(n: usize, q: u64) -> Arc<NttTable> {
    let cache = TABLE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(table) = map.get(&(n, q)) {
        telemetry::count("fhe.ckks.ntt.table_cache.hit", 1);
        return Arc::clone(table);
    }
    telemetry::count("fhe.ckks.ntt.table_cache.miss", 1);
    let table = Arc::new(NttTable::new(n, q));
    // Per-backend cache accounting: which kernel the retained twiddle
    // bytes serve. The backend is process-global, so in practice one
    // label accumulates, but the breakdown survives env-override tests.
    telemetry::count_labeled("fhe.ckks.ntt.table_cache.tables", "backend", table.backend(), 1);
    telemetry::count_labeled(
        "fhe.ckks.ntt.table_cache.bytes_added",
        "backend",
        table.backend(),
        table.bytes(),
    );
    map.insert((n, q), Arc::clone(&table));
    table
}

/// Total bytes retained by the process-wide twiddle-table cache — one
/// entry per `(n, q)` pair ever requested, never evicted. Feeds the
/// `fhe.ntt_table_cache` entry of the memory observability breakdown.
pub fn table_cache_bytes() -> u64 {
    let Some(cache) = TABLE_CACHE.get() else {
        return 0;
    };
    let map = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    map.values().map(|t| t.bytes()).sum()
}

/// `⌊w·2^64/q⌋` — Shoup's precomputed quotient for twiddle `w < q`.
#[inline]
fn shoup(w: u64, q: u64) -> u64 {
    (((w as u128) << 64) / q as u128) as u64
}

/// Shoup modular product `w·y mod q`, lazily reduced to `[0, 2q)`.
///
/// Requires `w < q` and `w_shoup = ⌊w·2^64/q⌋`; `y` may be any `u64`
/// (in particular a `[0, 4q)` lazy value).
#[inline(always)]
fn mul_shoup_lazy(y: u64, w: u64, w_shoup: u64, q: u64) -> u64 {
    let hi = ((w_shoup as u128 * y as u128) >> 64) as u64;
    w.wrapping_mul(y).wrapping_sub(hi.wrapping_mul(q))
}

/// Shoup modular product fully reduced to `[0, q)`.
#[inline(always)]
fn mul_shoup(y: u64, w: u64, w_shoup: u64, q: u64) -> u64 {
    let r = mul_shoup_lazy(y, w, w_shoup, q);
    if r >= q {
        r - q
    } else {
        r
    }
}

/// Precomputed NTT tables for one prime modulus.
///
/// Construction cost is `O(N)` after the root search; transforms are
/// `O(N log N)`. One table is built per RNS prime in a parameter set.
#[derive(Debug, Clone)]
pub struct NttTable {
    q: u64,
    n: usize,
    /// ψ^i in bit-reversed index order (forward twiddles).
    psi_rev: Vec<u64>,
    /// Shoup quotients for `psi_rev`.
    psi_rev_shoup: Vec<u64>,
    /// ψ^{-i} in bit-reversed index order (inverse twiddles).
    psi_inv_rev: Vec<u64>,
    /// Shoup quotients for `psi_inv_rev`.
    psi_inv_rev_shoup: Vec<u64>,
    /// N^{-1} mod q, folded into the last inverse pass.
    n_inv: u64,
    /// Shoup quotient for `n_inv`.
    n_inv_shoup: u64,
    /// `psi_inv_rev[1] · N^{-1} mod q` — the single twiddle of the
    /// final inverse pass with the `N^{-1}` scaling pre-folded, so
    /// SIMD kernels can emit canonical outputs from that pass and skip
    /// the separate scaling sweep (outputs are fully reduced either
    /// way, so this cannot change results).
    inv_last_folded: u64,
    /// Shoup quotient for `inv_last_folded`.
    inv_last_folded_shoup: u64,
    /// The butterfly backend this table dispatches through — resolved
    /// once at construction ([`active_kernel`] unless overridden via
    /// [`NttTable::with_kernel`]), so per-call dispatch is branch-free.
    kernel: &'static dyn NttKernel,
}

impl NttTable {
    /// Builds tables for ring degree `n` (a power of two) and prime `q`
    /// with `q ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, `q ≢ 1 (mod 2n)`, or
    /// `q ≥ 2^62` (the lazy-reduction headroom bound).
    pub fn new(n: usize, q: u64) -> Self {
        Self::with_kernel(n, q, active_kernel())
    }

    /// Builds tables for `(n, q)` dispatching through an explicit
    /// backend instead of the process-wide [`active_kernel`]. Used by
    /// the per-backend proptests, the cross-backend bit-identity test
    /// and `bench_fhe`'s per-backend rows. `kernel` must come from
    /// [`available_kernels`] / [`kernel_by_name`], which only hand out
    /// backends the running CPU supports.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NttTable::new`].
    pub fn with_kernel(n: usize, q: u64, kernel: &'static dyn NttKernel) -> Self {
        assert!(n.is_power_of_two(), "ring degree must be a power of two");
        assert_eq!((q - 1) % (2 * n as u64), 0, "q must be 1 mod 2N");
        assert!(q < 1u64 << 62, "q must be < 2^62 for lazy reduction");
        let psi = primitive_root(2 * n as u64, q);
        let psi_inv = inv_mod(psi, q);
        let log_n = n.trailing_zeros();
        let mut psi_rev = vec![0u64; n];
        let mut psi_inv_rev = vec![0u64; n];
        let mut fwd = 1u64;
        let mut inv = 1u64;
        let mut powers_fwd = vec![0u64; n];
        let mut powers_inv = vec![0u64; n];
        for i in 0..n {
            powers_fwd[i] = fwd;
            powers_inv[i] = inv;
            fwd = mul_mod(fwd, psi, q);
            inv = mul_mod(inv, psi_inv, q);
        }
        for i in 0..n {
            let r = (i as u32).reverse_bits() >> (32 - log_n);
            psi_rev[i] = powers_fwd[r as usize];
            psi_inv_rev[i] = powers_inv[r as usize];
        }
        let psi_rev_shoup = psi_rev.iter().map(|&w| shoup(w, q)).collect();
        let psi_inv_rev_shoup = psi_inv_rev.iter().map(|&w| shoup(w, q)).collect();
        let n_inv = inv_mod(n as u64, q);
        let n_inv_shoup = shoup(n_inv, q);
        let inv_last_folded = if n > 1 { mul_mod(psi_inv_rev[1], n_inv, q) } else { n_inv };
        let inv_last_folded_shoup = shoup(inv_last_folded, q);
        NttTable {
            q,
            n,
            psi_rev,
            psi_rev_shoup,
            psi_inv_rev,
            psi_inv_rev_shoup,
            n_inv,
            n_inv_shoup,
            inv_last_folded,
            inv_last_folded_shoup,
            kernel,
        }
    }

    /// The prime modulus of this table.
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Name of the butterfly backend this table dispatches through.
    pub fn backend(&self) -> &'static str {
        self.kernel.name()
    }

    /// The ring degree of this table.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Heap bytes held by this table's four twiddle vectors.
    pub fn bytes(&self) -> u64 {
        8 * (self.psi_rev.capacity()
            + self.psi_rev_shoup.capacity()
            + self.psi_inv_rev.capacity()
            + self.psi_inv_rev_shoup.capacity()) as u64
    }

    /// In-place forward negacyclic NTT.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        telemetry::count("fhe.ckks.ntt.forward.count", 1);
        let _t = telemetry::timer("fhe.ckks.ntt.forward");
        self.kernel.forward(self, a);
    }

    /// Scalar reference forward butterflies (no telemetry, no length
    /// check — callers are [`forward`](Self::forward) and the SIMD
    /// kernels' small-ring fallback).
    pub(crate) fn forward_scalar(&self, a: &mut [u64]) {
        let q = self.q;
        let two_q = 2 * q;
        let mut t = self.n;
        let mut m = 1;
        // Cooley–Tukey passes with the [0, 4q) lazy invariant: `u` is
        // reduced into [0, 2q) before use, the Shoup product lands in
        // [0, 2q), so both outputs stay below 4q.
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_rev[m + i];
                let s_shoup = self.psi_rev_shoup[m + i];
                for j in j1..j1 + t {
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = mul_shoup_lazy(a[j + t], s, s_shoup, q);
                    a[j] = u + v;
                    a[j + t] = u + two_q - v;
                }
            }
            m *= 2;
        }
        for x in a.iter_mut() {
            let mut y = *x;
            if y >= two_q {
                y -= two_q;
            }
            if y >= q {
                y -= q;
            }
            *x = y;
        }
    }

    /// In-place inverse negacyclic NTT (including the `N^{-1}` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        telemetry::count("fhe.ckks.ntt.inverse.count", 1);
        let _t = telemetry::timer("fhe.ckks.ntt.inverse");
        self.kernel.inverse(self, a);
    }

    /// Scalar reference inverse butterflies (see
    /// [`forward_scalar`](Self::forward_scalar)).
    pub(crate) fn inverse_scalar(&self, a: &mut [u64]) {
        let q = self.q;
        let two_q = 2 * q;
        let mut t = 1;
        let mut m = self.n;
        // Gentleman–Sande passes with the [0, 2q) lazy invariant: the
        // sum is conditionally reduced back below 2q, the difference
        // (at most 4q before the Shoup product) lands in [0, 2q).
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.psi_inv_rev[h + i];
                let s_shoup = self.psi_inv_rev_shoup[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    let mut sum = u + v;
                    if sum >= two_q {
                        sum -= two_q;
                    }
                    a[j] = sum;
                    a[j + t] = mul_shoup_lazy(u + two_q - v, s, s_shoup, q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_shoup(*x, self.n_inv, self.n_inv_shoup, q);
        }
    }

    /// Negacyclic polynomial product `a * b mod (X^N + 1, q)` via NTT.
    ///
    /// Convenience wrapper used by tests and non-hot paths; hot paths keep
    /// operands in the NTT domain and multiply pointwise.
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = mul_mod(*x, *y, self.q);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Schoolbook negacyclic multiplication, used as a test oracle.
///
/// `O(N^2)`; only suitable for small N.
pub fn negacyclic_mul_naive(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let p = mul_mod(ai, bj, q);
            let k = i + j;
            if k < n {
                out[k] = add_mod(out[k], p, q);
            } else {
                // X^N = -1
                out[k - n] = sub_mod(out[k - n], p, q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::modarith::find_ntt_primes;
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn table(n: usize) -> NttTable {
        let q = find_ntt_primes(40, 1, 2 * n as u64)[0];
        NttTable::new(n, q)
    }

    #[test]
    fn shoup_product_matches_mul_mod() {
        let q = find_ntt_primes(61, 1, 128)[0];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let w = rng.gen_range(0..q);
            let ws = shoup(w, q);
            // `y` ranges over the full lazy domain [0, 4q).
            let y = rng.gen_range(0..4 * q);
            let r = mul_shoup_lazy(y, w, ws, q);
            assert!(r < 2 * q, "lazy result out of range");
            assert_eq!(r % q, mul_mod(w, y % q, q));
            assert_eq!(mul_shoup(y, w, ws, q), mul_mod(w, y % q, q));
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let t = table(256);
        let mut rng = StdRng::seed_from_u64(1);
        let original: Vec<u64> = (0..256).map(|_| rng.gen_range(0..t.modulus())).collect();
        let mut a = original.clone();
        t.forward(&mut a);
        assert_ne!(a, original, "transform should not be identity");
        t.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn round_trip_at_61_bit_prime() {
        // Exercises the lazy-reduction headroom near the 62-bit cap.
        let n = 128;
        let q = find_ntt_primes(61, 1, 2 * n as u64)[0];
        assert!(q > 1u64 << 60);
        let t = NttTable::new(n as usize, q);
        let mut rng = StdRng::seed_from_u64(7);
        let original: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut a = original.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, original);
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        assert_eq!(t.multiply(&original, &b), negacyclic_mul_naive(&original, &b, q));
    }

    #[test]
    fn forward_output_is_canonical() {
        let t = table(64);
        let mut rng = StdRng::seed_from_u64(11);
        let mut a: Vec<u64> = (0..64).map(|_| rng.gen_range(0..t.modulus())).collect();
        t.forward(&mut a);
        assert!(a.iter().all(|&x| x < t.modulus()));
    }

    #[test]
    fn ntt_multiply_matches_naive() {
        let t = table(64);
        let q = t.modulus();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
            assert_eq!(t.multiply(&a, &b), negacyclic_mul_naive(&a, &b, q));
        }
    }

    #[test]
    fn multiply_by_one_is_identity() {
        let t = table(128);
        let mut one = vec![0u64; 128];
        one[0] = 1;
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..128).map(|_| rng.gen_range(0..t.modulus())).collect();
        assert_eq!(t.multiply(&a, &one), a);
    }

    #[test]
    fn multiply_by_x_rotates_with_sign() {
        // X * (c_0, ..., c_{N-1}) = (-c_{N-1}, c_0, ..., c_{N-2}) in the
        // negacyclic ring.
        let t = table(16);
        let q = t.modulus();
        let mut x = vec![0u64; 16];
        x[1] = 1;
        let a: Vec<u64> = (1..=16).collect();
        let out = t.multiply(&a, &x);
        assert_eq!(out[0], q - 16);
        assert_eq!(&out[1..], &a[..15]);
    }

    #[test]
    fn works_at_large_degree() {
        let t = table(4096);
        let mut rng = StdRng::seed_from_u64(4);
        let original: Vec<u64> = (0..4096).map(|_| rng.gen_range(0..t.modulus())).collect();
        let mut a = original.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    #[should_panic(expected = "ring degree")]
    fn rejects_wrong_length() {
        let t = table(64);
        let mut a = vec![0u64; 32];
        t.forward(&mut a);
    }
}
