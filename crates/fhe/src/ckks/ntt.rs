//! Negacyclic number-theoretic transform over `Z_q[X]/(X^N + 1)`.
//!
//! Implements the merged-twist NTT of Longa–Naehrig: the powers of the
//! primitive 2N-th root ψ are folded into the butterfly twiddles, so the
//! transform computes the negacyclic convolution directly without separate
//! pre-/post-scaling passes.

use super::modarith::{add_mod, inv_mod, mul_mod, primitive_root, sub_mod};
use rhychee_telemetry as telemetry;

/// Precomputed NTT tables for one prime modulus.
///
/// Construction cost is `O(N)` after the root search; transforms are
/// `O(N log N)`. One table is built per RNS prime in a parameter set.
#[derive(Debug, Clone)]
pub struct NttTable {
    q: u64,
    n: usize,
    /// ψ^i in bit-reversed index order (forward twiddles).
    psi_rev: Vec<u64>,
    /// ψ^{-i} in bit-reversed index order (inverse twiddles).
    psi_inv_rev: Vec<u64>,
    /// N^{-1} mod q, folded into the last inverse pass.
    n_inv: u64,
}

impl NttTable {
    /// Builds tables for ring degree `n` (a power of two) and prime `q`
    /// with `q ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q ≢ 1 (mod 2n)`.
    pub fn new(n: usize, q: u64) -> Self {
        assert!(n.is_power_of_two(), "ring degree must be a power of two");
        assert_eq!((q - 1) % (2 * n as u64), 0, "q must be 1 mod 2N");
        let psi = primitive_root(2 * n as u64, q);
        let psi_inv = inv_mod(psi, q);
        let log_n = n.trailing_zeros();
        let mut psi_rev = vec![0u64; n];
        let mut psi_inv_rev = vec![0u64; n];
        let mut fwd = 1u64;
        let mut inv = 1u64;
        let mut powers_fwd = vec![0u64; n];
        let mut powers_inv = vec![0u64; n];
        for i in 0..n {
            powers_fwd[i] = fwd;
            powers_inv[i] = inv;
            fwd = mul_mod(fwd, psi, q);
            inv = mul_mod(inv, psi_inv, q);
        }
        for i in 0..n {
            let r = (i as u32).reverse_bits() >> (32 - log_n);
            psi_rev[i] = powers_fwd[r as usize];
            psi_inv_rev[i] = powers_inv[r as usize];
        }
        let n_inv = inv_mod(n as u64, q);
        NttTable { q, n, psi_rev, psi_inv_rev, n_inv }
    }

    /// The prime modulus of this table.
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The ring degree of this table.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// In-place forward negacyclic NTT.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let _t = telemetry::timer("fhe.ckks.ntt.forward");
        let q = self.q;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_rev[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mul_mod(a[j + t], s, q);
                    a[j] = add_mod(u, v, q);
                    a[j + t] = sub_mod(u, v, q);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (including the `N^{-1}` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let _t = telemetry::timer("fhe.ckks.ntt.inverse");
        let q = self.q;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.psi_inv_rev[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = add_mod(u, v, q);
                    a[j + t] = mul_mod(sub_mod(u, v, q), s, q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_mod(*x, self.n_inv, q);
        }
    }

    /// Negacyclic polynomial product `a * b mod (X^N + 1, q)` via NTT.
    ///
    /// Convenience wrapper used by tests and non-hot paths; hot paths keep
    /// operands in the NTT domain and multiply pointwise.
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = mul_mod(*x, *y, self.q);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Schoolbook negacyclic multiplication, used as a test oracle.
///
/// `O(N^2)`; only suitable for small N.
pub fn negacyclic_mul_naive(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let p = mul_mod(ai, bj, q);
            let k = i + j;
            if k < n {
                out[k] = add_mod(out[k], p, q);
            } else {
                // X^N = -1
                out[k - n] = sub_mod(out[k - n], p, q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::modarith::find_ntt_primes;
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn table(n: usize) -> NttTable {
        let q = find_ntt_primes(40, 1, 2 * n as u64)[0];
        NttTable::new(n, q)
    }

    #[test]
    fn forward_inverse_round_trip() {
        let t = table(256);
        let mut rng = StdRng::seed_from_u64(1);
        let original: Vec<u64> = (0..256).map(|_| rng.gen_range(0..t.modulus())).collect();
        let mut a = original.clone();
        t.forward(&mut a);
        assert_ne!(a, original, "transform should not be identity");
        t.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn ntt_multiply_matches_naive() {
        let t = table(64);
        let q = t.modulus();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
            assert_eq!(t.multiply(&a, &b), negacyclic_mul_naive(&a, &b, q));
        }
    }

    #[test]
    fn multiply_by_one_is_identity() {
        let t = table(128);
        let mut one = vec![0u64; 128];
        one[0] = 1;
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..128).map(|_| rng.gen_range(0..t.modulus())).collect();
        assert_eq!(t.multiply(&a, &one), a);
    }

    #[test]
    fn multiply_by_x_rotates_with_sign() {
        // X * (c_0, ..., c_{N-1}) = (-c_{N-1}, c_0, ..., c_{N-2}) in the
        // negacyclic ring.
        let t = table(16);
        let q = t.modulus();
        let mut x = vec![0u64; 16];
        x[1] = 1;
        let a: Vec<u64> = (1..=16).collect();
        let out = t.multiply(&a, &x);
        assert_eq!(out[0], q - 16);
        assert_eq!(&out[1..], &a[..15]);
    }

    #[test]
    fn works_at_large_degree() {
        let t = table(4096);
        let mut rng = StdRng::seed_from_u64(4);
        let original: Vec<u64> = (0..4096).map(|_| rng.gen_range(0..t.modulus())).collect();
        let mut a = original.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    #[should_panic(expected = "ring degree")]
    fn rejects_wrong_length() {
        let t = table(64);
        let mut a = vec![0u64; 32];
        t.forward(&mut a);
    }
}
