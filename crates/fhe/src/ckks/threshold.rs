//! Threshold (additively key-shared) CKKS.
//!
//! The paper's xMK-CKKS baseline uses a threshold multi-key variant of
//! CKKS so that *no single client* holds the full decryption key. This
//! module implements the standard n-out-of-n additive-sharing construction
//! over our RNS-CKKS backend:
//!
//! * each party samples a ternary share `s_i`; the joint secret is
//!   `s = Σ s_i` and is never materialized anywhere;
//! * key generation runs against a common random polynomial `a` (the
//!   CRS): party `i` publishes `b_i = −a·s_i + e_i`, and the joint public
//!   key is `(Σ b_i, a)`;
//! * decryption is distributed: party `i` publishes the partial
//!   `p_i = c1·s_i + e_i^smudge`; summing all partials with `c0` yields
//!   the plaintext. The smudging noise hides each share.
//!
//! Rhychee-FL itself uses the simpler shared-secret-key deployment
//! (paper §IV-A), but this extension removes that trust assumption and
//! makes the Table II comparison architecture-faithful.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_fhe::ckks::threshold::ThresholdGroup;
//! use rhychee_fhe::ckks::CkksContext;
//! use rhychee_fhe::params::CkksParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = CkksContext::new(CkksParams::toy())?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let group = ThresholdGroup::generate(&ctx, 3, &mut rng);
//! let ct = ctx.encrypt(group.public_key(), &[1.0, 2.0], &mut rng)?;
//! // All three parties cooperate to decrypt.
//! let partials: Vec<_> =
//!     (0..3).map(|i| group.partial_decrypt(&ctx, i, &ct, &mut rng)).collect();
//! let values = ThresholdGroup::combine(&ctx, &ct, &partials);
//! assert!((values[0] - 1.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

use rand::Rng;

use crate::sampling::{gaussian_vec, ternary_vec};

use super::cipher::{CkksCiphertext, CkksContext, CkksPublicKey};
use super::rns::RnsPoly;

/// Smudging-noise standard deviation for partial decryptions.
///
/// Must dominate the decryption noise to statistically hide each party's
/// key share; 2^10 leaves ~40 bits of plaintext precision at Δ = 2^26+.
const SMUDGING_SIGMA: f64 = 1024.0;

/// One party's additive key share.
#[derive(Debug, Clone)]
pub struct KeyShare {
    share: RnsPoly,
}

/// A partial decryption `p_i = c1·s_i + e_smudge`.
#[derive(Debug, Clone)]
pub struct PartialDecryption {
    poly: RnsPoly,
}

/// An n-out-of-n threshold key group: the shares plus the joint public
/// key. In a real deployment each share would live on its own client;
/// the group type models the ceremony for simulation.
#[derive(Debug)]
pub struct ThresholdGroup {
    shares: Vec<KeyShare>,
    public_key: CkksPublicKey,
}

impl ThresholdGroup {
    /// Runs the distributed key-generation ceremony for `parties`
    /// participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        parties: usize,
        rng: &mut R,
    ) -> ThresholdGroup {
        assert!(parties > 0, "need at least one party");
        let n = ctx.params().n;
        let primes = ctx.primes();
        // Common random polynomial (CRS), public to everyone.
        let a = ctx.uniform_poly(rng);
        let mut shares = Vec::with_capacity(parties);
        let mut b_sum: Option<RnsPoly> = None;
        for _ in 0..parties {
            let s_i = RnsPoly::from_signed_coeffs(&ternary_vec(rng, n), primes);
            let e_i =
                RnsPoly::from_signed_coeffs(&gaussian_vec(rng, n, ctx.params().sigma), primes);
            // b_i = -(a · s_i) + e_i
            let b_i = ctx.poly_mul_at(&a, &s_i, primes.len()).neg(primes).add(&e_i, primes);
            b_sum = Some(match b_sum {
                None => b_i,
                Some(acc) => acc.add(&b_i, primes),
            });
            shares.push(KeyShare { share: s_i });
        }
        let b = b_sum.expect("at least one party");
        ThresholdGroup { shares, public_key: CkksPublicKey::from_coeff(ctx, b, a) }
    }

    /// Number of parties in the group.
    pub fn parties(&self) -> usize {
        self.shares.len()
    }

    /// The joint public key (given to the aggregation server).
    pub fn public_key(&self) -> &CkksPublicKey {
        &self.public_key
    }

    /// Party `party`'s partial decryption of `ct`, with smudging noise.
    ///
    /// # Panics
    ///
    /// Panics if `party` is out of range.
    pub fn partial_decrypt<R: Rng + ?Sized>(
        &self,
        ctx: &CkksContext,
        party: usize,
        ct: &CkksCiphertext,
        rng: &mut R,
    ) -> PartialDecryption {
        let levels = ct.levels();
        let primes = &ctx.primes()[..levels];
        let share = ctx.at_level(&self.shares[party].share, levels);
        let smudge =
            RnsPoly::from_signed_coeffs(&gaussian_vec(rng, ctx.params().n, SMUDGING_SIGMA), primes);
        // The share product runs in the coefficient domain; resident
        // ciphertexts convert at entry (threshold decryption is a
        // round-end operation, not the aggregation hot loop).
        let c1 = ctx.to_coeff(&ct.c1);
        let poly = ctx.poly_mul_at(&c1, &share, levels).add(&smudge, primes);
        PartialDecryption { poly }
    }

    /// Combines all partial decryptions into the plaintext slots.
    ///
    /// # Panics
    ///
    /// Panics if `partials` is empty or shapes mismatch (all parties must
    /// contribute for n-out-of-n sharing).
    pub fn combine(
        ctx: &CkksContext,
        ct: &CkksCiphertext,
        partials: &[PartialDecryption],
    ) -> Vec<f64> {
        assert!(!partials.is_empty(), "need every party's partial decryption");
        let levels = ct.levels();
        let primes = &ctx.primes()[..levels];
        let mut m = ctx.to_coeff(&ct.c0);
        for p in partials {
            m.add_assign(&p.poly, primes);
        }
        let coeffs = m.to_centered_f64(primes);
        ctx.encoder().decode_with_scale(&coeffs, ct.scale())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup(parties: usize) -> (CkksContext, ThresholdGroup, StdRng) {
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let mut rng = StdRng::seed_from_u64(99);
        let group = ThresholdGroup::generate(&ctx, parties, &mut rng);
        (ctx, group, rng)
    }

    fn decrypt_all(
        ctx: &CkksContext,
        group: &ThresholdGroup,
        ct: &CkksCiphertext,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let partials: Vec<_> =
            (0..group.parties()).map(|i| group.partial_decrypt(ctx, i, ct, rng)).collect();
        ThresholdGroup::combine(ctx, ct, &partials)
    }

    #[test]
    fn joint_key_encrypt_and_distributed_decrypt() {
        let (ctx, group, mut rng) = setup(4);
        let values = vec![1.5, -2.25, 100.0, 0.0];
        let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
        let back = decrypt_all(&ctx, &group, &ct, &mut rng);
        for (v, b) in values.iter().zip(&back) {
            assert!((v - b).abs() < 0.05, "{v} vs {b}");
        }
    }

    #[test]
    fn missing_party_cannot_decrypt() {
        let (ctx, group, mut rng) = setup(3);
        let values = vec![42.0; 8];
        let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
        // Only 2 of 3 partials: the result must be garbage (the missing
        // c1·s_2 term leaves a uniform-looking mask in place).
        let partials: Vec<_> =
            (0..2).map(|i| group.partial_decrypt(&ctx, i, &ct, &mut rng)).collect();
        let broken = ThresholdGroup::combine(&ctx, &ct, &partials);
        let max_err = broken[..8].iter().map(|b| (b - 42.0).abs()).fold(0.0f64, f64::max);
        assert!(max_err > 1.0, "partial coalition must not learn the plaintext (err {max_err})");
    }

    #[test]
    fn homomorphic_average_under_threshold_keys() {
        // The full Rhychee-FL aggregation pattern with no shared secret:
        // clients encrypt under the joint key, the server averages, all
        // parties cooperate to decrypt the global model.
        let (ctx, group, mut rng) = setup(3);
        let models = [[2.0, 4.0], [4.0, 8.0], [6.0, 12.0]];
        let mut acc = ctx.encrypt(group.public_key(), &models[0], &mut rng).expect("encrypt");
        for m in &models[1..] {
            let ct = ctx.encrypt(group.public_key(), m, &mut rng).expect("encrypt");
            ctx.add_assign(&mut acc, &ct).expect("add");
        }
        let avg = ctx.mul_scalar(&acc, 1.0 / 3.0);
        let back = decrypt_all(&ctx, &group, &avg, &mut rng);
        assert!((back[0] - 4.0).abs() < 0.05, "{}", back[0]);
        assert!((back[1] - 8.0).abs() < 0.05, "{}", back[1]);
    }

    #[test]
    fn single_party_group_matches_plain_ckks_shape() {
        let (ctx, group, mut rng) = setup(1);
        let ct = ctx.encrypt(group.public_key(), &[7.0], &mut rng).expect("encrypt");
        let back = decrypt_all(&ctx, &group, &ct, &mut rng);
        assert!((back[0] - 7.0).abs() < 0.05);
    }

    #[test]
    fn works_at_paper_parameters() {
        let ctx = CkksContext::new(CkksParams::ckks4()).expect("params");
        let mut rng = StdRng::seed_from_u64(5);
        let group = ThresholdGroup::generate(&ctx, 5, &mut rng);
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
        let partials: Vec<_> =
            (0..5).map(|i| group.partial_decrypt(&ctx, i, &ct, &mut rng)).collect();
        let back = ThresholdGroup::combine(&ctx, &ct, &partials);
        for (i, v) in values.iter().enumerate() {
            assert!((back[i] - v).abs() < 0.05, "slot {i}: {} vs {v}", back[i]);
        }
    }
}
