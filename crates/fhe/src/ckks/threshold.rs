//! Threshold (key-shared) CKKS: n-out-of-n additive sharing and
//! k-out-of-n Shamir sharing with dropout recovery.
//!
//! The paper's xMK-CKKS baseline uses a threshold multi-key variant of
//! CKKS so that *no single client* holds the full decryption key. This
//! module implements two constructions over our RNS-CKKS backend:
//!
//! **n-out-of-n additive sharing** ([`ThresholdGroup::generate`]):
//!
//! * each party samples a ternary share `s_i`; the joint secret is
//!   `s = Σ s_i` and is never materialized anywhere;
//! * key generation runs against a common random polynomial `a` (the
//!   CRS): party `i` publishes `b_i = −a·s_i + e_i`, and the joint public
//!   key is `(Σ b_i, a)`;
//! * decryption is distributed: party `i` publishes the partial
//!   `p_i = c1·s_i + e_i^smudge`; summing all partials with `c0` yields
//!   the plaintext. The smudging noise hides each share.
//!
//! **k-out-of-n Shamir sharing** ([`ThresholdGroup::generate_kofn`]):
//! the ceremony additionally Shamir-shares each party's additive
//! contribution, so party `j` ends up holding `F(x_j)` for a degree-
//! `k−1` polynomial `F` with `F(0) = s`. Any `k` surviving parties can
//! decrypt — each scales its share by the Lagrange coefficient of the
//! participating subset *before* adding smudging noise
//! ([`ThresholdGroup::partial_decrypt_subset`]) — while any `k−1`
//! collusion learns nothing. This is the dropout-recovery story the
//! encrypted-aggregation deployment needs: a keyholder that churns out
//! of the federation no longer takes the global model with it
//! (exercised by the `rhychee-scenario` engine).
//!
//! Rhychee-FL itself uses the simpler shared-secret-key deployment
//! (paper §IV-A), but this extension removes that trust assumption and
//! makes the Table II comparison architecture-faithful.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rhychee_fhe::ckks::threshold::ThresholdGroup;
//! use rhychee_fhe::ckks::CkksContext;
//! use rhychee_fhe::params::CkksParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = CkksContext::new(CkksParams::toy())?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let group = ThresholdGroup::generate(&ctx, 3, &mut rng);
//! let ct = ctx.encrypt(group.public_key(), &[1.0, 2.0], &mut rng)?;
//! // All three parties cooperate to decrypt.
//! let partials: Vec<_> =
//!     (0..3).map(|i| group.partial_decrypt(&ctx, i, &ct, &mut rng)).collect();
//! let values = ThresholdGroup::combine(&ctx, &ct, &partials);
//! assert!((values[0] - 1.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

use rand::Rng;

use crate::error::FheError;
use crate::sampling::{gaussian_vec, ternary_vec};

use super::cipher::{CkksCiphertext, CkksContext, CkksPublicKey};
use super::modarith::{add_mod, inv_mod, mul_mod, sub_mod};
use super::rns::RnsPoly;

/// Smudging-noise standard deviation for partial decryptions.
///
/// Must dominate the decryption noise to statistically hide each party's
/// key share; 2^10 leaves ~40 bits of plaintext precision at Δ = 2^26+.
const SMUDGING_SIGMA: f64 = 1024.0;

/// One party's key share: the additive share `s_i` (n-of-n) or the
/// Shamir point `F(x_i)` (k-of-n).
#[derive(Debug, Clone)]
pub struct KeyShare {
    share: RnsPoly,
}

/// A partial decryption `p_i = c1·s_i + e_smudge` (additive) or
/// `p_i = c1·(λ_i·F(x_i)) + e_smudge` (Shamir, λ over the declared
/// decryption subset).
#[derive(Debug, Clone)]
pub struct PartialDecryption {
    poly: RnsPoly,
    party: usize,
}

impl PartialDecryption {
    /// The contributing party's index.
    pub fn party(&self) -> usize {
        self.party
    }
}

/// How the joint secret is split across parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sharing {
    /// `s = Σ s_i`: every party must contribute to decrypt.
    Additive,
    /// Shamir degree-`k−1` sharing: any `k` parties decrypt.
    Shamir { k: usize },
}

/// A threshold key group: the shares plus the joint public key. In a
/// real deployment each share would live on its own client; the group
/// type models the ceremony for simulation.
///
/// Built n-out-of-n by [`ThresholdGroup::generate`] or k-out-of-n by
/// [`ThresholdGroup::generate_kofn`].
#[derive(Debug)]
pub struct ThresholdGroup {
    shares: Vec<KeyShare>,
    public_key: CkksPublicKey,
    sharing: Sharing,
}

/// Shamir evaluation point for `party` (1-based so `F(0)` stays secret).
fn x_coord(party: usize) -> u64 {
    party as u64 + 1
}

/// Evaluates the polynomial with RNS-poly coefficients at scalar `x`,
/// independently per RNS prime (Horner's rule).
fn eval_shamir(coeffs: &[RnsPoly], x: u64, primes: &[u64]) -> RnsPoly {
    let mut acc = coeffs.last().expect("at least the constant term").clone();
    for c in coeffs.iter().rev().skip(1) {
        for (l, &p) in primes.iter().enumerate() {
            let xs = x % p;
            let row = acc.residues_mut(l);
            for (a, &cv) in row.iter_mut().zip(c.residues(l)) {
                *a = add_mod(mul_mod(*a, xs, p), cv, p);
            }
        }
    }
    acc
}

/// The Lagrange coefficient `λ_i = Π_{j≠i} x_j/(x_j − x_i)` of party
/// `party` over decryption subset `subset`, computed mod each prime.
fn lagrange_at_zero(party: usize, subset: &[usize], primes: &[u64]) -> Vec<u64> {
    primes
        .iter()
        .map(|&p| {
            let xi = x_coord(party) % p;
            let mut lambda = 1u64;
            for &j in subset {
                if j == party {
                    continue;
                }
                let xj = x_coord(j) % p;
                let num = xj;
                let den = sub_mod(xj, xi, p);
                lambda = mul_mod(lambda, mul_mod(num, inv_mod(den, p), p), p);
            }
            lambda
        })
        .collect()
}

/// Multiplies each RNS row of `poly` by the matching per-prime scalar.
fn scale_rows(poly: &RnsPoly, scalars: &[u64], primes: &[u64]) -> RnsPoly {
    let mut out = poly.clone();
    for (l, &p) in primes.iter().enumerate() {
        let s = scalars[l];
        for v in out.residues_mut(l) {
            *v = mul_mod(*v, s, p);
        }
    }
    out
}

impl ThresholdGroup {
    /// Runs the distributed key-generation ceremony for `parties`
    /// participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        parties: usize,
        rng: &mut R,
    ) -> ThresholdGroup {
        assert!(parties > 0, "need at least one party");
        let n = ctx.params().n;
        let primes = ctx.primes();
        // Common random polynomial (CRS), public to everyone.
        let a = ctx.uniform_poly(rng);
        let mut shares = Vec::with_capacity(parties);
        let mut b_sum: Option<RnsPoly> = None;
        for _ in 0..parties {
            let s_i = RnsPoly::from_signed_coeffs(&ternary_vec(rng, n), primes);
            let e_i =
                RnsPoly::from_signed_coeffs(&gaussian_vec(rng, n, ctx.params().sigma), primes);
            // b_i = -(a · s_i) + e_i
            let b_i = ctx.poly_mul_at(&a, &s_i, primes.len()).neg(primes).add(&e_i, primes);
            b_sum = Some(match b_sum {
                None => b_i,
                Some(acc) => acc.add(&b_i, primes),
            });
            shares.push(KeyShare { share: s_i });
        }
        let b = b_sum.expect("at least one party");
        ThresholdGroup {
            shares,
            public_key: CkksPublicKey::from_coeff(ctx, b, a),
            sharing: Sharing::Additive,
        }
    }

    /// Runs the k-out-of-n ceremony: any `k` of the `parties` shares
    /// suffice to decrypt, so up to `parties − k` keyholders can drop
    /// out of the federation without losing the global model.
    ///
    /// Each party `i` samples its additive contribution `s_i` exactly
    /// as in [`ThresholdGroup::generate`], then Shamir-shares it with a
    /// fresh degree-`k−1` polynomial `f_i` (constant term `s_i`,
    /// remaining coefficients uniform per RNS prime). Party `j` keeps
    /// the sum of everyone's evaluations `F(x_j) = Σ_i f_i(x_j)`, a
    /// Shamir share of the joint secret `F(0) = s = Σ s_i` — no dealer
    /// ever sees `s`.
    pub fn generate_kofn<R: Rng + ?Sized>(
        ctx: &CkksContext,
        parties: usize,
        k: usize,
        rng: &mut R,
    ) -> Result<ThresholdGroup, FheError> {
        if parties == 0 || k == 0 || k > parties {
            return Err(FheError::InvalidParams(format!(
                "threshold k={k} must satisfy 1 <= k <= parties={parties}"
            )));
        }
        let n = ctx.params().n;
        let primes = ctx.primes();
        let a = ctx.uniform_poly(rng);
        let mut b_sum: Option<RnsPoly> = None;
        let mut points: Vec<Option<RnsPoly>> = vec![None; parties];
        for _ in 0..parties {
            let s_i = RnsPoly::from_signed_coeffs(&ternary_vec(rng, n), primes);
            let e_i =
                RnsPoly::from_signed_coeffs(&gaussian_vec(rng, n, ctx.params().sigma), primes);
            let b_i = ctx.poly_mul_at(&a, &s_i, primes.len()).neg(primes).add(&e_i, primes);
            b_sum = Some(match b_sum {
                None => b_i,
                Some(acc) => acc.add(&b_i, primes),
            });
            // f_i(x) = s_i + a_1·x + … + a_{k−1}·x^{k−1}, coefficients
            // uniform per prime (each prime's Shamir instance is
            // independent; reconstruction is per-residue).
            let mut coeffs = vec![s_i];
            for _ in 1..k {
                coeffs.push(ctx.uniform_poly(rng));
            }
            for (j, point) in points.iter_mut().enumerate() {
                let eval = eval_shamir(&coeffs, x_coord(j), primes);
                *point = Some(match point.take() {
                    None => eval,
                    Some(acc) => acc.add(&eval, primes),
                });
            }
        }
        let shares = points
            .into_iter()
            .map(|p| KeyShare { share: p.expect("evaluated for every party") })
            .collect();
        let b = b_sum.expect("at least one party");
        Ok(ThresholdGroup {
            shares,
            public_key: CkksPublicKey::from_coeff(ctx, b, a),
            sharing: Sharing::Shamir { k },
        })
    }

    /// Number of parties in the group.
    pub fn parties(&self) -> usize {
        self.shares.len()
    }

    /// Minimum number of partial decryptions needed to recover a
    /// plaintext: `k` for Shamir groups, `parties` for additive ones.
    pub fn threshold(&self) -> usize {
        match self.sharing {
            Sharing::Additive => self.shares.len(),
            Sharing::Shamir { k } => k,
        }
    }

    /// The joint public key (given to the aggregation server).
    pub fn public_key(&self) -> &CkksPublicKey {
        &self.public_key
    }

    /// Party `party`'s partial decryption of `ct`, with smudging noise.
    ///
    /// # Panics
    ///
    /// Panics if `party` is out of range.
    pub fn partial_decrypt<R: Rng + ?Sized>(
        &self,
        ctx: &CkksContext,
        party: usize,
        ct: &CkksCiphertext,
        rng: &mut R,
    ) -> PartialDecryption {
        let all: Vec<usize> = (0..self.parties()).collect();
        self.partial_decrypt_subset(ctx, party, &all, ct, rng)
            .expect("the full party set is always a valid decryption subset")
    }

    /// Party `party`'s partial decryption of `ct` as a member of the
    /// declared decryption subset `subset` (the parties that survived
    /// the round).
    ///
    /// For Shamir groups the share is scaled by the Lagrange
    /// coefficient `λ_party` of `subset` *before* smudging noise is
    /// added, so summing the subset's partials interpolates
    /// `F(0)·c1 = s·c1` directly — smudging stays small and is never
    /// amplified by λ. For additive groups `subset` must be the full
    /// party set.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] when `subset` is smaller than the
    /// group threshold, contains duplicates or out-of-range indices,
    /// or does not contain `party`.
    pub fn partial_decrypt_subset<R: Rng + ?Sized>(
        &self,
        ctx: &CkksContext,
        party: usize,
        subset: &[usize],
        ct: &CkksCiphertext,
        rng: &mut R,
    ) -> Result<PartialDecryption, FheError> {
        self.validate_subset(subset)?;
        if !subset.contains(&party) {
            return Err(FheError::InvalidParams(format!(
                "party {party} is not in the declared decryption subset"
            )));
        }
        let levels = ct.levels();
        let primes = &ctx.primes()[..levels];
        let share = ctx.at_level(&self.shares[party].share, levels);
        let share = match self.sharing {
            Sharing::Additive => share,
            Sharing::Shamir { .. } => {
                let lambda = lagrange_at_zero(party, subset, primes);
                scale_rows(&share, &lambda, primes)
            }
        };
        let smudge =
            RnsPoly::from_signed_coeffs(&gaussian_vec(rng, ctx.params().n, SMUDGING_SIGMA), primes);
        // The share product runs in the coefficient domain; resident
        // ciphertexts convert at entry (threshold decryption is a
        // round-end operation, not the aggregation hot loop).
        let c1 = ctx.to_coeff(&ct.c1);
        let poly = ctx.poly_mul_at(&c1, &share, levels).add(&smudge, primes);
        Ok(PartialDecryption { poly, party })
    }

    /// Checks that `subset` is a plausible decryption quorum: distinct
    /// in-range parties, at least [`ThresholdGroup::threshold`] of
    /// them, and — for additive sharing — all of them.
    fn validate_subset(&self, subset: &[usize]) -> Result<(), FheError> {
        let parties = self.parties();
        let mut seen = vec![false; parties];
        for &p in subset {
            if p >= parties {
                return Err(FheError::InvalidParams(format!(
                    "party index {p} out of range for {parties}-party group"
                )));
            }
            if seen[p] {
                return Err(FheError::InvalidParams(format!(
                    "party {p} appears twice in the decryption subset"
                )));
            }
            seen[p] = true;
        }
        let need = self.threshold();
        if subset.len() < need {
            return Err(FheError::InvalidParams(format!(
                "decryption subset of {} parties is below the threshold {need}",
                subset.len()
            )));
        }
        if self.sharing == Sharing::Additive && subset.len() != parties {
            return Err(FheError::InvalidParams(format!(
                "additive sharing needs all {parties} parties, got {}",
                subset.len()
            )));
        }
        Ok(())
    }

    /// Combines all partial decryptions into the plaintext slots.
    ///
    /// # Panics
    ///
    /// Panics if `partials` is empty or shapes mismatch (all parties must
    /// contribute for n-out-of-n sharing).
    pub fn combine(
        ctx: &CkksContext,
        ct: &CkksCiphertext,
        partials: &[PartialDecryption],
    ) -> Vec<f64> {
        assert!(!partials.is_empty(), "need every party's partial decryption");
        let levels = ct.levels();
        let primes = &ctx.primes()[..levels];
        let mut m = ctx.to_coeff(&ct.c0);
        for p in partials {
            m.add_assign(&p.poly, primes);
        }
        let coeffs = m.to_centered_f64(primes);
        ctx.encoder().decode_with_scale(&coeffs, ct.scale())
    }

    /// Combines partial decryptions after checking the quorum: the
    /// contributing parties must be distinct, in range, and at least
    /// [`ThresholdGroup::threshold`] many. This is the error path a
    /// federation hits when a keyholder drops mid-round and too few
    /// shares arrive.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] when shares are missing or
    /// duplicated.
    pub fn combine_checked(
        &self,
        ctx: &CkksContext,
        ct: &CkksCiphertext,
        partials: &[PartialDecryption],
    ) -> Result<Vec<f64>, FheError> {
        let contributors: Vec<usize> = partials.iter().map(|p| p.party).collect();
        self.validate_subset(&contributors)?;
        Ok(Self::combine(ctx, ct, partials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup(parties: usize) -> (CkksContext, ThresholdGroup, StdRng) {
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let mut rng = StdRng::seed_from_u64(99);
        let group = ThresholdGroup::generate(&ctx, parties, &mut rng);
        (ctx, group, rng)
    }

    fn decrypt_all(
        ctx: &CkksContext,
        group: &ThresholdGroup,
        ct: &CkksCiphertext,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let partials: Vec<_> =
            (0..group.parties()).map(|i| group.partial_decrypt(ctx, i, ct, rng)).collect();
        ThresholdGroup::combine(ctx, ct, &partials)
    }

    #[test]
    fn joint_key_encrypt_and_distributed_decrypt() {
        let (ctx, group, mut rng) = setup(4);
        let values = vec![1.5, -2.25, 100.0, 0.0];
        let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
        let back = decrypt_all(&ctx, &group, &ct, &mut rng);
        for (v, b) in values.iter().zip(&back) {
            assert!((v - b).abs() < 0.05, "{v} vs {b}");
        }
    }

    #[test]
    fn missing_party_cannot_decrypt() {
        let (ctx, group, mut rng) = setup(3);
        let values = vec![42.0; 8];
        let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
        // Only 2 of 3 partials: the result must be garbage (the missing
        // c1·s_2 term leaves a uniform-looking mask in place).
        let partials: Vec<_> =
            (0..2).map(|i| group.partial_decrypt(&ctx, i, &ct, &mut rng)).collect();
        let broken = ThresholdGroup::combine(&ctx, &ct, &partials);
        let max_err = broken[..8].iter().map(|b| (b - 42.0).abs()).fold(0.0f64, f64::max);
        assert!(max_err > 1.0, "partial coalition must not learn the plaintext (err {max_err})");
    }

    #[test]
    fn homomorphic_average_under_threshold_keys() {
        // The full Rhychee-FL aggregation pattern with no shared secret:
        // clients encrypt under the joint key, the server averages, all
        // parties cooperate to decrypt the global model.
        let (ctx, group, mut rng) = setup(3);
        let models = [[2.0, 4.0], [4.0, 8.0], [6.0, 12.0]];
        let mut acc = ctx.encrypt(group.public_key(), &models[0], &mut rng).expect("encrypt");
        for m in &models[1..] {
            let ct = ctx.encrypt(group.public_key(), m, &mut rng).expect("encrypt");
            ctx.add_assign(&mut acc, &ct).expect("add");
        }
        let avg = ctx.mul_scalar(&acc, 1.0 / 3.0);
        let back = decrypt_all(&ctx, &group, &avg, &mut rng);
        assert!((back[0] - 4.0).abs() < 0.05, "{}", back[0]);
        assert!((back[1] - 8.0).abs() < 0.05, "{}", back[1]);
    }

    #[test]
    fn single_party_group_matches_plain_ckks_shape() {
        let (ctx, group, mut rng) = setup(1);
        let ct = ctx.encrypt(group.public_key(), &[7.0], &mut rng).expect("encrypt");
        let back = decrypt_all(&ctx, &group, &ct, &mut rng);
        assert!((back[0] - 7.0).abs() < 0.05);
    }

    #[test]
    fn kofn_subset_decrypts_after_dropout() {
        let ctx = CkksContext::new(CkksParams::toy()).expect("params");
        let mut rng = StdRng::seed_from_u64(7);
        let group = ThresholdGroup::generate_kofn(&ctx, 5, 3, &mut rng).expect("kofn");
        assert_eq!(group.threshold(), 3);
        let values = vec![3.5, -1.25];
        let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
        // Parties 1 and 3 dropped; the surviving quorum {0, 2, 4} decrypts.
        let subset = [0usize, 2, 4];
        let partials: Vec<_> = subset
            .iter()
            .map(|&p| group.partial_decrypt_subset(&ctx, p, &subset, &ct, &mut rng).expect("valid"))
            .collect();
        let back = group.combine_checked(&ctx, &ct, &partials).expect("quorum met");
        for (v, b) in values.iter().zip(&back) {
            assert!((v - b).abs() < 0.05, "{v} vs {b}");
        }
    }

    #[test]
    fn additive_group_rejects_proper_subset() {
        let (ctx, group, mut rng) = setup(3);
        let ct = ctx.encrypt(group.public_key(), &[1.0], &mut rng).expect("encrypt");
        let err = group.partial_decrypt_subset(&ctx, 0, &[0, 1], &ct, &mut rng).unwrap_err();
        assert!(matches!(err, FheError::InvalidParams(_)));
    }

    #[test]
    fn works_at_paper_parameters() {
        let ctx = CkksContext::new(CkksParams::ckks4()).expect("params");
        let mut rng = StdRng::seed_from_u64(5);
        let group = ThresholdGroup::generate(&ctx, 5, &mut rng);
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ct = ctx.encrypt(group.public_key(), &values, &mut rng).expect("encrypt");
        let partials: Vec<_> =
            (0..5).map(|i| group.partial_decrypt(&ctx, i, &ct, &mut rng)).collect();
        let back = ThresholdGroup::combine(&ctx, &ct, &partials);
        for (i, v) in values.iter().enumerate() {
            assert!((back[i] - v).abs() < 0.05, "slot {i}: {} vs {v}", back[i]);
        }
    }
}
