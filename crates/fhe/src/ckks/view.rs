//! Borrowed, header-validated views over serialized ciphertexts — the
//! zero-copy half of streaming aggregation.
//!
//! A [`CtView`] aliases the bytes of one wire-format ciphertext
//! (canonical or seed-compressed) without unpacking its residue rows
//! into an owned [`RnsPoly`]. Construction performs every structural
//! check the owning deserializers do — level range, exact byte length
//! against [`CkksContext::serialized_len`] /
//! [`CkksContext::serialized_len_seeded`], finite positive scale, and
//! the seed integrity digest — so a constructed view is guaranteed
//! foldable: [`CkksContext::fold_view`] reads residues straight out of
//! the receive buffer and modular-adds them into an accumulator row in
//! place, allocating nothing and performing zero NTTs.
//!
//! Because a view is validated up front, the fold itself is infallible
//! (beyond the accumulator-compatibility check), and it has an exact
//! inverse: [`CkksContext::unfold_view`] subtracts the same residues
//! back out mod `q`, restoring the accumulator bit for bit. Streaming
//! servers use the pair to retract a contribution deterministically
//! instead of restarting a round.
//!
//! Sum-then-scale equals scale-then-sum exactly here: the batch
//! aggregation path computes `Σᵢ (e·xᵢ) mod q` per residue (with
//! `e = round(w·Δ)`), the streaming path `e·(Σᵢ xᵢ) mod q` — equal by
//! ring distributivity, and modular addition is exactly associative and
//! commutative, so folds are arrival-order independent and the closed
//! sum serializes to the same bytes as the batch aggregate.

use rhychee_telemetry as telemetry;

use crate::bitpack::{bits_for, BitReader};
use crate::error::FheError;

use super::cipher::{CkksCiphertext, CkksContext};
use super::modarith::{add_mod, sub_mod};
use super::rns::{Domain, RnsPoly};
use super::seedexp;

/// Which wire format a view's bytes are in. Canonical blobs carry both
/// polynomials in the coefficient domain; seeded blobs carry an
/// evaluation-domain `c0` plus the 32-byte expansion seed of `c1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ViewFormat {
    Canonical,
    Seeded([u8; 32]),
}

/// A borrowed, header-validated view over one serialized ciphertext.
///
/// Produced by [`CkksContext::view_serialized`] /
/// [`CkksContext::view_serialized_seeded`]; consumed by
/// [`CkksContext::fold_view`] (and its exact inverse
/// [`CkksContext::unfold_view`]) without ever materializing an owned
/// ciphertext. [`CtView::to_ciphertext`] bridges back to the owned
/// world when a caller needs one.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct CtView<'a> {
    bytes: &'a [u8],
    levels: usize,
    scale: f64,
    format: ViewFormat,
}

impl<'a> CtView<'a> {
    /// Active modulus levels declared in the header.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Scale Δ' declared in the header.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Whether the underlying bytes are in the seed-compressed format.
    pub fn is_seeded(&self) -> bool {
        matches!(self.format, ViewFormat::Seeded(_))
    }

    /// Length of the aliased wire bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The residue domain an accumulator must be in to fold this view:
    /// canonical bytes are coefficient-domain, seeded bytes
    /// evaluation-domain.
    pub fn fold_domain(&self) -> Domain {
        match self.format {
            ViewFormat::Canonical => Domain::Coeff,
            ViewFormat::Seeded(_) => Domain::Eval,
        }
    }

    /// Materializes an owned ciphertext from the viewed bytes
    /// (delegating to the owning deserializer of the matching format).
    ///
    /// # Errors
    ///
    /// Propagates [`FheError::Deserialize`]; unreachable in practice
    /// since view construction already validated the bytes.
    pub fn to_ciphertext(&self, ctx: &CkksContext) -> Result<CkksCiphertext, FheError> {
        match self.format {
            ViewFormat::Canonical => ctx.deserialize(self.bytes),
            ViewFormat::Seeded(_) => ctx.deserialize_seeded(self.bytes),
        }
    }
}

/// Header bits shared by both formats: levels (8) + scale (64).
const HEADER_BITS: u32 = 8 + 64;
/// Extra seeded-format header bits: 256-bit seed + 32-bit digest.
const SEED_BITS: u32 = 256 + 32;

impl CkksContext {
    /// Builds a borrowed view over one canonical-format ciphertext,
    /// performing the same hardening checks as
    /// [`CkksContext::deserialize`] without unpacking residues.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Deserialize`] on an invalid level count, a
    /// byte length that does not match [`CkksContext::serialized_len`]
    /// for the declared levels, or an invalid scale.
    pub fn view_serialized<'a>(&self, bytes: &'a [u8]) -> Result<CtView<'a>, FheError> {
        let (levels, scale, _) = self.view_header(bytes, false)?;
        Ok(CtView { bytes, levels, scale, format: ViewFormat::Canonical })
    }

    /// Builds a borrowed view over one seed-compressed ciphertext,
    /// performing the same hardening checks as
    /// [`CkksContext::deserialize_seeded`] — including the seed
    /// integrity digest — without unpacking `c0` or expanding `c1`.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Deserialize`] on an invalid level count, a
    /// byte length that does not match
    /// [`CkksContext::serialized_len_seeded`] for the declared levels,
    /// an invalid scale, or a seed that fails its integrity digest.
    pub fn view_serialized_seeded<'a>(&self, bytes: &'a [u8]) -> Result<CtView<'a>, FheError> {
        let (levels, scale, seed) = self.view_header(bytes, true)?;
        let seed = seed.expect("seeded header parse yields a seed");
        Ok(CtView { bytes, levels, scale, format: ViewFormat::Seeded(seed) })
    }

    /// Shared header parse + validation for both formats.
    #[allow(clippy::type_complexity)]
    fn view_header(
        &self,
        bytes: &[u8],
        seeded: bool,
    ) -> Result<(usize, f64, Option<[u8; 32]>), FheError> {
        let mut r = BitReader::new(bytes);
        let levels = r.read_bits(8)? as usize;
        if levels == 0 || levels > self.primes().len() {
            return Err(FheError::Deserialize(format!("invalid level count {levels}")));
        }
        let (expected, what) = if seeded {
            (self.serialized_len_seeded(levels), "seeded ciphertext")
        } else {
            (self.serialized_len(levels), "ciphertext")
        };
        if bytes.len() != expected {
            return Err(FheError::Deserialize(format!(
                "{} bytes for a {levels}-level {what}, expected {expected}",
                bytes.len()
            )));
        }
        let scale = f64::from_bits(r.read_bits(64)?);
        if !scale.is_finite() || scale <= 0.0 {
            return Err(FheError::Deserialize("invalid scale".into()));
        }
        if !seeded {
            return Ok((levels, scale, None));
        }
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&r.read_bits(64)?.to_le_bytes());
        }
        if r.read_bits(32)? as u32 != seedexp::seed_check(&seed) {
            return Err(FheError::Deserialize("seed integrity check failed".into()));
        }
        Ok((levels, scale, Some(seed)))
    }

    /// An all-zero accumulator shaped to fold `view` into: the view's
    /// levels and scale, residues in [`CtView::fold_domain`]. Folding
    /// any number of compatible views into it accumulates their raw
    /// (unscaled) homomorphic sum.
    pub fn accumulator_for(&self, view: &CtView<'_>) -> CkksCiphertext {
        let n = self.params().n;
        let domain = view.fold_domain();
        CkksCiphertext {
            c0: RnsPoly::zero_in(n, view.levels, domain),
            c1: RnsPoly::zero_in(n, view.levels, domain),
            scale: view.scale,
            c1_seed: None,
        }
    }

    /// Checks that `view` can fold into `acc`: equal levels, matching
    /// residue domain, and scales within the same relative tolerance as
    /// [`CkksContext::add_assign`]. Callers that pre-check every view
    /// of an upload make the subsequent folds infallible, so a partial
    /// (accumulator-corrupting) fold can never happen.
    ///
    /// # Errors
    ///
    /// [`FheError::LevelMismatch`], [`FheError::InvalidParams`] (domain
    /// mismatch), or [`FheError::ScaleMismatch`].
    pub fn check_view(&self, acc: &CkksCiphertext, view: &CtView<'_>) -> Result<(), FheError> {
        if acc.levels() != view.levels {
            return Err(FheError::LevelMismatch { lhs: acc.levels(), rhs: view.levels });
        }
        if acc.c1.domain() != view.fold_domain() {
            return Err(FheError::InvalidParams(
                "ciphertext domain mismatch (evaluation vs coefficient)".into(),
            ));
        }
        let tol = acc.scale.max(view.scale) * 1e-9;
        if (acc.scale - view.scale).abs() > tol {
            return Err(FheError::ScaleMismatch { lhs: acc.scale, rhs: view.scale });
        }
        Ok(())
    }

    /// Folds a viewed upload into the running encrypted sum:
    /// `acc += view`, residue by residue, straight out of the wire
    /// bytes. No owned ciphertext is built, no allocation happens, and
    /// no transform runs — seeded `c1` rows are re-expanded into the
    /// modular add one draw at a time. Residues are reduced `% q` on
    /// the way in, exactly as the owning deserializers do, so folding a
    /// corrupted canonical blob accumulates garbage rather than erroring
    /// (the channel-noise semantics of the canonical format).
    ///
    /// # Errors
    ///
    /// Propagates [`CkksContext::check_view`] incompatibilities; the
    /// fold itself cannot fail on a constructed view.
    pub fn fold_view(&self, acc: &mut CkksCiphertext, view: &CtView<'_>) -> Result<(), FheError> {
        self.apply_view(acc, view, add_mod)
    }

    /// Exact inverse of [`CkksContext::fold_view`]: subtracts the
    /// viewed upload back out of the accumulator mod `q`, restoring it
    /// bit for bit. Used to retract a previously folded contribution
    /// (e.g. a policy that un-counts a client that dropped mid-round)
    /// without restarting the round.
    ///
    /// # Errors
    ///
    /// Propagates [`CkksContext::check_view`] incompatibilities.
    pub fn unfold_view(&self, acc: &mut CkksCiphertext, view: &CtView<'_>) -> Result<(), FheError> {
        self.apply_view(acc, view, sub_mod)
    }

    fn apply_view(
        &self,
        acc: &mut CkksCiphertext,
        view: &CtView<'_>,
        op: impl Fn(u64, u64, u64) -> u64,
    ) -> Result<(), FheError> {
        self.check_view(acc, view)?;
        telemetry::count("fhe.ckks.fold", 1);
        let primes = &self.primes()[..view.levels];
        let mut r = BitReader::new(view.bytes);
        // Header bits were validated at view construction; the exact
        // length check guarantees every residue read below succeeds.
        let mut skip = match view.format {
            ViewFormat::Canonical => HEADER_BITS,
            ViewFormat::Seeded(_) => HEADER_BITS + SEED_BITS,
        };
        while skip > 0 {
            let step = skip.min(64);
            r.read_bits(step).expect("validated header");
            skip -= step;
        }
        match view.format {
            ViewFormat::Canonical => {
                for poly in [&mut acc.c0, &mut acc.c1] {
                    for (i, &q) in primes.iter().enumerate() {
                        let bits = bits_for(q);
                        for a in poly.residues_mut(i) {
                            let v = r.read_bits(bits).expect("length-validated view") % q;
                            *a = op(*a, v, q);
                        }
                    }
                }
            }
            ViewFormat::Seeded(seed) => {
                for (i, &q) in primes.iter().enumerate() {
                    let bits = bits_for(q);
                    for a in acc.c0.residues_mut(i) {
                        let v = r.read_bits(bits).expect("length-validated view") % q;
                        *a = op(*a, v, q);
                    }
                }
                for (i, &q) in primes.iter().enumerate() {
                    let mut stream = seedexp::SeedStream::new(&seed, i as u64);
                    for a in acc.c1.residues_mut(i) {
                        *a = op(*a, stream.uniform_below(q), q);
                    }
                }
            }
        }
        acc.c1_seed = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::params::CkksParams;

    use super::*;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams::toy()).expect("params")
    }

    #[test]
    fn canonical_view_validation_matches_deserialize() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let (_, pk) = ctx.generate_keys(&mut rng);
        let ct = ctx.encrypt(&pk, &[1.0, -2.0, 3.5], &mut rng).expect("encrypt");
        let bytes = ctx.serialize(&ct);

        let view = ctx.view_serialized(&bytes).expect("valid view");
        assert_eq!(view.levels(), ct.levels());
        assert_eq!(view.scale(), ct.scale());
        assert!(!view.is_seeded());
        assert_eq!(view.byte_len(), bytes.len());

        // Every structural rejection of `deserialize` also rejects the view.
        for corrupt in [
            &bytes[..bytes.len() - 1], // truncated
            &bytes[..0],               // empty
        ] {
            assert_eq!(ctx.view_serialized(corrupt).is_err(), ctx.deserialize(corrupt).is_err());
            assert!(ctx.view_serialized(corrupt).is_err());
        }
        let mut oversized = bytes.clone();
        oversized.push(0);
        assert!(ctx.view_serialized(&oversized).is_err());
        assert!(ctx.deserialize(&oversized).is_err());
        let mut bad_levels = bytes.clone();
        bad_levels[0] = 0xFF;
        assert!(ctx.view_serialized(&bad_levels).is_err());
        assert!(ctx.deserialize(&bad_levels).is_err());
        let mut bad_scale = bytes.clone();
        // Scale bits occupy bits 8..72 → bytes 1..9 hold them exactly.
        bad_scale[1..9].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(ctx.view_serialized(&bad_scale).is_err());
        assert!(ctx.deserialize(&bad_scale).is_err());
    }

    #[test]
    fn seeded_view_validates_seed_digest() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(5);
        let (sk, _) = ctx.generate_keys(&mut rng);
        let ct = ctx.encrypt_symmetric(&sk, &[0.25; 16], &mut rng).expect("encrypt");
        let bytes = ctx.serialize_seeded(&ct).expect("seeded");

        let view = ctx.view_serialized_seeded(&bytes).expect("valid view");
        assert!(view.is_seeded());
        assert_eq!(view.fold_domain(), Domain::Eval);

        // A flipped seed byte must be caught, exactly as deserialize_seeded.
        let mut flipped = bytes.clone();
        flipped[12] ^= 0x20; // inside the 32-byte seed (bits 72..328)
        assert!(ctx.view_serialized_seeded(&flipped).is_err());
        assert!(ctx.deserialize_seeded(&flipped).is_err());
        assert!(ctx.view_serialized_seeded(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn fold_equals_deserialize_and_add_bit_for_bit() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let (_, pk) = ctx.generate_keys(&mut rng);
        let blobs: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                let ct = ctx.encrypt(&pk, &[i as f64, 1.0], &mut rng).expect("encrypt");
                ctx.serialize(&ct)
            })
            .collect();

        // Reference: owned deserialize + add_assign in order.
        let mut reference = ctx.deserialize(&blobs[0]).expect("deserialize");
        for blob in &blobs[1..] {
            let ct = ctx.deserialize(blob).expect("deserialize");
            ctx.add_assign(&mut reference, &ct).expect("add");
        }

        // Streaming: zero accumulator + fold, in a shuffled order.
        let view0 = ctx.view_serialized(&blobs[0]).expect("view");
        let mut acc = ctx.accumulator_for(&view0);
        for idx in [2usize, 0, 3, 1] {
            let view = ctx.view_serialized(&blobs[idx]).expect("view");
            ctx.fold_view(&mut acc, &view).expect("fold");
        }
        assert_eq!(ctx.serialize(&acc), ctx.serialize(&reference));
    }

    #[test]
    fn seeded_fold_equals_deserialize_and_add_bit_for_bit() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(11);
        let (sk, _) = ctx.generate_keys(&mut rng);
        let blobs: Vec<Vec<u8>> = (0..3)
            .map(|i| {
                let ct = ctx.encrypt_symmetric(&sk, &[0.5 * i as f64], &mut rng).expect("encrypt");
                ctx.serialize_seeded(&ct).expect("seeded")
            })
            .collect();

        let mut reference = ctx.deserialize_seeded(&blobs[0]).expect("deserialize");
        for blob in &blobs[1..] {
            let ct = ctx.deserialize_seeded(blob).expect("deserialize");
            ctx.add_assign(&mut reference, &ct).expect("add");
        }

        let view0 = ctx.view_serialized_seeded(&blobs[0]).expect("view");
        let mut acc = ctx.accumulator_for(&view0);
        for blob in blobs.iter().rev() {
            let view = ctx.view_serialized_seeded(blob).expect("view");
            ctx.fold_view(&mut acc, &view).expect("fold");
        }
        // Both sums are eval-domain; serialize INTTs both identically.
        assert_eq!(ctx.serialize(&acc), ctx.serialize(&reference));
    }

    #[test]
    fn unfold_restores_accumulator_exactly() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(13);
        let (_, pk) = ctx.generate_keys(&mut rng);
        let a = ctx.serialize(&ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt"));
        let b = ctx.serialize(&ctx.encrypt(&pk, &[2.0], &mut rng).expect("encrypt"));

        let va = ctx.view_serialized(&a).expect("view");
        let vb = ctx.view_serialized(&b).expect("view");
        let mut acc = ctx.accumulator_for(&va);
        ctx.fold_view(&mut acc, &va).expect("fold");
        let snapshot = ctx.serialize(&acc);
        ctx.fold_view(&mut acc, &vb).expect("fold");
        ctx.unfold_view(&mut acc, &vb).expect("unfold");
        assert_eq!(ctx.serialize(&acc), snapshot);
    }

    #[test]
    fn fold_rejects_incompatible_accumulator() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(17);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let canonical = ctx.serialize(&ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt"));
        let seeded_ct = ctx.encrypt_symmetric(&sk, &[1.0], &mut rng).expect("encrypt");
        let seeded = ctx.serialize_seeded(&seeded_ct).expect("seeded");

        let vc = ctx.view_serialized(&canonical).expect("view");
        let vs = ctx.view_serialized_seeded(&seeded).expect("view");
        // Coeff-domain accumulator cannot fold an eval-domain seeded view.
        let mut acc = ctx.accumulator_for(&vc);
        assert!(matches!(ctx.fold_view(&mut acc, &vs), Err(FheError::InvalidParams(_))));
        // And the accumulator is untouched by the rejected fold.
        assert_eq!(ctx.serialize(&acc), ctx.serialize(&ctx.accumulator_for(&vc)));
    }

    #[test]
    fn to_ciphertext_matches_owned_deserialize() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(19);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        let canonical = ctx.serialize(&ctx.encrypt(&pk, &[3.0], &mut rng).expect("encrypt"));
        let view = ctx.view_serialized(&canonical).expect("view");
        let owned = view.to_ciphertext(&ctx).expect("materialize");
        assert_eq!(ctx.serialize(&owned), canonical);

        let seeded_ct = ctx.encrypt_symmetric(&sk, &[4.0], &mut rng).expect("encrypt");
        let seeded = ctx.serialize_seeded(&seeded_ct).expect("seeded");
        let view = ctx.view_serialized_seeded(&seeded).expect("view");
        let owned = view.to_ciphertext(&ctx).expect("materialize");
        assert_eq!(ctx.serialize_seeded(&owned).expect("re-seeded"), seeded);
    }
}
