//! Ciphertext–ciphertext multiplication with relinearization, and
//! Galois rotations — completing the CKKS operation set.
//!
//! Rhychee-FL's aggregation needs neither (averaging is linear), but a
//! production CKKS deployment uses both: ct×ct products for encrypted
//! similarity scores and rotations for slot reductions (e.g. summing a
//! packed hypervector's elements to evaluate a dot product under
//! encryption). Both rest on the same primitive: *key switching* with a
//! gadget-decomposed evaluation key.
//!
//! Key switching here uses the classic base-B decomposition over the
//! full RNS basis (no auxiliary modulus), with the decomposition applied
//! to every prime's residues jointly via CRT-consistent signed digits of
//! the level-0 representative. For the shallow circuits exercised in
//! this crate (one multiplication or one rotation between rescales) the
//! added noise is far below the scale.

use rand::Rng;
use rhychee_telemetry as telemetry;

use crate::error::FheError;
use crate::sampling::gaussian_vec;

use super::cipher::{CkksCiphertext, CkksContext, CkksSecretKey};
use super::modarith::{mul_mod, pow_mod};
use super::rns::RnsPoly;

/// Digits used for evaluation-key gadget decomposition (per prime).
const EVAL_LOG_BASE: u32 = 8;

/// An evaluation key: encryptions of `B^j · f(s)` under `s`, where
/// `f(s) = s²` for relinearization or `s(X^g)` for a rotation.
///
/// Key switching decomposes the operand into signed digits of its
/// *centered integer coefficients* (consistent across the whole RNS
/// basis — see [`RnsPoly::to_signed_digits`]), so one row per digit
/// suffices for every prime simultaneously.
#[derive(Debug, Clone)]
pub struct EvalKey {
    /// Per digit j: (a_j, b_j) with `b_j = −a_j·s + e + B^j·f(s)`.
    rows: Vec<(RnsPoly, RnsPoly)>,
}

impl EvalKey {
    /// Digits needed to cover the first `levels` primes.
    fn digits_for(ctx: &CkksContext, levels: usize) -> usize {
        let total_bits: u32 =
            ctx.primes()[..levels].iter().map(|&q| 64 - (q - 1).leading_zeros()).sum();
        total_bits.div_ceil(EVAL_LOG_BASE) as usize
    }

    /// Generates an evaluation key for target `f_of_s`.
    fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        s: &RnsPoly,
        f_of_s: &RnsPoly,
        rng: &mut R,
    ) -> Self {
        let primes = ctx.primes();
        let n = ctx.params().n;
        let num_digits = Self::digits_for(ctx, primes.len());
        let mut rows = Vec::with_capacity(num_digits);
        for j in 0..num_digits {
            let a = ctx.uniform_poly(rng);
            let e = RnsPoly::from_signed_coeffs(&gaussian_vec(rng, n, ctx.params().sigma), primes);
            // b = −a·s + e + B^j·f(s), with B^j reduced per prime.
            let mut b = ctx.poly_mul_at(&a, s, primes.len()).neg(primes).add(&e, primes);
            for (i, &q) in primes.iter().enumerate() {
                let factor = pow_mod(2, u64::from(EVAL_LOG_BASE) * j as u64, q);
                let scaled: Vec<u64> =
                    f_of_s.residues(i).iter().map(|&x| mul_mod(x, factor, q)).collect();
                for (dst, &src) in b.residues_mut(i).iter_mut().zip(&scaled) {
                    *dst = super::modarith::add_mod(*dst, src, q);
                }
            }
            rows.push((a, b));
        }
        EvalKey { rows }
    }

    /// Key-switches a single polynomial `d` (multiplying it implicitly by
    /// `f(s)`): returns `(c0_add, c1_add)` such that
    /// `c0_add + c1_add·s ≈ d·f(s)`.
    fn apply(&self, ctx: &CkksContext, d: &RnsPoly, levels: usize) -> (RnsPoly, RnsPoly) {
        let primes = &ctx.primes()[..levels];
        let n = ctx.params().n;
        let num_digits = Self::digits_for(ctx, levels);
        let digits = d.to_signed_digits(ctx.primes(), EVAL_LOG_BASE, num_digits);
        let mut c0 = RnsPoly::zero(n, levels);
        let mut c1 = RnsPoly::zero(n, levels);
        for (digit, (row_a, row_b)) in digits.iter().zip(&self.rows) {
            c1.add_assign(&ctx.poly_mul_at(digit, row_a, levels), primes);
            c0.add_assign(&ctx.poly_mul_at(digit, row_b, levels), primes);
        }
        (c0, c1)
    }
}

/// Relinearization key: encryption of `s²`.
#[derive(Debug, Clone)]
pub struct RelinKey(EvalKey);

/// Galois key for one rotation step: encryption of `s(X^g)`.
#[derive(Debug, Clone)]
pub struct GaloisKey {
    key: EvalKey,
    galois: usize,
    steps: usize,
}

impl CkksContext {
    /// Generates a relinearization key for ct×ct multiplication.
    pub fn generate_relin_key<R: Rng + ?Sized>(&self, sk: &CkksSecretKey, rng: &mut R) -> RelinKey {
        let s2 = self.poly_mul_at(&sk.s, &sk.s, self.primes().len());
        RelinKey(EvalKey::generate(self, &sk.s, &s2, rng))
    }

    /// Generates a Galois key rotating slot vectors left by `steps`.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero or ≥ N/2.
    pub fn generate_galois_key<R: Rng + ?Sized>(
        &self,
        sk: &CkksSecretKey,
        steps: usize,
        rng: &mut R,
    ) -> GaloisKey {
        let n = self.params().n;
        assert!(steps > 0 && steps < n / 2, "rotation steps out of range");
        // Slot rotation by `steps` is the automorphism X → X^g with
        // g = 5^steps mod 2N.
        let galois = galois_element(steps, n);
        let s_gal = apply_automorphism_poly(&sk.s, galois, self.primes());
        GaloisKey { key: EvalKey::generate(self, &sk.s, &s_gal, rng), galois, steps }
    }

    /// Multiplies two ciphertexts, relinearizing back to two components.
    ///
    /// The output scale is the product of the input scales; rescale
    /// afterwards when a level is available.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::LevelMismatch`] on incompatible levels.
    pub fn mul(
        &self,
        a: &CkksCiphertext,
        b: &CkksCiphertext,
        rk: &RelinKey,
    ) -> Result<CkksCiphertext, FheError> {
        if a.levels() != b.levels() {
            return Err(FheError::LevelMismatch { lhs: a.levels(), rhs: b.levels() });
        }
        let _t = telemetry::timer("fhe.ckks.relin.mul");
        let levels = a.levels();
        let primes = &self.primes()[..levels];
        // Tensor/key-switch arithmetic runs in the coefficient domain
        // (digit decomposition needs integer coefficients), so resident
        // ciphertexts are converted at entry. ct×ct multiply is not on
        // the FedAvg hot path.
        let (a0, a1) = (self.to_coeff(&a.c0), self.to_coeff(&a.c1));
        let (b0, b1) = (self.to_coeff(&b.c0), self.to_coeff(&b.c1));
        // Tensor product: (d0, d1, d2) = (a0·b0, a0·b1 + a1·b0, a1·b1).
        let d0 = self.poly_mul_at(&a0, &b0, levels);
        let d1 =
            self.poly_mul_at(&a0, &b1, levels).add(&self.poly_mul_at(&a1, &b0, levels), primes);
        let d2 = self.poly_mul_at(&a1, &b1, levels);
        // Key switch d2·s² down to (c0, c1).
        let (ks0, ks1) = rk.0.apply(self, &d2, levels);
        Ok(CkksCiphertext {
            c0: d0.add(&ks0, primes),
            c1: d1.add(&ks1, primes),
            scale: a.scale() * b.scale(),
            c1_seed: None,
        })
    }

    /// The slot permutation realized by [`CkksContext::rotate`] with a
    /// `steps` key: output slot `j` receives input slot
    /// `rotation_permutation(steps)[j]`.
    ///
    /// This encoder orders slots by the exponents `1 − 4j (mod 2N)` (not
    /// the `5^j` orbit), so the Galois action is a full-order cyclic
    /// permutation of the slots rather than an index shift; slot
    /// reductions like [`CkksContext::sum_slots`] are unaffected, and
    /// this map recovers the exact wiring when needed.
    pub fn rotation_permutation(&self, steps: usize) -> Vec<usize> {
        let n = self.params().n as i64;
        let two_n = 2 * n;
        let g = galois_element(steps, self.params().n) as i64;
        (0..n / 2)
            .map(|j| {
                // Slot j evaluates at ξ^{e_j}, e_j = 1 − 4j (mod 2N); the
                // automorphism X → X^g sends it to the input slot whose
                // exponent is g·e_j.
                let e = (1 - 4 * j).rem_euclid(two_n);
                let eg = (e * g).rem_euclid(two_n);
                debug_assert_eq!(eg % 4, 1, "Galois action preserves the slot exponent class");
                let j_src = (1 - eg).rem_euclid(two_n) / 4;
                j_src as usize
            })
            .collect()
    }

    /// Rotates the slot vector by the key's Galois permutation (see
    /// [`CkksContext::rotation_permutation`]).
    pub fn rotate(&self, ct: &CkksCiphertext, gk: &GaloisKey) -> CkksCiphertext {
        let _t = telemetry::timer("fhe.ckks.relin.rotate");
        let levels = ct.levels();
        let primes = &self.primes()[..levels];
        // The automorphism permutes coefficient indices, so resident
        // ciphertexts are converted at entry (rotation is off the FedAvg
        // hot path). Then key-switch the c1 part back to the original key.
        let c0_rot = apply_automorphism_poly(&self.to_coeff(&ct.c0), gk.galois, primes);
        let c1_rot = apply_automorphism_poly(&self.to_coeff(&ct.c1), gk.galois, primes);
        let (ks0, ks1) = gk.key.apply(self, &c1_rot, levels);
        CkksCiphertext { c0: c0_rot.add(&ks0, primes), c1: ks1, scale: ct.scale(), c1_seed: None }
    }

    /// Sums all slots into every slot via log₂(N/2) rotations (requires a
    /// power-of-two rotation key set).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if `keys` does not contain the
    /// power-of-two step sequence `1, 2, 4, …, N/4`.
    pub fn sum_slots(
        &self,
        ct: &CkksCiphertext,
        keys: &[GaloisKey],
    ) -> Result<CkksCiphertext, FheError> {
        let half = self.params().n / 2;
        // rotate() emits coefficient-domain ciphertexts, so the
        // accumulator starts there too to keep add() domains aligned.
        let mut acc = CkksCiphertext {
            c0: self.to_coeff(&ct.c0),
            c1: self.to_coeff(&ct.c1),
            scale: ct.scale(),
            c1_seed: None,
        };
        let mut step = 1usize;
        while step < half {
            let key = keys
                .iter()
                .find(|k| k.steps == step)
                .ok_or_else(|| FheError::InvalidParams(format!("missing rotation key {step}")))?;
            let rotated = self.rotate(&acc, key);
            acc = self.add(&acc, &rotated)?;
            step *= 2;
        }
        Ok(acc)
    }
}

/// The Galois element for a left rotation by `steps`: `5^steps mod 2N`.
fn galois_element(steps: usize, n: usize) -> usize {
    let two_n = 2 * n as u64;
    let mut g = 1u64;
    for _ in 0..steps {
        g = (g * 5) % two_n;
    }
    g as usize
}

/// Applies the automorphism X → X^g coefficient-wise (negacyclic signs).
fn apply_automorphism_poly(p: &RnsPoly, g: usize, primes: &[u64]) -> RnsPoly {
    let n = p.degree();
    let levels = p.levels().min(primes.len());
    let mut out = RnsPoly::zero(n, levels);
    for (i, &q) in primes.iter().take(levels).enumerate() {
        let src = p.residues(i);
        let dst = out.residues_mut(i);
        for (k, &c) in src.iter().enumerate() {
            let idx = (k * g) % (2 * n);
            if idx < n {
                dst[idx] = super::modarith::add_mod(dst[idx], c, q);
            } else {
                dst[idx - n] = super::modarith::sub_mod(dst[idx - n], c, q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::cipher::CkksPublicKey;
    use super::*;
    use crate::params::CkksParams;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (CkksContext, CkksSecretKey, CkksPublicKey, StdRng) {
        // Three primes leave room for a multiply + rescale.
        let params =
            CkksParams { n: 512, prime_bits: vec![50, 40, 40], scale_bits: 30, sigma: 3.2 };
        let ctx = CkksContext::new(params).expect("params");
        let mut rng = StdRng::seed_from_u64(11);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        (ctx, sk, pk, rng)
    }

    #[test]
    fn ciphertext_multiplication() {
        let (ctx, sk, pk, mut rng) = setup();
        let rk = ctx.generate_relin_key(&sk, &mut rng);
        let x = vec![1.5, -2.0, 3.0, 0.5];
        let y = vec![2.0, 4.0, -1.0, 8.0];
        let cx = ctx.encrypt(&pk, &x, &mut rng).expect("encrypt");
        let cy = ctx.encrypt(&pk, &y, &mut rng).expect("encrypt");
        let prod = ctx.mul(&cx, &cy, &rk).expect("mul");
        let back = ctx.decrypt(&sk, &prod);
        for i in 0..4 {
            assert!(
                (back[i] - x[i] * y[i]).abs() < 1e-2,
                "slot {i}: {} vs {}",
                back[i],
                x[i] * y[i]
            );
        }
        // And after rescaling.
        let rescaled = ctx.rescale(&prod).expect("rescale");
        let back = ctx.decrypt(&sk, &rescaled);
        for i in 0..4 {
            assert!((back[i] - x[i] * y[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn multiplication_is_commutative() {
        let (ctx, sk, pk, mut rng) = setup();
        let rk = ctx.generate_relin_key(&sk, &mut rng);
        let cx = ctx.encrypt(&pk, &[3.0, 5.0], &mut rng).expect("encrypt");
        let cy = ctx.encrypt(&pk, &[7.0, -2.0], &mut rng).expect("encrypt");
        let xy = ctx.decrypt(&sk, &ctx.mul(&cx, &cy, &rk).expect("mul"));
        let yx = ctx.decrypt(&sk, &ctx.mul(&cy, &cx, &rk).expect("mul"));
        assert!((xy[0] - yx[0]).abs() < 1e-2);
        assert!((xy[1] - yx[1]).abs() < 1e-2);
    }

    #[test]
    fn rotation_applies_the_documented_permutation() {
        let (ctx, sk, pk, mut rng) = setup();
        let gk = ctx.generate_galois_key(&sk, 1, &mut rng);
        let perm = ctx.rotation_permutation(1);
        let values: Vec<f64> = (0..ctx.slot_count()).map(|i| i as f64).collect();
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let rotated = ctx.rotate(&ct, &gk);
        let back = ctx.decrypt(&sk, &rotated);
        for j in 0..values.len() {
            let expected = values[perm[j]];
            assert!((back[j] - expected).abs() < 1e-2, "slot {j}: {} vs {expected}", back[j]);
        }
    }

    #[test]
    fn rotation_permutation_is_a_full_cycle() {
        // The Galois action must visit every slot once (this is what
        // sum_slots relies on).
        let (ctx, ..) = setup();
        let perm = ctx.rotation_permutation(1);
        let n = perm.len();
        // A permutation...
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(!seen[p], "duplicate image {p}");
            seen[p] = true;
        }
        // ...with a single orbit of length N/2.
        let mut pos = 0usize;
        for _ in 0..n - 1 {
            pos = perm[pos];
            assert_ne!(pos, 0, "cycle closed early");
        }
        assert_eq!(perm[pos], 0, "cycle must close after N/2 steps");
    }

    #[test]
    fn double_step_key_matches_permutation_square() {
        let (ctx, sk, pk, mut rng) = setup();
        let gk2 = ctx.generate_galois_key(&sk, 2, &mut rng);
        let p1 = ctx.rotation_permutation(1);
        let p2 = ctx.rotation_permutation(2);
        // g^2 acts as the square of the g-permutation.
        for j in 0..p1.len() {
            assert_eq!(p2[j], p1[p1[j]]);
        }
        let values: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let back = ctx.decrypt(&sk, &ctx.rotate(&ct, &gk2));
        for j in 0..8 {
            let src = p2[j];
            let expected = if src < values.len() { values[src] } else { 0.0 };
            assert!((back[j] - expected).abs() < 1e-2, "slot {j}");
        }
    }

    #[test]
    fn slot_sum_computes_total() {
        let (ctx, sk, pk, mut rng) = setup();
        let half = ctx.slot_count();
        let keys: Vec<GaloisKey> = std::iter::successors(Some(1usize), |&s| Some(s * 2))
            .take_while(|&s| s < half)
            .map(|s| ctx.generate_galois_key(&sk, s, &mut rng))
            .collect();
        let values: Vec<f64> = (0..half).map(|i| (i % 7) as f64 / 7.0).collect();
        let expected: f64 = values.iter().sum();
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let summed = ctx.sum_slots(&ct, &keys).expect("sum");
        let back = ctx.decrypt(&sk, &summed);
        assert!(
            (back[0] - expected).abs() < expected.abs() * 1e-2 + 0.3,
            "slot sum {} vs {expected}",
            back[0]
        );
    }

    #[test]
    fn encrypted_dot_product() {
        // The encrypted-similarity use case: <x, y> via mul + slot sum.
        let (ctx, sk, pk, mut rng) = setup();
        let rk = ctx.generate_relin_key(&sk, &mut rng);
        let half = ctx.slot_count();
        let keys: Vec<GaloisKey> = std::iter::successors(Some(1usize), |&s| Some(s * 2))
            .take_while(|&s| s < half)
            .map(|s| ctx.generate_galois_key(&sk, s, &mut rng))
            .collect();
        let x: Vec<f64> = (0..half).map(|i| ((i * 3) % 5) as f64 / 5.0).collect();
        let y: Vec<f64> = (0..half).map(|i| ((i * 7) % 4) as f64 / 4.0).collect();
        let expected: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let cx = ctx.encrypt(&pk, &x, &mut rng).expect("encrypt");
        let cy = ctx.encrypt(&pk, &y, &mut rng).expect("encrypt");
        // Sum at the squared scale, rescale last: key-switching noise is
        // absolute, so it is negligible against Δ² but not against the
        // tiny Δ²/q scale a premature rescale would leave.
        let prod = ctx.mul(&cx, &cy, &rk).expect("mul");
        let dot = ctx.rescale(&ctx.sum_slots(&prod, &keys).expect("sum")).expect("rescale");
        let back = ctx.decrypt(&sk, &dot);
        assert!(
            (back[0] - expected).abs() < expected.abs() * 0.02 + 0.5,
            "dot {} vs {expected}",
            back[0]
        );
    }

    #[test]
    fn sum_slots_requires_keys() {
        let (ctx, sk, pk, mut rng) = setup();
        let ct = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
        let only_one = vec![ctx.generate_galois_key(&sk, 1, &mut rng)];
        assert!(ctx.sum_slots(&ct, &only_one).is_err(), "missing higher rotation keys");
    }
}
