//! CKKS context, keys, ciphertexts and homomorphic operations.
//!
//! Supports exactly the operation set Rhychee-FL needs (paper §II-A):
//! encryption, decryption, ciphertext-ciphertext addition, and
//! multiplication by a plaintext scalar or vector, plus rescaling. No
//! relinearization or bootstrapping is required because federated
//! averaging is linear.
//!
//! The pipeline is NTT-resident: keys carry evaluation-domain copies
//! built once at keygen, fresh ciphertexts come out of encryption in the
//! evaluation domain, and the additive operations stay pointwise there.
//! Residue rows are inverse-transformed only at the decrypt/serialize
//! boundary, so a full encrypt→aggregate→decrypt round costs four
//! forward NTTs per prime on the client and one inverse per prime at
//! decryption — down from six transforms plus two key re-transforms per
//! encryption. The NTT is a per-prime linear bijection, so every
//! decrypted value and every canonical serialized byte is bit-identical
//! to the coefficient-domain reference path (kept behind
//! [`CkksContext::set_eval_resident`] for tests and benchmarks).

use std::collections::HashMap;
use std::sync::Arc;

use rand::Rng;
use rhychee_par::Parallelism;
use rhychee_telemetry as telemetry;

use crate::bitpack::{bits_for, BitReader, BitWriter};
use crate::error::FheError;
use crate::params::CkksParams;
use crate::sampling::{gaussian_fill, gaussian_vec, ternary_vec};

use super::encoder::{CkksEncoder, Complex};
use super::modarith::{add_mod, find_ntt_primes, mul_mod};
use super::ntt::{cached_table, NttTable};
use super::rns::{Domain, RnsPoly};
use super::{scratch, seedexp};

/// Shared CKKS evaluation context: primes, NTT tables and the encoder.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rhychee_fhe::ckks::CkksContext;
/// use rhychee_fhe::params::CkksParams;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = CkksContext::new(CkksParams::toy())?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let (sk, pk) = ctx.generate_keys(&mut rng);
/// let ct = ctx.encrypt(&pk, &[1.0, 2.0, 3.0], &mut rng)?;
/// let back = ctx.decrypt(&sk, &ct);
/// assert!((back[0] - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CkksContext {
    params: CkksParams,
    primes: Vec<u64>,
    ntt: Vec<Arc<NttTable>>,
    encoder: CkksEncoder,
    parallelism: Parallelism,
    /// When true (the default), encryption emits evaluation-domain
    /// ciphertexts. When false, the coefficient-domain reference path is
    /// used instead; outputs are bit-identical either way.
    eval_resident: bool,
}

/// A CKKS secret key: the ternary ring element `s` plus its cached
/// evaluation-domain form.
///
/// `s_eval` is transformed once at keygen. Residue rows are independent
/// per prime, so the per-level truncations decryption needs are just row
/// slices of `s_eval` — no per-call copy or transform.
#[derive(Debug, Clone)]
pub struct CkksSecretKey {
    pub(crate) s: RnsPoly,
    pub(crate) s_eval: RnsPoly,
}

/// A CKKS public key `(b, a) = (−a·s + e, a)`, carrying both the
/// coefficient-domain polynomials and their evaluation-domain forms
/// (transformed once at keygen so encryption never re-transforms keys).
#[derive(Debug, Clone)]
pub struct CkksPublicKey {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
    pub(crate) b_eval: RnsPoly,
    pub(crate) a_eval: RnsPoly,
}

impl CkksSecretKey {
    pub(crate) fn from_coeff(ctx: &CkksContext, s: RnsPoly) -> Self {
        let s_eval = ctx.to_eval(&s);
        CkksSecretKey { s, s_eval }
    }
}

impl CkksPublicKey {
    pub(crate) fn from_coeff(ctx: &CkksContext, b: RnsPoly, a: RnsPoly) -> Self {
        let b_eval = ctx.to_eval(&b);
        let a_eval = ctx.to_eval(&a);
        CkksPublicKey { b, a, b_eval, a_eval }
    }
}

/// Pre-sampled encryption randomness: the ephemeral secret `v` and the
/// two error polynomials `e0`, `e1`, in raw signed-coefficient form.
///
/// Produced by [`CkksContext::sample_encrypt_noise`] and consumed by
/// [`CkksContext::encrypt_with_noise`]; exists so the RNG-ordered part
/// of encryption can run sequentially while the polynomial arithmetic
/// runs in parallel.
#[derive(Debug, Clone)]
pub struct CkksEncryptNoise {
    v: Vec<i64>,
    e0: Vec<i64>,
    e1: Vec<i64>,
}

/// Pre-sampled symmetric-encryption randomness: the 32-byte expansion
/// seed for the uniform component `a` and the error polynomial `e`.
///
/// Produced by [`CkksContext::sample_symmetric_noise`] and consumed by
/// [`CkksContext::encrypt_symmetric_with_noise`] — the same sequential-
/// sampling / parallel-arithmetic split as [`CkksEncryptNoise`].
#[derive(Debug, Clone, Default)]
pub struct CkksSymmetricNoise {
    seed: [u8; 32],
    e: Vec<i64>,
}

/// Reusable scratch buffers for the allocation-free symmetric encrypt
/// path ([`CkksContext::encrypt_symmetric_with_noise_into`]): FFT
/// scratch and integer coefficients for encoding, plus the encoded
/// message polynomial. One arena serves any number of sequential
/// encryptions; after the first call its buffers are warm and the
/// steady-state encrypt performs no heap allocation.
#[derive(Debug)]
pub struct CkksEncryptArena {
    z: Vec<Complex>,
    coeffs: Vec<i64>,
    m: RnsPoly,
}

impl Default for CkksEncryptArena {
    fn default() -> Self {
        CkksEncryptArena { z: Vec::new(), coeffs: Vec::new(), m: RnsPoly::zero(0, 0) }
    }
}

impl CkksEncryptArena {
    /// An empty arena; buffers grow to the context's shape on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A CKKS ciphertext `(c0, c1)` with scale and (implicit) level tracking.
///
/// Fresh symmetric ciphertexts additionally remember the 32-byte seed
/// their uniform `c1` was expanded from, enabling the seed-compressed
/// wire format ([`CkksContext::serialize_seeded`]). Any homomorphic
/// operation invalidates the seed (the result's `c1` is no longer a pure
/// expansion), so aggregates always serialize canonically.
#[derive(Debug, Clone)]
pub struct CkksCiphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    pub(crate) scale: f64,
    pub(crate) c1_seed: Option<[u8; 32]>,
}

impl CkksCiphertext {
    /// The current scale Δ' of the encrypted message.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Remaining modulus levels (number of active primes).
    pub fn levels(&self) -> usize {
        self.c0.levels()
    }

    /// Whether this ciphertext still carries the expansion seed of its
    /// uniform `c1` (fresh symmetric encryptions only) and therefore
    /// supports [`CkksContext::serialize_seeded`].
    pub fn is_seeded(&self) -> bool {
        self.c1_seed.is_some()
    }

    /// Heap bytes held by both component polynomials, for memory
    /// accounting (e.g. streaming accumulators).
    pub fn heap_bytes(&self) -> u64 {
        self.c0.heap_bytes() + self.c1.heap_bytes()
    }
}

impl CkksContext {
    /// Builds a context from validated parameters, materializing the
    /// NTT-friendly prime chain and transform tables.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if `params` fails validation.
    pub fn new(params: CkksParams) -> Result<Self, FheError> {
        Self::with_parallelism(params, Parallelism::sequential())
    }

    /// [`CkksContext::new`] with an explicit [`Parallelism`] degree.
    ///
    /// Every per-prime kernel (NTT products, rescale), the CRT decode
    /// in [`CkksContext::decrypt`], and chunk-level packing helpers in
    /// `rhychee-core` split work `parallelism.degree()` ways on the
    /// shared `rhychee-par` pool. Results are bit-identical for every
    /// degree; `Fixed(1)` runs fully inline.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if `params` fails validation.
    pub fn with_parallelism(
        params: CkksParams,
        parallelism: Parallelism,
    ) -> Result<Self, FheError> {
        params.validate()?;
        let two_n = 2 * params.n as u64;
        // Group requested prime sizes so repeated sizes yield distinct primes.
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &b in &params.prime_bits {
            *counts.entry(b).or_insert(0) += 1;
        }
        let mut pools: HashMap<u32, Vec<u64>> = counts
            .into_iter()
            .map(|(bits, count)| (bits, find_ntt_primes(bits, count, two_n)))
            .collect();
        let primes: Vec<u64> = params
            .prime_bits
            .iter()
            .map(|b| pools.get_mut(b).expect("pool exists").remove(0))
            .collect();
        let ntt = primes.iter().map(|&q| cached_table(params.n, q)).collect();
        let encoder = CkksEncoder::new(params.n, 1u64 << params.scale_bits);
        // Expose the crate's two long-lived heap consumers to the memory
        // observability plane (idempotent: re-registration replaces).
        telemetry::mem::register_source("fhe.ntt_table_cache", super::ntt::table_cache_bytes);
        telemetry::mem::register_source("fhe.scratch", scratch::pooled_bytes);
        Ok(CkksContext { params, primes, ntt, encoder, parallelism, eval_resident: true })
    }

    /// The parameter set this context was built from.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// The parallelism degree this context splits kernel work into.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Changes the parallelism degree of an existing context. Purely a
    /// scheduling knob: outputs are bit-identical for every degree.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// Whether public-key encryption emits evaluation-domain (NTT-resident)
    /// ciphertexts (the default).
    pub fn eval_resident(&self) -> bool {
        self.eval_resident
    }

    /// Selects between the NTT-resident pipeline (`true`, the default)
    /// and the coefficient-domain reference path (`false`).
    ///
    /// The flag only affects which domain [`CkksContext::encrypt`] emits;
    /// every other operation dispatches on the ciphertext's actual
    /// domain. Decrypted values and canonical serialized bytes are
    /// bit-identical either way — the reference path exists so tests and
    /// benchmarks can prove exactly that (and measure the difference).
    pub fn set_eval_resident(&mut self, eval_resident: bool) {
        self.eval_resident = eval_resident;
    }

    /// The materialized RNS prime chain.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Number of plaintext slots per ciphertext (N/2).
    pub fn slot_count(&self) -> usize {
        self.params.slot_count()
    }

    /// The slot encoder for this context.
    pub fn encoder(&self) -> &CkksEncoder {
        &self.encoder
    }

    /// Generates a fresh (secret, public) key pair.
    pub fn generate_keys<R: Rng + ?Sized>(&self, rng: &mut R) -> (CkksSecretKey, CkksPublicKey) {
        let n = self.params.n;
        let s_coeffs = ternary_vec(rng, n);
        let s = RnsPoly::from_signed_coeffs(&s_coeffs, &self.primes);
        let a = self.uniform_poly(rng);
        let e_coeffs = gaussian_vec(rng, n, self.params.sigma);
        let e = RnsPoly::from_signed_coeffs(&e_coeffs, &self.primes);
        // b = -(a·s) + e
        let a_s = self.poly_mul(&a, &s);
        let b = a_s.neg(&self.primes).add(&e, &self.primes);
        // The evaluation-domain key copies are built here, once — the
        // encrypt/decrypt hot paths never transform key material again.
        (CkksSecretKey::from_coeff(self, s), CkksPublicKey::from_coeff(self, b, a))
    }

    /// Encrypts a slot vector under the public key.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::PlaintextTooLarge`] if more than `N/2` values
    /// are supplied.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pk: &CkksPublicKey,
        values: &[f64],
        rng: &mut R,
    ) -> Result<CkksCiphertext, FheError> {
        let noise = self.sample_encrypt_noise(rng);
        self.encrypt_with_noise(pk, values, &noise)
    }

    /// Draws the randomness one [`CkksContext::encrypt`] call consumes
    /// (ephemeral ternary `v`, then Gaussian `e0`, `e1` — in that exact
    /// stream order).
    ///
    /// Splitting sampling from the deterministic ciphertext computation
    /// lets callers pre-draw noise for many ciphertexts sequentially —
    /// preserving a seeded RNG's stream bit-for-bit — and then run the
    /// heavy [`CkksContext::encrypt_with_noise`] calls in parallel.
    pub fn sample_encrypt_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> CkksEncryptNoise {
        let n = self.params.n;
        CkksEncryptNoise {
            v: ternary_vec(rng, n),
            e0: gaussian_vec(rng, n, self.params.sigma),
            e1: gaussian_vec(rng, n, self.params.sigma),
        }
    }

    /// Encrypts with pre-sampled randomness; `encrypt(pk, values, rng)`
    /// is exactly `encrypt_with_noise(pk, values,
    /// &sample_encrypt_noise(rng))`.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::PlaintextTooLarge`] if more than `N/2` values
    /// are supplied.
    pub fn encrypt_with_noise(
        &self,
        pk: &CkksPublicKey,
        values: &[f64],
        noise: &CkksEncryptNoise,
    ) -> Result<CkksCiphertext, FheError> {
        let _span = telemetry::span("fhe.ckks.encrypt");
        let m = self.encode_poly(values)?;
        let ct = if self.eval_resident {
            self.encrypt_resident(pk, &m, noise)
        } else {
            // Coefficient-domain reference path: two full NTT products
            // (re-transforming the keys) plus coefficient additions.
            let v = RnsPoly::from_signed_coeffs(&noise.v, &self.primes);
            let e0 = RnsPoly::from_signed_coeffs(&noise.e0, &self.primes);
            let e1 = RnsPoly::from_signed_coeffs(&noise.e1, &self.primes);
            let c0 = self.poly_mul(&pk.b, &v).add(&e0, &self.primes).add(&m, &self.primes);
            let c1 = self.poly_mul(&pk.a, &v).add(&e1, &self.primes);
            CkksCiphertext { c0, c1, scale: self.encoder.scale(), c1_seed: None }
        };
        telemetry::count("fhe.ckks.encrypt.count", 1);
        self.publish_noise_gauges(&ct);
        Ok(ct)
    }

    /// Evaluation-domain encryption: exactly one forward NTT per prime
    /// for each of `v` (shared by both components), `e0`, `e1` and `m`,
    /// zero inverses, zero key transforms. Per prime:
    /// `c0 = b̂ ∘ NTT(v) + NTT(e0) + NTT(m)`, `c1 = â ∘ NTT(v) + NTT(e1)`.
    ///
    /// The NTT is linear over `Z_q`, so INTT of these rows equals the
    /// reference path's coefficient rows exactly — same ciphertext, new
    /// domain.
    fn encrypt_resident(
        &self,
        pk: &CkksPublicKey,
        m: &RnsPoly,
        noise: &CkksEncryptNoise,
    ) -> CkksCiphertext {
        let n = self.params.n;
        let levels = self.primes.len();
        // (c0, c1) rows are produced together per prime so NTT(v) is
        // computed once and feeds both components.
        let mut rows: Vec<(Vec<u64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); levels];
        rhychee_par::for_each_mut(self.parallelism, &mut rows, |i, pair| {
            let (r0, r1) = pair;
            let table = &self.ntt[i];
            let q = self.primes[i];
            let b_row = pk.b_eval.residues(i);
            let a_row = pk.a_eval.residues(i);
            r0.resize(n, 0);
            r1.resize(n, 0);
            // r1 holds NTT(v) until c0 is assembled, then becomes c1.
            reduce_signed_into(&noise.v, q, r1);
            table.forward(r1);
            // c0 = b̂ ∘ NTT(v) + NTT(e0) + NTT(m)
            reduce_signed_into(&noise.e0, q, r0);
            table.forward(r0);
            scratch::with_row(n, |t| {
                t.copy_from_slice(m.residues(i));
                table.forward(t);
                for j in 0..n {
                    let e0_m = add_mod(r0[j], t[j], q);
                    r0[j] = add_mod(mul_mod(b_row[j], r1[j], q), e0_m, q);
                }
            });
            // c1 = â ∘ NTT(v) + NTT(e1)
            scratch::with_row(n, |t| {
                reduce_signed_into(&noise.e1, q, t);
                table.forward(t);
                for j in 0..n {
                    r1[j] = add_mod(mul_mod(a_row[j], r1[j], q), t[j], q);
                }
            });
        });
        let (rows0, rows1): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        CkksCiphertext {
            c0: RnsPoly::from_rows(rows0, Domain::Eval),
            c1: RnsPoly::from_rows(rows1, Domain::Eval),
            scale: self.encoder.scale(),
            c1_seed: None,
        }
    }

    /// Encrypts a slot vector under the secret key (symmetric mode).
    ///
    /// Produces the same ciphertext shape as [`CkksContext::encrypt`] with
    /// slightly lower fresh noise; useful when clients hold the shared
    /// secret key anyway, as in Rhychee-FL. The uniform component
    /// `c1 = a` is expanded from a 32-byte seed drawn from `rng`, and the
    /// ciphertext remembers that seed, so it can travel in the
    /// seed-compressed wire format ([`CkksContext::serialize_seeded`])
    /// at roughly half the canonical byte cost.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::PlaintextTooLarge`] if more than `N/2` values
    /// are supplied.
    pub fn encrypt_symmetric<R: Rng + ?Sized>(
        &self,
        sk: &CkksSecretKey,
        values: &[f64],
        rng: &mut R,
    ) -> Result<CkksCiphertext, FheError> {
        let noise = self.sample_symmetric_noise(rng);
        self.encrypt_symmetric_with_noise(sk, values, &noise)
    }

    /// Draws the randomness one [`CkksContext::encrypt_symmetric`] call
    /// consumes (the 32-byte expansion seed, then Gaussian `e` — in that
    /// exact stream order), mirroring
    /// [`CkksContext::sample_encrypt_noise`].
    pub fn sample_symmetric_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> CkksSymmetricNoise {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        CkksSymmetricNoise { seed, e: gaussian_vec(rng, self.params.n, self.params.sigma) }
    }

    /// [`CkksContext::sample_symmetric_noise`] into a caller-owned
    /// struct, reusing the error vector's allocation. Draws the exact
    /// same RNG stream (seed bytes first, then Gaussian `e`).
    pub fn sample_symmetric_noise_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        noise: &mut CkksSymmetricNoise,
    ) {
        rng.fill_bytes(&mut noise.seed);
        gaussian_fill(rng, self.params.n, self.params.sigma, &mut noise.e);
    }

    /// An all-zero evaluation-domain ciphertext at full level, shaped for
    /// this context — the reusable output slot for
    /// [`CkksContext::encrypt_symmetric_with_noise_into`].
    pub fn zero_ciphertext(&self) -> CkksCiphertext {
        let (n, levels) = (self.params.n, self.primes.len());
        CkksCiphertext {
            c0: RnsPoly::zero_in(n, levels, Domain::Eval),
            c1: RnsPoly::zero_in(n, levels, Domain::Eval),
            scale: self.encoder.scale(),
            c1_seed: None,
        }
    }

    /// Symmetric encryption with pre-sampled randomness.
    ///
    /// Always evaluation-domain: `c1 = a` is expanded from the seed
    /// directly in NTT form (the NTT is a bijection on `Z_q^N`, so a
    /// uniform evaluation-domain polynomial is exactly as uniform as a
    /// coefficient-domain one), and `c0 = −(a ∘ ŝ) + NTT(e) + NTT(m)` —
    /// two forward transforms per prime, zero inverses.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::PlaintextTooLarge`] if more than `N/2` values
    /// are supplied.
    pub fn encrypt_symmetric_with_noise(
        &self,
        sk: &CkksSecretKey,
        values: &[f64],
        noise: &CkksSymmetricNoise,
    ) -> Result<CkksCiphertext, FheError> {
        let _span = telemetry::span("fhe.ckks.encrypt");
        let m = self.encode_poly(values)?;
        let n = self.params.n;
        let levels = self.primes.len();
        let mut rows: Vec<(Vec<u64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); levels];
        rhychee_par::for_each_mut(self.parallelism, &mut rows, |i, pair| {
            let (r0, r1) = pair;
            let table = &self.ntt[i];
            let q = self.primes[i];
            let s_row = sk.s_eval.residues(i);
            *r1 = seedexp::expand_row(&noise.seed, i, q, n);
            // c0 = −(a ∘ ŝ) + NTT(e) + NTT(m)
            r0.resize(n, 0);
            reduce_signed_into(&noise.e, q, r0);
            table.forward(r0);
            scratch::with_row(n, |t| {
                t.copy_from_slice(m.residues(i));
                table.forward(t);
                for j in 0..n {
                    let e_m = add_mod(r0[j], t[j], q);
                    let a_s = mul_mod(r1[j], s_row[j], q);
                    r0[j] = add_mod(if a_s == 0 { 0 } else { q - a_s }, e_m, q);
                }
            });
        });
        telemetry::count("fhe.ckks.encrypt.count", 1);
        let (rows0, rows1): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        let ct = CkksCiphertext {
            c0: RnsPoly::from_rows(rows0, Domain::Eval),
            c1: RnsPoly::from_rows(rows1, Domain::Eval),
            scale: self.encoder.scale(),
            c1_seed: Some(noise.seed),
        };
        self.publish_noise_gauges(&ct);
        Ok(ct)
    }

    /// [`CkksContext::encrypt_symmetric_with_noise`] into caller-owned
    /// buffers: bit-identical output, zero heap allocation once `arena`
    /// and `out` are warm (the steady-state client upload path).
    ///
    /// Runs in two passes so `out`'s fields can be borrowed disjointly:
    /// pass 1 expands every `c1` row from the seed directly in NTT form;
    /// pass 2 computes `c0 = −(a ∘ ŝ) + NTT(e) + NTT(m)` reading the
    /// finished `c1` rows immutably. Same two forward transforms per
    /// prime as the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::PlaintextTooLarge`] if more than `N/2` values
    /// are supplied; `out` is untouched in that case.
    pub fn encrypt_symmetric_with_noise_into(
        &self,
        sk: &CkksSecretKey,
        values: &[f64],
        noise: &CkksSymmetricNoise,
        arena: &mut CkksEncryptArena,
        out: &mut CkksCiphertext,
    ) -> Result<(), FheError> {
        let _span = telemetry::span("fhe.ckks.encrypt");
        if values.len() > self.slot_count() {
            return Err(FheError::PlaintextTooLarge {
                len: values.len(),
                capacity: self.slot_count(),
            });
        }
        self.encoder.encode_into(values, &mut arena.z, &mut arena.coeffs);
        arena.m.fill_from_signed(&arena.coeffs, &self.primes);
        let n = self.params.n;
        let levels = self.primes.len();
        out.c0.ensure_shape(n, levels, Domain::Eval);
        out.c1.ensure_shape(n, levels, Domain::Eval);
        rhychee_par::for_each_mut(self.parallelism, out.c1.residues_all_mut(), |i, r1| {
            seedexp::expand_row_into(&noise.seed, i, self.primes[i], n, r1);
        });
        let (c0, c1) = (&mut out.c0, &out.c1);
        let m = &arena.m;
        rhychee_par::for_each_mut(self.parallelism, c0.residues_all_mut(), |i, r0| {
            let table = &self.ntt[i];
            let q = self.primes[i];
            let s_row = sk.s_eval.residues(i);
            let r1 = c1.residues(i);
            reduce_signed_into(&noise.e, q, r0);
            table.forward(r0);
            scratch::with_row(n, |t| {
                t.copy_from_slice(m.residues(i));
                table.forward(t);
                for j in 0..n {
                    let e_m = add_mod(r0[j], t[j], q);
                    let a_s = mul_mod(r1[j], s_row[j], q);
                    r0[j] = add_mod(if a_s == 0 { 0 } else { q - a_s }, e_m, q);
                }
            });
        });
        telemetry::count("fhe.ckks.encrypt.count", 1);
        out.scale = self.encoder.scale();
        out.c1_seed = Some(noise.seed);
        self.publish_noise_gauges(out);
        Ok(())
    }

    /// Decrypts a ciphertext to its slot values.
    ///
    /// Evaluation-domain ciphertexts pay exactly one inverse NTT per
    /// prime (`m = INTT(c1 ∘ ŝ + c0)`, with `ŝ`'s per-level truncation
    /// being a zero-copy row slice of the key's cached `s_eval`).
    /// Coefficient-domain ciphertexts (deserialized canonical uploads,
    /// reference-path output) pay one forward and one inverse per prime,
    /// exactly like the pre-resident pipeline.
    pub fn decrypt(&self, sk: &CkksSecretKey, ct: &CkksCiphertext) -> Vec<f64> {
        let _span = telemetry::span("fhe.ckks.decrypt");
        telemetry::count("fhe.ckks.decrypt.count", 1);
        let levels = ct.levels();
        let active = &self.primes[..levels];
        let n = ct.c0.degree();
        let mut m = RnsPoly::zero(n, levels);
        match ct.c1.domain() {
            Domain::Eval => {
                debug_assert_eq!(ct.c0.domain(), Domain::Eval, "mixed-domain ciphertext");
                rhychee_par::for_each_mut(self.parallelism, m.residues_all_mut(), |i, row| {
                    let q = active[i];
                    let s_row = sk.s_eval.residues(i);
                    let c0_row = ct.c0.residues(i);
                    let c1_row = ct.c1.residues(i);
                    for j in 0..n {
                        row[j] = add_mod(mul_mod(c1_row[j], s_row[j], q), c0_row[j], q);
                    }
                    self.ntt[i].inverse(row);
                });
            }
            Domain::Coeff => {
                debug_assert_eq!(ct.c0.domain(), Domain::Coeff, "mixed-domain ciphertext");
                rhychee_par::for_each_mut(self.parallelism, m.residues_all_mut(), |i, row| {
                    let q = active[i];
                    let table = &self.ntt[i];
                    row.copy_from_slice(ct.c1.residues(i));
                    table.forward(row);
                    for (x, &s) in row.iter_mut().zip(sk.s_eval.residues(i)) {
                        *x = mul_mod(*x, s, q);
                    }
                    table.inverse(row);
                    for (x, &c) in row.iter_mut().zip(ct.c0.residues(i)) {
                        *x = add_mod(*x, c, q);
                    }
                });
            }
        }
        let coeffs = m.to_centered_f64_with(active, self.parallelism);
        self.encoder.decode_with_scale(&coeffs, ct.scale)
    }

    /// Homomorphic addition of two ciphertexts.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::LevelMismatch`] or [`FheError::ScaleMismatch`]
    /// if the operands are incompatible.
    pub fn add(&self, a: &CkksCiphertext, b: &CkksCiphertext) -> Result<CkksCiphertext, FheError> {
        self.check_compatible(a, b)?;
        telemetry::count("fhe.ckks.add", 1);
        let active = &self.primes[..a.levels()];
        Ok(CkksCiphertext {
            c0: a.c0.add(&b.c0, active),
            c1: a.c1.add(&b.c1, active),
            scale: a.scale,
            c1_seed: None,
        })
    }

    /// In-place homomorphic addition (`acc += ct`), the hot loop of
    /// federated aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::LevelMismatch`] or [`FheError::ScaleMismatch`]
    /// if the operands are incompatible.
    pub fn add_assign(
        &self,
        acc: &mut CkksCiphertext,
        ct: &CkksCiphertext,
    ) -> Result<(), FheError> {
        self.check_compatible(acc, ct)?;
        telemetry::count("fhe.ckks.add", 1);
        let levels = acc.levels();
        acc.c0.add_assign(&ct.c0, &self.primes[..levels]);
        acc.c1.add_assign(&ct.c1, &self.primes[..levels]);
        acc.c1_seed = None;
        Ok(())
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::LevelMismatch`] or [`FheError::ScaleMismatch`]
    /// if the operands are incompatible.
    pub fn sub(&self, a: &CkksCiphertext, b: &CkksCiphertext) -> Result<CkksCiphertext, FheError> {
        self.check_compatible(a, b)?;
        telemetry::count("fhe.ckks.sub", 1);
        let active = &self.primes[..a.levels()];
        Ok(CkksCiphertext {
            c0: a.c0.sub(&b.c0, active),
            c1: a.c1.sub(&b.c1, active),
            scale: a.scale,
            c1_seed: None,
        })
    }

    /// Multiplies a ciphertext by a plaintext scalar (e.g. `1/P` in
    /// federated averaging, Eq. 2 of the paper).
    ///
    /// The scalar is encoded at the context scale Δ, so the result's scale
    /// becomes `ct.scale · Δ`. Call [`CkksContext::rescale`] afterwards if
    /// a modulus level is available; decoding also works at the squared
    /// scale as long as the message magnitude stays within the modulus.
    pub fn mul_scalar(&self, ct: &CkksCiphertext, scalar: f64) -> CkksCiphertext {
        telemetry::count("fhe.ckks.mul_scalar", 1);
        let delta = self.encoder.scale();
        let encoded = (scalar * delta).round() as i64;
        let active = &self.primes[..ct.levels()];
        CkksCiphertext {
            c0: ct.c0.mul_scalar_signed(encoded, active),
            c1: ct.c1.mul_scalar_signed(encoded, active),
            scale: ct.scale * delta,
            c1_seed: None,
        }
    }

    /// Slot-wise multiplication by a plaintext vector.
    ///
    /// Encodes `values` as a plaintext polynomial and multiplies both
    /// ciphertext components by it (one NTT product per prime). The scale
    /// becomes `ct.scale · Δ`.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::PlaintextTooLarge`] if more than `N/2` values
    /// are supplied.
    pub fn mul_plain_vec(
        &self,
        ct: &CkksCiphertext,
        values: &[f64],
    ) -> Result<CkksCiphertext, FheError> {
        if values.len() > self.slot_count() {
            return Err(FheError::PlaintextTooLarge {
                len: values.len(),
                capacity: self.slot_count(),
            });
        }
        let _t = telemetry::timer("fhe.ckks.mul_plain_vec");
        let coeffs = self.encoder.encode(values);
        let levels = ct.levels();
        let mut m = RnsPoly::from_signed_coeffs(&coeffs, &self.primes[..levels]);
        let (c0, c1) = match ct.c1.domain() {
            Domain::Eval => {
                // One forward per prime for the encoded plaintext; the
                // ciphertext is already resident and stays so.
                self.forward_rows(&mut m);
                (self.pointwise_mul(&ct.c0, &m), self.pointwise_mul(&ct.c1, &m))
            }
            Domain::Coeff => {
                (self.poly_mul_at(&ct.c0, &m, levels), self.poly_mul_at(&ct.c1, &m, levels))
            }
        };
        Ok(CkksCiphertext { c0, c1, scale: ct.scale * self.encoder.scale(), c1_seed: None })
    }

    /// Rescales a ciphertext by the last active prime, dropping one level
    /// and dividing the scale accordingly.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::LevelExhausted`] at the bottom of the chain.
    pub fn rescale(&self, ct: &CkksCiphertext) -> Result<CkksCiphertext, FheError> {
        let levels = ct.levels();
        if levels < 2 {
            return Err(FheError::LevelExhausted);
        }
        let _t = telemetry::timer("fhe.ckks.rescale");
        telemetry::count("fhe.ckks.rescale.count", 1);
        let q_last = self.primes[levels - 1] as f64;
        let active = &self.primes[..levels];
        let (c0, c1) = match ct.c1.domain() {
            Domain::Eval => (self.rescale_eval(&ct.c0), self.rescale_eval(&ct.c1)),
            Domain::Coeff => (
                ct.c0.rescale_with(active, self.parallelism),
                ct.c1.rescale_with(active, self.parallelism),
            ),
        };
        let out = CkksCiphertext { c0, c1, scale: ct.scale / q_last, c1_seed: None };
        self.publish_noise_gauges(&out);
        Ok(out)
    }

    /// Rescale of an evaluation-domain polynomial without leaving the
    /// evaluation domain: the dropped row is inverse-transformed once,
    /// its centered lift is forward-transformed into each remaining
    /// prime's basis, and the rest is pointwise:
    /// `X'_i = (X_i − NTT_i(lift)) · q_last^{-1}`.
    ///
    /// By linearity of the NTT this equals `NTT_i` of the coefficient-
    /// domain rescale exactly, so resident and reference pipelines stay
    /// bit-identical.
    fn rescale_eval(&self, p: &RnsPoly) -> RnsPoly {
        let l = p.levels();
        let n = p.degree();
        let q_last = self.primes[l - 1];
        let mut last = p.residues(l - 1).to_vec();
        self.ntt[l - 1].inverse(&mut last);
        let mut out = RnsPoly::zero_in(n, l - 1, Domain::Eval);
        rhychee_par::for_each_mut(self.parallelism, out.residues_all_mut(), |i, row| {
            let q = self.primes[i];
            let q_last_inv = super::modarith::inv_mod(q_last % q, q);
            // The output row doubles as the lift buffer: centered lift of
            // the dropped row, forward transform, then finish pointwise.
            for (o, &xl) in row.iter_mut().zip(&last) {
                *o = if xl > q_last / 2 { (xl + q - (q_last % q)) % q } else { xl % q };
            }
            self.ntt[i].forward(row);
            for (o, &x) in row.iter_mut().zip(p.residues(i)) {
                *o = mul_mod(super::modarith::sub_mod(x, *o, q), q_last_inv, q);
            }
        });
        out
    }

    /// Publishes the noise-budget gauges for `ct` (DESIGN.md §10):
    /// `fhe.ckks.scale_bits` (log2 of the current scale Δ'),
    /// `fhe.ckks.level_remaining` (active primes left in the chain), and
    /// `fhe.ckks.modulus_bits_remaining` (Σ bits of the active primes —
    /// the headroom rescales still have to burn). Called after every
    /// fresh encryption and every rescale, so operators see margin
    /// exhaustion before accuracy collapses.
    fn publish_noise_gauges(&self, ct: &CkksCiphertext) {
        if !telemetry::enabled() {
            return;
        }
        let levels = ct.levels();
        let modulus_bits: u32 = self.primes[..levels].iter().map(|&q| bits_for(q)).sum();
        telemetry::gauge("fhe.ckks.scale_bits", ct.scale.log2());
        telemetry::gauge("fhe.ckks.level_remaining", levels as f64);
        telemetry::gauge("fhe.ckks.modulus_bits_remaining", f64::from(modulus_bits));
    }

    /// Serializes a ciphertext with exact-width residue packing, so the
    /// byte length closely tracks the paper's `2N·log Q` accounting.
    ///
    /// This is the *canonical* format: always coefficient-domain bytes,
    /// regardless of the ciphertext's resident domain (evaluation rows
    /// are inverse-transformed into a scratch buffer at this boundary).
    /// A resident and a reference ciphertext of the same message
    /// therefore serialize to identical bytes, and the channel-noise
    /// experiments keep their corruption-decrypts-to-garbage semantics.
    pub fn serialize(&self, ct: &CkksCiphertext) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.write_bits(ct.levels() as u64, 8);
        w.write_bits(ct.scale.to_bits(), 64);
        for poly in [&ct.c0, &ct.c1] {
            for (i, &q) in self.primes[..ct.levels()].iter().enumerate() {
                let bits = bits_for(q);
                match poly.domain() {
                    Domain::Coeff => {
                        for &r in poly.residues(i) {
                            w.write_bits(r, bits);
                        }
                    }
                    Domain::Eval => scratch::with_row(poly.degree(), |row| {
                        row.copy_from_slice(poly.residues(i));
                        self.ntt[i].inverse(row);
                        for &r in row.iter() {
                            w.write_bits(r, bits);
                        }
                    }),
                }
            }
        }
        w.into_bytes()
    }

    /// Serializes a fresh symmetric ciphertext in the seed-compressed
    /// format: header, the 32-byte expansion seed of `c1` plus a 32-bit
    /// integrity digest, and the `c0` residues (evaluation-domain,
    /// exact-width packed). Roughly half the canonical size — see
    /// [`CkksContext::serialized_len_seeded`].
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Serialize`] if the ciphertext no longer
    /// carries its expansion seed (any homomorphic operation clears it).
    pub fn serialize_seeded(&self, ct: &CkksCiphertext) -> Result<Vec<u8>, FheError> {
        let Some(seed) = ct.c1_seed else {
            return Err(FheError::Serialize(
                "ciphertext carries no expansion seed (not a fresh symmetric encryption)".into(),
            ));
        };
        debug_assert_eq!(ct.c0.domain(), Domain::Eval, "seeded ciphertexts are eval-resident");
        let mut w = BitWriter::new();
        w.write_bits(ct.levels() as u64, 8);
        w.write_bits(ct.scale.to_bits(), 64);
        for chunk in seed.chunks_exact(8) {
            w.write_bits(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")), 64);
        }
        w.write_bits(u64::from(seedexp::seed_check(&seed)), 32);
        for (i, &q) in self.primes[..ct.levels()].iter().enumerate() {
            let bits = bits_for(q);
            for &r in ct.c0.residues(i) {
                w.write_bits(r, bits);
            }
        }
        Ok(w.into_bytes())
    }

    /// Exact byte length of the seed-compressed format at `levels`
    /// active primes: one `c0` residue payload instead of two, plus the
    /// 256-bit seed and 32-bit digest.
    pub fn serialized_len_seeded(&self, levels: usize) -> usize {
        let residue_bits: usize = self.primes[..levels].iter().map(|&q| bits_for(q) as usize).sum();
        (8 + 64 + 256 + 32 + self.params.n * residue_bits).div_ceil(8)
    }

    /// Deserializes a ciphertext from the seed-compressed format,
    /// re-expanding `c1` from the transmitted seed. The result is
    /// evaluation-domain (and still seeded, so it can be re-serialized
    /// in either format).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Deserialize`] on an invalid level count, a
    /// byte length that does not match
    /// [`CkksContext::serialized_len_seeded`] for the declared levels
    /// (truncated *or* oversized input — malformed streams never
    /// allocate beyond one fixed-size ciphertext), an invalid scale, or
    /// a seed that fails its integrity digest. Unlike the canonical
    /// format, a corrupted seed *errors* rather than decrypting to
    /// garbage: the digest exists precisely because a flipped seed bit
    /// would re-expand to an unrelated uniform `c1`.
    pub fn deserialize_seeded(&self, bytes: &[u8]) -> Result<CkksCiphertext, FheError> {
        let mut r = BitReader::new(bytes);
        let levels = r.read_bits(8)? as usize;
        if levels == 0 || levels > self.primes.len() {
            return Err(FheError::Deserialize(format!("invalid level count {levels}")));
        }
        let expected = self.serialized_len_seeded(levels);
        if bytes.len() != expected {
            return Err(FheError::Deserialize(format!(
                "{} bytes for a {levels}-level seeded ciphertext, expected {expected}",
                bytes.len()
            )));
        }
        let scale = f64::from_bits(r.read_bits(64)?);
        if !scale.is_finite() || scale <= 0.0 {
            return Err(FheError::Deserialize("invalid scale".into()));
        }
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&r.read_bits(64)?.to_le_bytes());
        }
        if r.read_bits(32)? as u32 != seedexp::seed_check(&seed) {
            return Err(FheError::Deserialize("seed integrity check failed".into()));
        }
        let n = self.params.n;
        let mut c0 = RnsPoly::zero_in(n, levels, Domain::Eval);
        for (i, &q) in self.primes[..levels].iter().enumerate() {
            let bits = bits_for(q);
            for j in 0..n {
                c0.residues_mut(i)[j] = r.read_bits(bits)? % q;
            }
        }
        let mut c1 = RnsPoly::zero_in(n, levels, Domain::Eval);
        rhychee_par::for_each_mut(self.parallelism, c1.residues_all_mut(), |i, row| {
            *row = seedexp::expand_row(&seed, i, self.primes[i], n);
        });
        Ok(CkksCiphertext { c0, c1, scale, c1_seed: Some(seed) })
    }

    /// Exact serialized size in bytes of a ciphertext at `levels` active
    /// primes — the length [`CkksContext::serialize`] produces.
    pub fn serialized_len(&self, levels: usize) -> usize {
        let residue_bits: usize = self.primes[..levels].iter().map(|&q| bits_for(q) as usize).sum();
        (8 + 64 + 2 * self.params.n * residue_bits).div_ceil(8)
    }

    /// Deserializes a ciphertext previously produced by
    /// [`CkksContext::serialize`].
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Deserialize`] on an invalid level count or a
    /// byte length that does not match [`CkksContext::serialized_len`]
    /// for the declared levels (truncated *or* oversized input — a
    /// malformed stream never allocates beyond one fixed-size
    /// ciphertext). Residues `≥ q` are surfaced as corruption (callers
    /// in the channel experiments rely on decrypting *garbage*, not
    /// erroring, for in-range bit flips — exactly as a real system
    /// would).
    pub fn deserialize(&self, bytes: &[u8]) -> Result<CkksCiphertext, FheError> {
        let mut r = BitReader::new(bytes);
        let levels = r.read_bits(8)? as usize;
        if levels == 0 || levels > self.primes.len() {
            return Err(FheError::Deserialize(format!("invalid level count {levels}")));
        }
        let expected = self.serialized_len(levels);
        if bytes.len() != expected {
            return Err(FheError::Deserialize(format!(
                "{} bytes for a {levels}-level ciphertext, expected {expected}",
                bytes.len()
            )));
        }
        let scale = f64::from_bits(r.read_bits(64)?);
        if !scale.is_finite() || scale <= 0.0 {
            return Err(FheError::Deserialize("invalid scale".into()));
        }
        let n = self.params.n;
        let mut polys = Vec::with_capacity(2);
        for _ in 0..2 {
            let mut poly = RnsPoly::zero(n, levels);
            for (i, &q) in self.primes[..levels].iter().enumerate() {
                let bits = bits_for(q);
                for j in 0..n {
                    // Reduce mod q: a flipped bit may push a residue over q.
                    poly.residues_mut(i)[j] = r.read_bits(bits)? % q;
                }
            }
            polys.push(poly);
        }
        let c1 = polys.pop().expect("two polys");
        let c0 = polys.pop().expect("two polys");
        Ok(CkksCiphertext { c0, c1, scale, c1_seed: None })
    }

    fn check_compatible(&self, a: &CkksCiphertext, b: &CkksCiphertext) -> Result<(), FheError> {
        if a.levels() != b.levels() {
            return Err(FheError::LevelMismatch { lhs: a.levels(), rhs: b.levels() });
        }
        if a.c1.domain() != b.c1.domain() {
            // Mixing a resident ciphertext with a deserialized canonical
            // one is a pipeline bug, not a recoverable state: pointwise
            // addition of rows in different bases is meaningless.
            return Err(FheError::InvalidParams(
                "ciphertext domain mismatch (evaluation vs coefficient)".into(),
            ));
        }
        let tol = a.scale.max(b.scale) * 1e-9;
        if (a.scale - b.scale).abs() > tol {
            return Err(FheError::ScaleMismatch { lhs: a.scale, rhs: b.scale });
        }
        Ok(())
    }

    fn encode_poly(&self, values: &[f64]) -> Result<RnsPoly, FheError> {
        if values.len() > self.slot_count() {
            return Err(FheError::PlaintextTooLarge {
                len: values.len(),
                capacity: self.slot_count(),
            });
        }
        let coeffs = self.encoder.encode(values);
        Ok(RnsPoly::from_signed_coeffs(&coeffs, &self.primes))
    }

    pub(crate) fn uniform_poly<R: Rng + ?Sized>(&self, rng: &mut R) -> RnsPoly {
        let n = self.params.n;
        let mut poly = RnsPoly::zero(n, self.primes.len());
        for (i, &q) in self.primes.iter().enumerate() {
            for r in poly.residues_mut(i) {
                *r = rng.gen_range(0..q);
            }
        }
        poly
    }

    /// Truncates a full-level polynomial to the first `levels` primes.
    pub(crate) fn at_level(&self, poly: &RnsPoly, levels: usize) -> RnsPoly {
        let mut out = RnsPoly::zero_in(poly.degree(), levels, poly.domain());
        for i in 0..levels {
            out.residues_mut(i).copy_from_slice(poly.residues(i));
        }
        out
    }

    /// Transforms every residue row into the evaluation domain in place.
    pub(crate) fn forward_rows(&self, poly: &mut RnsPoly) {
        debug_assert_eq!(poly.domain(), Domain::Coeff);
        rhychee_par::for_each_mut(self.parallelism, poly.residues_all_mut(), |i, row| {
            self.ntt[i].forward(row);
        });
        poly.set_domain(Domain::Eval);
    }

    /// Transforms every residue row back into the coefficient domain in
    /// place.
    pub(crate) fn inverse_rows(&self, poly: &mut RnsPoly) {
        debug_assert_eq!(poly.domain(), Domain::Eval);
        rhychee_par::for_each_mut(self.parallelism, poly.residues_all_mut(), |i, row| {
            self.ntt[i].inverse(row);
        });
        poly.set_domain(Domain::Coeff);
    }

    /// Evaluation-domain copy of `poly` (no-op clone if already there).
    pub(crate) fn to_eval(&self, poly: &RnsPoly) -> RnsPoly {
        let mut out = poly.clone();
        if out.domain() == Domain::Coeff {
            self.forward_rows(&mut out);
        }
        out
    }

    /// Coefficient-domain copy of `poly` (no-op clone if already there).
    pub(crate) fn to_coeff(&self, poly: &RnsPoly) -> RnsPoly {
        let mut out = poly.clone();
        if out.domain() == Domain::Eval {
            self.inverse_rows(&mut out);
        }
        out
    }

    /// Pointwise product of two evaluation-domain polynomials.
    fn pointwise_mul(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        debug_assert_eq!(a.domain(), Domain::Eval);
        debug_assert_eq!(b.domain(), Domain::Eval);
        let levels = a.levels().min(b.levels());
        let mut out = RnsPoly::zero_in(a.degree(), levels, Domain::Eval);
        rhychee_par::for_each_mut(self.parallelism, out.residues_all_mut(), |i, row| {
            let q = self.primes[i];
            for ((o, &x), &y) in row.iter_mut().zip(a.residues(i)).zip(b.residues(i)) {
                *o = mul_mod(x, y, q);
            }
        });
        out
    }

    /// Negacyclic product over the first `levels` primes (coefficient-
    /// domain operands and result).
    pub(crate) fn poly_mul_at(&self, a: &RnsPoly, b: &RnsPoly, levels: usize) -> RnsPoly {
        debug_assert_eq!(a.domain(), Domain::Coeff);
        debug_assert_eq!(b.domain(), Domain::Coeff);
        let n = self.params.n;
        let mut out = RnsPoly::zero(n, levels);
        // Each RNS prime is an independent negacyclic product; split
        // them across the pool. Row `i` is written by exactly one task,
        // so the result is bit-identical for every degree. `a`'s forward
        // transform runs directly in the output row and `b`'s in a
        // recycled scratch row, keeping the loop allocation-free.
        rhychee_par::for_each_mut(self.parallelism, out.residues_all_mut(), |i, row| {
            let table = &self.ntt[i];
            let q = self.primes[i];
            row.copy_from_slice(a.residues(i));
            table.forward(row);
            scratch::with_row(n, |fb| {
                fb.copy_from_slice(b.residues(i));
                table.forward(fb);
                for (x, y) in row.iter_mut().zip(fb.iter()) {
                    *x = mul_mod(*x, *y, q);
                }
            });
            table.inverse(row);
        });
        out
    }

    fn poly_mul(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.poly_mul_at(a, b, self.primes.len())
    }
}

/// Reduces signed coefficients into `[0, q)`, writing into `out`
/// (the loop body of [`RnsPoly::from_signed_coeffs`], row-at-a-time so
/// fused per-prime kernels skip the intermediate polynomial).
fn reduce_signed_into(coeffs: &[i64], q: u64, out: &mut [u64]) {
    for (o, &c) in out.iter_mut().zip(coeffs) {
        *o = ((c % q as i64 + q as i64) % q as i64) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy_setup() -> (CkksContext, CkksSecretKey, CkksPublicKey, StdRng) {
        let ctx = CkksContext::new(CkksParams::toy()).expect("valid params");
        let mut rng = StdRng::seed_from_u64(42);
        let (sk, pk) = ctx.generate_keys(&mut rng);
        (ctx, sk, pk, rng)
    }

    fn assert_close(actual: &[f64], expected: &[f64], tol: f64) {
        for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
            assert!((a - e).abs() < tol, "slot {i}: {a} vs {e} (tol {tol})");
        }
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (ctx, sk, pk, mut rng) = toy_setup();
        let values: Vec<f64> = (0..ctx.slot_count()).map(|i| (i as f64 * 0.1).sin()).collect();
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let back = ctx.decrypt(&sk, &ct);
        assert_close(&back[..values.len()], &values, 1e-4);
    }

    #[test]
    fn symmetric_encryption_round_trip() {
        let (ctx, sk, _, mut rng) = toy_setup();
        let values = vec![3.25, -1.5, 0.0, 99.0];
        let ct = ctx.encrypt_symmetric(&sk, &values, &mut rng).expect("encrypt");
        let back = ctx.decrypt(&sk, &ct);
        assert_close(&back[..4], &values, 1e-4);
    }

    #[test]
    fn encrypt_symmetric_into_is_bit_identical() {
        let (ctx, sk, _, mut rng) = toy_setup();
        let values: Vec<f64> = (0..ctx.slot_count()).map(|i| (i as f64 * 0.3).cos()).collect();
        let noise = ctx.sample_symmetric_noise(&mut rng);
        let reference = ctx.encrypt_symmetric_with_noise(&sk, &values, &noise).expect("encrypt");
        let mut arena = CkksEncryptArena::new();
        let mut out = ctx.zero_ciphertext();
        ctx.encrypt_symmetric_with_noise_into(&sk, &values, &noise, &mut arena, &mut out)
            .expect("encrypt into");
        assert_eq!(out.c0, reference.c0);
        assert_eq!(out.c1, reference.c1);
        assert_eq!(out.scale, reference.scale);
        assert_eq!(out.c1_seed, reference.c1_seed);
    }

    #[test]
    fn encrypt_symmetric_into_reuses_buffers_across_messages() {
        let (ctx, sk, _, mut rng) = toy_setup();
        let mut arena = CkksEncryptArena::new();
        let mut out = ctx.zero_ciphertext();
        let mut noise = CkksSymmetricNoise::default();
        for round in 0..3 {
            let values: Vec<f64> = (0..4).map(|i| (round * 10 + i) as f64).collect();
            ctx.sample_symmetric_noise_into(&mut rng, &mut noise);
            ctx.encrypt_symmetric_with_noise_into(&sk, &values, &noise, &mut arena, &mut out)
                .expect("encrypt into");
            let back = ctx.decrypt(&sk, &out);
            assert_close(&back[..4], &values, 1e-4);
        }
    }

    #[test]
    fn sample_symmetric_noise_into_matches_owned_sampler() {
        let (ctx, _, _, _) = toy_setup();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let owned = ctx.sample_symmetric_noise(&mut a);
        let mut reused = CkksSymmetricNoise::default();
        ctx.sample_symmetric_noise_into(&mut b, &mut reused);
        assert_eq!(owned.seed, reused.seed);
        assert_eq!(owned.e, reused.e);
    }

    #[test]
    fn homomorphic_addition() {
        let (ctx, sk, pk, mut rng) = toy_setup();
        let x = vec![1.0, 2.0, -3.0];
        let y = vec![10.0, -20.0, 30.0];
        let cx = ctx.encrypt(&pk, &x, &mut rng).expect("encrypt");
        let cy = ctx.encrypt(&pk, &y, &mut rng).expect("encrypt");
        let sum = ctx.add(&cx, &cy).expect("add");
        let back = ctx.decrypt(&sk, &sum);
        assert_close(&back[..3], &[11.0, -18.0, 27.0], 1e-3);
    }

    #[test]
    fn homomorphic_subtraction() {
        let (ctx, sk, pk, mut rng) = toy_setup();
        let cx = ctx.encrypt(&pk, &[5.0, 7.0], &mut rng).expect("encrypt");
        let cy = ctx.encrypt(&pk, &[2.0, 10.0], &mut rng).expect("encrypt");
        let diff = ctx.sub(&cx, &cy).expect("sub");
        let back = ctx.decrypt(&sk, &diff);
        assert_close(&back[..2], &[3.0, -3.0], 1e-3);
    }

    #[test]
    fn add_assign_accumulates_many() {
        let (ctx, sk, pk, mut rng) = toy_setup();
        let clients = 10;
        let mut acc = ctx.encrypt(&pk, &[1.0, -1.0], &mut rng).expect("encrypt");
        for _ in 1..clients {
            let ct = ctx.encrypt(&pk, &[1.0, -1.0], &mut rng).expect("encrypt");
            ctx.add_assign(&mut acc, &ct).expect("add_assign");
        }
        let back = ctx.decrypt(&sk, &acc);
        assert_close(&back[..2], &[clients as f64, -(clients as f64)], 1e-2);
    }

    #[test]
    fn scalar_multiplication_and_rescale() {
        let (ctx, sk, pk, mut rng) = toy_setup();
        let x = vec![4.0, -8.0, 0.5];
        let ct = ctx.encrypt(&pk, &x, &mut rng).expect("encrypt");
        let scaled = ctx.mul_scalar(&ct, 0.1);
        // Without rescale the scale is squared but decryption still works.
        let back = ctx.decrypt(&sk, &scaled);
        assert_close(&back[..3], &[0.4, -0.8, 0.05], 1e-3);
        // With rescale the level drops and the result matches too.
        let rescaled = ctx.rescale(&scaled).expect("rescale");
        assert_eq!(rescaled.levels(), ct.levels() - 1);
        let back = ctx.decrypt(&sk, &rescaled);
        assert_close(&back[..3], &[0.4, -0.8, 0.05], 1e-3);
    }

    #[test]
    fn federated_average_pattern() {
        // HomAvg = HomMul(Σ ct_i, 1/P): the exact Eq. 2 pipeline.
        let (ctx, sk, pk, mut rng) = toy_setup();
        let p = 5usize;
        let models: Vec<Vec<f64>> =
            (0..p).map(|c| (0..8).map(|j| (c * 8 + j) as f64 / 10.0).collect()).collect();
        let mut acc = ctx.encrypt(&pk, &models[0], &mut rng).expect("encrypt");
        for m in &models[1..] {
            let ct = ctx.encrypt(&pk, m, &mut rng).expect("encrypt");
            ctx.add_assign(&mut acc, &ct).expect("add");
        }
        let avg_ct = ctx.mul_scalar(&acc, 1.0 / p as f64);
        let back = ctx.decrypt(&sk, &avg_ct);
        let expected: Vec<f64> =
            (0..8).map(|j| models.iter().map(|m| m[j]).sum::<f64>() / p as f64).collect();
        assert_close(&back[..8], &expected, 1e-3);
    }

    #[test]
    fn plaintext_vector_multiplication() {
        let (ctx, sk, pk, mut rng) = toy_setup();
        let x = vec![2.0, 3.0, -4.0];
        let w = vec![0.5, -1.0, 0.25];
        let ct = ctx.encrypt(&pk, &x, &mut rng).expect("encrypt");
        let prod = ctx.mul_plain_vec(&ct, &w).expect("mul");
        let back = ctx.decrypt(&sk, &prod);
        assert_close(&back[..3], &[1.0, -3.0, -1.0], 1e-3);
    }

    #[test]
    fn level_and_scale_mismatch_rejected() {
        let (ctx, _, pk, mut rng) = toy_setup();
        let a = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
        let b = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
        let b_low = ctx.rescale(&ctx.mul_scalar(&b, 1.0)).expect("rescale");
        assert!(matches!(ctx.add(&a, &b_low), Err(FheError::LevelMismatch { .. })));
        let b_scaled = ctx.mul_scalar(&b, 2.0);
        assert!(matches!(ctx.add(&a, &b_scaled), Err(FheError::ScaleMismatch { .. })));
    }

    #[test]
    fn rescale_at_bottom_errors() {
        let (ctx, _, pk, mut rng) = toy_setup();
        let ct = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
        let low = ctx.rescale(&ctx.mul_scalar(&ct, 1.0)).expect("first rescale");
        assert_eq!(low.levels(), 1);
        assert!(matches!(ctx.rescale(&low), Err(FheError::LevelExhausted)));
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let (ctx, _, pk, mut rng) = toy_setup();
        let too_big = vec![0.0; ctx.slot_count() + 1];
        assert!(matches!(
            ctx.encrypt(&pk, &too_big, &mut rng),
            Err(FheError::PlaintextTooLarge { .. })
        ));
    }

    #[test]
    fn serialization_round_trip() {
        let (ctx, sk, pk, mut rng) = toy_setup();
        let values = vec![1.25, -2.5, 3.75];
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let bytes = ctx.serialize(&ct);
        let back = ctx.deserialize(&bytes).expect("deserialize");
        let dec = ctx.decrypt(&sk, &back);
        assert_close(&dec[..3], &values, 1e-4);
    }

    #[test]
    fn serialized_size_tracks_formula() {
        let (ctx, _, pk, mut rng) = toy_setup();
        let ct = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
        let bytes = ctx.serialize(&ct);
        // 2 polys * N coeffs * (50 + 40) bits + 72-bit header.
        let expected_bits = 2 * 512 * (50 + 40) + 72;
        assert_eq!(bytes.len(), (expected_bits as usize).div_ceil(8));
    }

    #[test]
    fn corrupted_ciphertext_decrypts_to_garbage() {
        // A single bit flip in the payload must not error out, but must
        // destroy the plaintext (paper §IV-C motivation).
        let (ctx, sk, pk, mut rng) = toy_setup();
        let values = vec![1.0; 16];
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let mut bytes = ctx.serialize(&ct);
        let target = bytes.len() / 2;
        bytes[target] ^= 0x10;
        let corrupted = ctx.deserialize(&bytes).expect("still parseable");
        let dec = ctx.decrypt(&sk, &corrupted);
        let max_err =
            dec[..16].iter().zip(&values).map(|(d, v)| (d - v).abs()).fold(0.0f64, f64::max);
        assert!(max_err > 1.0, "bit flip should corrupt decryption, err = {max_err}");
    }

    #[test]
    fn deserialize_rejects_truncation() {
        let (ctx, _, pk, mut rng) = toy_setup();
        let ct = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
        let bytes = ctx.serialize(&ct);
        assert!(ctx.deserialize(&bytes[..bytes.len() / 2]).is_err());
        assert!(ctx.deserialize(&bytes[..bytes.len() - 1]).is_err());
        assert!(ctx.deserialize(&[]).is_err());
    }

    #[test]
    fn deserialize_rejects_oversized_and_bad_levels() {
        let (ctx, _, pk, mut rng) = toy_setup();
        let ct = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
        let mut bytes = ctx.serialize(&ct);
        assert_eq!(bytes.len(), ctx.serialized_len(ct.levels()));
        // Trailing garbage must be rejected, not silently ignored.
        bytes.push(0);
        assert!(ctx.deserialize(&bytes).is_err());
        bytes.pop();
        // A corrupted level byte (e.g. 255 levels) must not drive a huge
        // allocation or a bogus parse.
        bytes[0] = 255;
        assert!(ctx.deserialize(&bytes).is_err());
        bytes[0] = 0;
        assert!(ctx.deserialize(&bytes).is_err());
    }

    #[test]
    fn parallel_context_is_bit_identical_to_sequential() {
        let seq = CkksContext::new(CkksParams::toy()).expect("valid");
        for par in [Parallelism::Fixed(2), Parallelism::Fixed(4), Parallelism::Auto] {
            let pctx = CkksContext::with_parallelism(CkksParams::toy(), par).expect("valid");
            let mut rng_a = StdRng::seed_from_u64(77);
            let mut rng_b = StdRng::seed_from_u64(77);
            let (sk_a, pk_a) = seq.generate_keys(&mut rng_a);
            let (sk_b, pk_b) = pctx.generate_keys(&mut rng_b);
            let values: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos()).collect();
            let ct_a = seq.encrypt(&pk_a, &values, &mut rng_a).expect("encrypt");
            let ct_b = pctx.encrypt(&pk_b, &values, &mut rng_b).expect("encrypt");
            assert_eq!(seq.serialize(&ct_a), pctx.serialize(&ct_b), "{par}: ciphertexts differ");
            let rs_a = seq.rescale(&seq.mul_scalar(&ct_a, 0.5)).expect("rescale");
            let rs_b = pctx.rescale(&pctx.mul_scalar(&ct_b, 0.5)).expect("rescale");
            assert_eq!(seq.serialize(&rs_a), pctx.serialize(&rs_b), "{par}: rescale differs");
            let dec_a = seq.decrypt(&sk_a, &ct_a);
            let dec_b = pctx.decrypt(&sk_b, &ct_b);
            assert!(
                dec_a.iter().zip(&dec_b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{par}: decryptions differ"
            );
        }
    }

    #[test]
    fn encrypt_with_noise_matches_encrypt() {
        let (ctx, _, pk, _) = toy_setup();
        let values = vec![1.5, -2.25, 8.0];
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let direct = ctx.encrypt(&pk, &values, &mut rng_a).expect("encrypt");
        let noise = ctx.sample_encrypt_noise(&mut rng_b);
        let via_noise = ctx.encrypt_with_noise(&pk, &values, &noise).expect("encrypt");
        assert_eq!(ctx.serialize(&direct), ctx.serialize(&via_noise));
    }

    #[test]
    fn distinct_primes_for_repeated_bit_sizes() {
        let ctx = CkksContext::new(CkksParams::toy()).expect("valid");
        let primes = ctx.primes();
        let mut sorted = primes.to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), primes.len(), "primes must be distinct");
    }

    #[test]
    fn resident_and_reference_encrypt_serialize_identically() {
        // The NTT is a per-prime bijection, so commuting it through the
        // linear encryption algebra must not change a single canonical
        // byte — the property that lets the resident pipeline ship
        // without perturbing any downstream consumer.
        let (ctx, sk, pk, _) = toy_setup();
        let mut ref_ctx = CkksContext::new(CkksParams::toy()).expect("valid");
        ref_ctx.set_eval_resident(false);
        let values: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let resident = ctx.encrypt(&pk, &values, &mut rng_a).expect("encrypt");
        let reference = ref_ctx.encrypt(&pk, &values, &mut rng_b).expect("encrypt");
        assert_eq!(ctx.serialize(&resident), ref_ctx.serialize(&reference));
        let dec_a = ctx.decrypt(&sk, &resident);
        let dec_b = ref_ctx.decrypt(&sk, &reference);
        assert!(dec_a.iter().zip(&dec_b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn seeded_serialization_round_trip_and_size() {
        let (ctx, sk, _, mut rng) = toy_setup();
        let values = vec![1.25, -2.5, 3.75];
        let ct = ctx.encrypt_symmetric(&sk, &values, &mut rng).expect("encrypt");
        assert!(ct.is_seeded());
        let bytes = ctx.serialize_seeded(&ct).expect("seeded serialize");
        // Header (8 levels + 64 scale + 256 seed + 32 check bits) plus
        // one packed component instead of two.
        let expected_bits = 8 + 64 + 256 + 32 + 512 * (50 + 40);
        assert_eq!(bytes.len(), (expected_bits as usize).div_ceil(8));
        assert_eq!(bytes.len(), ctx.serialized_len_seeded(ct.levels()));
        // ~2x smaller than the canonical format of the very same ct:
        // twice the seeded size exceeds the canonical size only by the
        // seed + digest header (36 bytes, doubled).
        let canonical = ctx.serialize(&ct);
        assert!(bytes.len() * 2 < canonical.len() + 128, "{} vs {}", bytes.len(), canonical.len());
        let back = ctx.deserialize_seeded(&bytes).expect("deserialize");
        assert!(back.is_seeded(), "re-expansion keeps the seed");
        let dec = ctx.decrypt(&sk, &back);
        assert_close(&dec[..3], &values, 1e-4);
        // The canonical serialization of the round-tripped ciphertext is
        // bit-identical to the original's: expansion is deterministic.
        assert_eq!(ctx.serialize(&back), canonical);
    }

    #[test]
    fn seeded_deserialize_rejects_corruption_without_overallocating() {
        let (ctx, sk, _, mut rng) = toy_setup();
        let ct = ctx.encrypt_symmetric(&sk, &[1.0; 8], &mut rng).expect("encrypt");
        let bytes = ctx.serialize_seeded(&ct).expect("serialize");
        // Truncated, oversized, and empty inputs error cleanly.
        assert!(ctx.deserialize_seeded(&bytes[..bytes.len() / 2]).is_err());
        assert!(ctx.deserialize_seeded(&bytes[..bytes.len() - 1]).is_err());
        assert!(ctx.deserialize_seeded(&[]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(ctx.deserialize_seeded(&padded).is_err());
        // A corrupted level byte must not drive a huge allocation.
        let mut bad = bytes.clone();
        bad[0] = 255;
        assert!(ctx.deserialize_seeded(&bad).is_err());
        bad[0] = 0;
        assert!(ctx.deserialize_seeded(&bad).is_err());
        // A flipped seed bit re-expands to an unrelated uniform c1; the
        // integrity digest turns that into an error instead of silent
        // garbage (unlike the canonical channel-noise format).
        for byte in [9usize, 20, 40] {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x04;
            assert!(ctx.deserialize_seeded(&flipped).is_err(), "seed flip at byte {byte}");
        }
    }

    #[test]
    fn only_fresh_symmetric_ciphertexts_are_seeded() {
        let (ctx, sk, pk, mut rng) = toy_setup();
        let pub_ct = ctx.encrypt(&pk, &[1.0], &mut rng).expect("encrypt");
        assert!(!pub_ct.is_seeded());
        assert!(matches!(ctx.serialize_seeded(&pub_ct), Err(FheError::Serialize(_))));
        // Any homomorphic operation invalidates the seed: c1 is no
        // longer the seed-expanded polynomial.
        let a = ctx.encrypt_symmetric(&sk, &[1.0], &mut rng).expect("encrypt");
        let b = ctx.encrypt_symmetric(&sk, &[2.0], &mut rng).expect("encrypt");
        assert!(!ctx.add(&a, &b).expect("add").is_seeded());
        assert!(!ctx.mul_scalar(&a, 0.5).is_seeded());
        assert!(!ctx.rescale(&ctx.mul_scalar(&a, 0.5)).expect("rescale").is_seeded());
        let mut acc = a.clone();
        ctx.add_assign(&mut acc, &b).expect("add_assign");
        assert!(!acc.is_seeded());
    }

    #[test]
    fn serialization_round_trips_at_reduced_levels() {
        // Post-rescale ciphertexts live at a lower level; both wire
        // formats must agree with the level-aware length formulas and
        // round-trip, whatever domain the ciphertext is in.
        let (ctx, sk, pk, mut rng) = toy_setup();
        let values = vec![2.0, -4.0, 0.25];
        let ct = ctx.encrypt(&pk, &values, &mut rng).expect("encrypt");
        let dropped = ctx.rescale(&ctx.mul_scalar(&ct, 0.5)).expect("rescale");
        assert_eq!(dropped.levels(), 1);
        let bytes = ctx.serialize(&dropped);
        assert_eq!(bytes.len(), ctx.serialized_len(1));
        assert!(bytes.len() < ctx.serialized_len(2));
        let back = ctx.deserialize(&bytes).expect("deserialize");
        assert_eq!(back.levels(), 1);
        let dec = ctx.decrypt(&sk, &back);
        assert_close(&dec[..3], &[1.0, -2.0, 0.125], 1e-3);
        // The same rescale through the coefficient-domain reference
        // produces the same canonical bytes.
        let mut ref_ctx = CkksContext::new(CkksParams::toy()).expect("valid");
        ref_ctx.set_eval_resident(false);
        let coeff_ct = ref_ctx.deserialize(&ctx.serialize(&ct)).expect("to coeff");
        let ref_dropped = ref_ctx.rescale(&ref_ctx.mul_scalar(&coeff_ct, 0.5)).expect("rescale");
        assert_eq!(ref_ctx.serialize(&ref_dropped), bytes);
    }
}
