//! CKKS canonical-embedding encoder.
//!
//! Maps vectors of up to `N/2` real values into integer polynomials of
//! `Z[X]/(X^N + 1)` and back. Slot `j` corresponds to evaluation of the
//! polynomial at the primitive 2N-th root `ξ^{4j+1}`; conjugate symmetry
//! makes the coefficients real.
//!
//! The transform factorizes as: twist coefficients by `ξ^l`, fold the two
//! halves (using `ξ^{N/2} = i`), then a standard complex FFT of size `N/2`
//! — giving exact `O(N log N)` encode/decode.

use std::f64::consts::PI;

use rhychee_telemetry as telemetry;

/// Minimal complex number (the crate avoids external numeric deps).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from rectangular parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    fn add(self, o: Complex) -> Self {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }

    fn sub(self, o: Complex) -> Self {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }

    fn mul(self, o: Complex) -> Self {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

/// In-place iterative radix-2 complex FFT.
///
/// `invert = true` computes the inverse transform including the `1/n`
/// scaling.
///
/// # Panics
///
/// Panics if `a.len()` is not a power of two.
fn fft(a: &mut [Complex], invert: bool) {
    let n = a.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let log_n = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - log_n);
        if (j as usize) > i {
            a.swap(i, j as usize);
        }
    }
    let sign = if invert { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for chunk in a.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *x;
                let v = y.mul(w);
                *x = u.add(v);
                *y = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if invert {
        let inv_n = 1.0 / n as f64;
        for x in a.iter_mut() {
            x.re *= inv_n;
            x.im *= inv_n;
        }
    }
}

/// Encoder/decoder between real slot vectors and integer coefficients.
///
/// # Examples
///
/// ```
/// use rhychee_fhe::ckks::CkksEncoder;
///
/// let enc = CkksEncoder::new(64, 1u64 << 30);
/// let values = vec![1.5, -2.25, 3.0];
/// let coeffs = enc.encode(&values);
/// let back = enc.decode(&coeffs.iter().map(|&c| c as f64).collect::<Vec<_>>());
/// assert!((back[0] - 1.5).abs() < 1e-6);
/// assert!((back[1] + 2.25).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct CkksEncoder {
    n: usize,
    scale: f64,
    /// ξ^l for l in 0..N/2 where ξ = e^{iπ/N} (primitive 2N-th root).
    twist: Vec<Complex>,
    /// ξ^{-l} for l in 0..N/2.
    twist_inv: Vec<Complex>,
}

impl CkksEncoder {
    /// Creates an encoder for ring degree `n` at the given scale Δ.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or less than 4.
    pub fn new(n: usize, scale: u64) -> Self {
        assert!(n.is_power_of_two() && n >= 4, "ring degree must be a power of two ≥ 4");
        let half = n / 2;
        let base = PI / n as f64; // angle of ξ
        let twist = (0..half).map(|l| Complex::from_angle(base * l as f64)).collect();
        let twist_inv = (0..half).map(|l| Complex::from_angle(-base * l as f64)).collect();
        CkksEncoder { n, scale: scale as f64, twist, twist_inv }
    }

    /// Number of usable slots (`N/2`).
    pub fn slot_count(&self) -> usize {
        self.n / 2
    }

    /// The encoding scale Δ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Encodes up to `N/2` real values into `N` scaled integer coefficients.
    ///
    /// Unused slots are zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` values are supplied.
    pub fn encode(&self, values: &[f64]) -> Vec<i64> {
        let mut z = Vec::new();
        let mut coeffs = Vec::new();
        self.encode_into(values, &mut z, &mut coeffs);
        coeffs
    }

    /// [`CkksEncoder::encode`] into caller-owned buffers: `z` is FFT
    /// scratch (resized to `N/2`), `coeffs` receives the `N` scaled
    /// integer coefficients. Neither allocates once warm, making the
    /// steady-state encode path allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` values are supplied.
    pub fn encode_into(&self, values: &[f64], z: &mut Vec<Complex>, coeffs: &mut Vec<i64>) {
        let half = self.n / 2;
        assert!(values.len() <= half, "too many values for {} slots", half);
        let _t = telemetry::timer("fhe.ckks.encode");
        z.clear();
        z.extend(values.iter().map(|&v| Complex::new(v, 0.0)));
        z.resize(half, Complex::default());
        // Inverse FFT recovers the folded, twisted coefficient vector d.
        fft(z, true);
        // Untwist: c_l = Re(d_l ξ^{-l}), c_{l+N/2} = Im(d_l ξ^{-l}).
        coeffs.clear();
        coeffs.resize(self.n, 0);
        for (l, d) in z.iter().enumerate() {
            let u = d.mul(self.twist_inv[l]);
            coeffs[l] = (u.re * self.scale).round() as i64;
            coeffs[l + half] = (u.im * self.scale).round() as i64;
        }
    }

    /// Decodes `N` (already descaled-by-Δ-free) coefficient values into
    /// `N/2` real slot values.
    ///
    /// The caller passes raw centered coefficients as `f64`; this routine
    /// divides by the encoder scale.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn decode(&self, coeffs: &[f64]) -> Vec<f64> {
        self.decode_with_scale(coeffs, self.scale)
    }

    /// Decodes with an explicit scale (used after scale-changing homomorphic
    /// operations such as plaintext multiplication without rescale).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn decode_with_scale(&self, coeffs: &[f64], scale: f64) -> Vec<f64> {
        assert_eq!(coeffs.len(), self.n, "coefficient vector must have length N");
        let _t = telemetry::timer("fhe.ckks.decode");
        let half = self.n / 2;
        // Twist and fold: d_l = (c_l + i c_{l+N/2}) ξ^l.
        let mut z: Vec<Complex> = (0..half)
            .map(|l| Complex::new(coeffs[l], coeffs[l + half]).mul(self.twist[l]))
            .collect();
        fft(&mut z, false);
        z.iter().map(|c| c.re / scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn round_trip(encoder: &CkksEncoder, values: &[f64]) -> Vec<f64> {
        let coeffs = encoder.encode(values);
        let as_f64: Vec<f64> = coeffs.iter().map(|&c| c as f64).collect();
        encoder.decode(&as_f64)
    }

    #[test]
    fn fft_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let original: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut a = original.clone();
        fft(&mut a, false);
        fft(&mut a, true);
        for (x, y) in a.iter().zip(&original) {
            assert!((x.re - y.re).abs() < 1e-12);
            assert!((x.im - y.im).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut a = vec![Complex::default(); 8];
        a[0] = Complex::new(1.0, 0.0);
        fft(&mut a, false);
        for x in &a {
            assert!((x.re - 1.0).abs() < 1e-12 && x.im.abs() < 1e-12);
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let enc = CkksEncoder::new(256, 1u64 << 40);
        let values: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let back = round_trip(&enc, &values);
        for (v, b) in values.iter().zip(&back) {
            assert!((v - b).abs() < 1e-9, "{v} vs {b}");
        }
    }

    #[test]
    fn partial_slot_fill_pads_with_zero() {
        let enc = CkksEncoder::new(64, 1u64 << 30);
        let back = round_trip(&enc, &[1.0, 2.0, 3.0]);
        assert_eq!(back.len(), 32);
        assert!((back[0] - 1.0).abs() < 1e-6);
        assert!((back[2] - 3.0).abs() < 1e-6);
        for b in &back[3..] {
            assert!(b.abs() < 1e-6);
        }
    }

    #[test]
    fn encoding_is_additive() {
        // encode(x) + encode(y) decodes to x + y (ring homomorphism on +).
        let enc = CkksEncoder::new(128, 1u64 << 35);
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f64> = (0..64).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let y: Vec<f64> = (0..64).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let cx = enc.encode(&x);
        let cy = enc.encode(&y);
        let sum: Vec<f64> = cx.iter().zip(&cy).map(|(&a, &b)| (a + b) as f64).collect();
        let back = enc.decode(&sum);
        for i in 0..64 {
            assert!((back[i] - (x[i] + y[i])).abs() < 1e-8);
        }
    }

    #[test]
    fn scalar_coefficient_multiplication_acts_slotwise() {
        // Multiplying all coefficients by an integer k scales every slot by k.
        let enc = CkksEncoder::new(128, 1u64 << 30);
        let x: Vec<f64> = (0..64).map(|i| i as f64 / 7.0).collect();
        let cx = enc.encode(&x);
        let scaled: Vec<f64> = cx.iter().map(|&c| (c * 3) as f64).collect();
        let back = enc.decode(&scaled);
        for i in 0..64 {
            assert!((back[i] - 3.0 * x[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn larger_scale_gives_smaller_error() {
        let coarse = CkksEncoder::new(256, 1u64 << 20);
        let fine = CkksEncoder::new(256, 1u64 << 45);
        let values: Vec<f64> = (0..128).map(|i| (i as f64).cos()).collect();
        let err = |enc: &CkksEncoder| -> f64 {
            round_trip(enc, &values)
                .iter()
                .zip(&values)
                .map(|(b, v)| (b - v).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&fine) < err(&coarse));
    }

    #[test]
    #[should_panic(expected = "too many values")]
    fn rejects_overfull_input() {
        let enc = CkksEncoder::new(64, 1u64 << 30);
        let _ = enc.encode(&vec![0.0; 33]);
    }

    #[test]
    fn decode_with_explicit_scale() {
        let enc = CkksEncoder::new(64, 1u64 << 20);
        let x = vec![2.0, -4.0];
        let cx = enc.encode(&x);
        // Simulate a scale-squaring operation: multiply coefficients by Δ·3.
        let delta = 1i64 << 20;
        let scaled: Vec<f64> = cx.iter().map(|&c| (c as f64) * (delta as f64) * 3.0).collect();
        let back = enc.decode_with_scale(&scaled, (delta as f64) * (delta as f64));
        assert!((back[0] - 6.0).abs() < 1e-4);
        assert!((back[1] + 12.0).abs() < 1e-4);
    }
}
