//! Thread-local scratch buffers for the NTT hot paths.
//!
//! `poly_mul_at`, evaluation-domain rescale, the coefficient-domain
//! decrypt path and canonical serialization all need a temporary row of
//! `N` limbs per prime. Allocating those per call dominated the small-N
//! profile, so buffers are recycled through a per-thread free list
//! instead. The pool is thread-local rather than per-context because
//! `rhychee-par` fans the per-prime work out across pool threads — a
//! shared locked arena would serialize exactly the code the pool is
//! trying to parallelize, while a thread-local list is contention-free
//! and still bounds live buffers by (threads × nesting depth).
//!
//! Buffer contents are *not* zeroed on reuse; every caller overwrites
//! the full row (`copy_from_slice`) before reading it.
//!
//! A process-wide relaxed counter tracks the bytes retained across all
//! thread pools (checked-out rows included), feeding the `fhe.scratch`
//! entry of the memory observability plane's per-subsystem breakdown.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes of row capacity owned by the scratch system across every
/// thread, including rows currently checked out by `with_row`.
static POOL_BYTES: AtomicU64 = AtomicU64::new(0);

/// A thread's free list; its `Drop` returns the thread's retained bytes
/// to the global counter when the thread exits.
struct Pool(Vec<Vec<u64>>);

impl Drop for Pool {
    fn drop(&mut self) {
        let held: u64 = self.0.iter().map(|b| 8 * b.capacity() as u64).sum();
        POOL_BYTES.fetch_sub(held, Ordering::Relaxed);
    }
}

thread_local! {
    static POOL: RefCell<Pool> = const { RefCell::new(Pool(Vec::new())) };
}

/// Bytes currently retained by the scratch-row pools, process-wide.
pub(crate) fn pooled_bytes() -> u64 {
    POOL_BYTES.load(Ordering::Relaxed)
}

/// Runs `f` with a scratch row of exactly `n` limbs, recycling the
/// backing allocation across calls on the same thread.
///
/// The row's initial contents are unspecified — callers must fully
/// overwrite it before reading. Nested calls are fine; each nesting
/// level pops its own buffer.
pub(crate) fn with_row<R>(n: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    // `try_with`: during thread teardown the pool may already be gone;
    // fall back to a one-shot buffer whose bytes are never retained.
    let popped = POOL.try_with(|p| p.borrow_mut().0.pop()).ok().flatten();
    let tracked = popped.is_some();
    let mut buf = popped.unwrap_or_default();
    let before = buf.capacity();
    buf.resize(n, 0);
    if tracked && buf.capacity() != before {
        // The pop left the counter charged with the old capacity; adjust
        // for the resize so retained bytes stay exact.
        let delta = 8 * (buf.capacity() as i64 - before as i64);
        if delta >= 0 {
            POOL_BYTES.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            POOL_BYTES.fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }
    let out = f(&mut buf);
    let cap = 8 * buf.capacity() as u64;
    let pushed = POOL.try_with(|p| p.borrow_mut().0.push(buf)).is_ok();
    if pushed && !tracked {
        // A freshly allocated buffer entered the pool: charge it once.
        POOL_BYTES.fetch_add(cap, Ordering::Relaxed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_allocation_across_calls() {
        let first = with_row(64, |row| {
            row.fill(7);
            row.as_ptr() as usize
        });
        let second = with_row(64, |row| {
            assert_eq!(row.len(), 64);
            row.as_ptr() as usize
        });
        assert_eq!(first, second, "same thread should recycle the same buffer");
    }

    #[test]
    fn nested_calls_get_distinct_rows() {
        with_row(16, |outer| {
            outer.fill(1);
            with_row(16, |inner| {
                inner.fill(2);
                assert_ne!(outer.as_ptr(), inner.as_ptr());
            });
            assert!(outer.iter().all(|&x| x == 1));
        });
    }

    #[test]
    fn resizes_to_requested_length() {
        with_row(8, |row| assert_eq!(row.len(), 8));
        with_row(32, |row| assert_eq!(row.len(), 32));
        with_row(4, |row| assert_eq!(row.len(), 4));
    }

    #[test]
    fn pool_bytes_track_retained_capacity() {
        // Run on a fresh thread so sibling tests' pools don't interfere
        // with the accounting deltas.
        std::thread::spawn(|| {
            let before = pooled_bytes();
            with_row(128, |_| {});
            let after_first = pooled_bytes();
            assert!(
                after_first >= before + 8 * 128,
                "pool grew by at least one 128-limb row: {before} -> {after_first}"
            );
            // Reuse must not grow the count further.
            with_row(128, |_| {});
            assert_eq!(pooled_bytes(), after_first);
        })
        .join()
        .expect("accounting thread");
        // The spawned thread exited; its retained bytes were returned.
        // (Other test threads may still hold buffers, so only assert the
        // spawned thread's contribution is gone by re-running the cycle.)
        std::thread::spawn(|| {
            let base = pooled_bytes();
            with_row(64, |_| {});
            assert!(pooled_bytes() > base);
        })
        .join()
        .expect("second thread");
    }
}
