//! Thread-local scratch buffers for the NTT hot paths.
//!
//! `poly_mul_at`, evaluation-domain rescale, the coefficient-domain
//! decrypt path and canonical serialization all need a temporary row of
//! `N` limbs per prime. Allocating those per call dominated the small-N
//! profile, so buffers are recycled through a per-thread free list
//! instead. The pool is thread-local rather than per-context because
//! `rhychee-par` fans the per-prime work out across pool threads — a
//! shared locked arena would serialize exactly the code the pool is
//! trying to parallelize, while a thread-local list is contention-free
//! and still bounds live buffers by (threads × nesting depth).
//!
//! Buffer contents are *not* zeroed on reuse; every caller overwrites
//! the full row (`copy_from_slice`) before reading it.

use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a scratch row of exactly `n` limbs, recycling the
/// backing allocation across calls on the same thread.
///
/// The row's initial contents are unspecified — callers must fully
/// overwrite it before reading. Nested calls are fine; each nesting
/// level pops its own buffer.
pub(crate) fn with_row<R>(n: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.resize(n, 0);
    let out = f(&mut buf);
    POOL.with(|p| p.borrow_mut().push(buf));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_allocation_across_calls() {
        let first = with_row(64, |row| {
            row.fill(7);
            row.as_ptr() as usize
        });
        let second = with_row(64, |row| {
            assert_eq!(row.len(), 64);
            row.as_ptr() as usize
        });
        assert_eq!(first, second, "same thread should recycle the same buffer");
    }

    #[test]
    fn nested_calls_get_distinct_rows() {
        with_row(16, |outer| {
            outer.fill(1);
            with_row(16, |inner| {
                inner.fill(2);
                assert_ne!(outer.as_ptr(), inner.as_ptr());
            });
            assert!(outer.iter().all(|&x| x == 1));
        });
    }

    #[test]
    fn resizes_to_requested_length() {
        with_row(8, |row| assert_eq!(row.len(), 8));
        with_row(32, |row| assert_eq!(row.len(), 32));
        with_row(4, |row| assert_eq!(row.len(), 4));
    }
}
