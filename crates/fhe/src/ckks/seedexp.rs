//! Deterministic seeded expansion of uniform polynomials.
//!
//! Symmetric CKKS ciphertexts have `c1 = a` drawn uniformly from `R_q`,
//! so the wire format can ship a 32-byte seed in place of the full
//! residue rows and let the receiver re-expand them. The expansion must
//! be byte-stable forever — a client and server built from different
//! toolchains (or different `rand` crate versions) must derive the same
//! polynomial from the same seed — so the generator here is hand-rolled:
//! splitmix64 to absorb the seed into per-stream state, a
//! xoshiro256\*\* core for the output stream, and mask-and-reject
//! sampling into `[0, q)`. Each `(seed, prime index)` pair gets an
//! independent stream so residue rows can be expanded in any order (or
//! in parallel) with identical results.
//!
//! Rows are expanded directly in the evaluation (NTT) domain: the NTT is
//! a bijection on `Z_q^N`, so a uniform evaluation-domain polynomial is
//! exactly as uniform as a coefficient-domain one, and fresh symmetric
//! ciphertexts never pay a transform for `c1` at all.

/// One round of splitmix64: advances `state` and returns a mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256** stream keyed by `(seed, stream index)`.
pub(crate) struct SeedStream {
    s: [u64; 4],
}

impl SeedStream {
    /// Derives an independent stream from the 32-byte seed and a stream
    /// index (one stream per RNS prime row).
    pub fn new(seed: &[u8; 32], stream: u64) -> Self {
        // Absorb the seed words and the stream index through splitmix64,
        // then squeeze the four state words. splitmix64 is a bijection of
        // its state, so distinct (seed, stream) pairs cannot collapse to
        // the same absorber state.
        let mut st = stream ^ 0xA076_1D64_78BD_642F;
        for chunk in seed.chunks_exact(8) {
            st ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let _ = splitmix64(&mut st);
        }
        let mut s = [0u64; 4];
        for word in s.iter_mut() {
            *word = splitmix64(&mut st);
        }
        // xoshiro256** requires a nonzero state; the squeeze outputs are
        // effectively random, but guard the measure-zero case anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SeedStream { s }
    }

    /// Next 64 output bits (xoshiro256** scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, q)` by masking to `bits_for(q)` bits and
    /// rejecting overshoots (acceptance ≥ 1/2 per draw).
    pub fn uniform_below(&mut self, q: u64) -> u64 {
        debug_assert!(q >= 2);
        let mask = u64::MAX >> (q - 1).leading_zeros();
        loop {
            let v = self.next_u64() & mask;
            if v < q {
                return v;
            }
        }
    }
}

/// Expands residue row `prime_idx` of the seeded uniform polynomial:
/// `n` evaluation-domain points in `[0, q)`.
pub(crate) fn expand_row(seed: &[u8; 32], prime_idx: usize, q: u64, n: usize) -> Vec<u64> {
    let mut out = Vec::new();
    expand_row_into(seed, prime_idx, q, n, &mut out);
    out
}

/// [`expand_row`] into a caller-owned buffer (resized to `n`), reusing
/// its allocation. Draws the exact same stream.
pub(crate) fn expand_row_into(
    seed: &[u8; 32],
    prime_idx: usize,
    q: u64,
    n: usize,
    out: &mut Vec<u64>,
) {
    let mut stream = SeedStream::new(seed, prime_idx as u64);
    out.resize(n, 0);
    for slot in out.iter_mut() {
        *slot = stream.uniform_below(q);
    }
}

/// 32-bit integrity digest of a seed, carried alongside it on the wire.
///
/// A flipped seed bit would otherwise re-expand to an unrelated uniform
/// `c1` and silently decrypt to garbage; the digest turns that into a
/// deserialization *error*, keeping "corruption ⇒ garbage" semantics
/// exclusive to the canonical coefficient format used by the
/// noisy-channel experiments.
pub(crate) fn seed_check(seed: &[u8; 32]) -> u32 {
    let mut st = 0x1B87_3593_3B26_87DAu64;
    for chunk in seed.chunks_exact(8) {
        st ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let _ = splitmix64(&mut st);
    }
    let folded = splitmix64(&mut st);
    (folded ^ (folded >> 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic() {
        let seed = [0xABu8; 32];
        assert_eq!(expand_row(&seed, 0, 65537, 64), expand_row(&seed, 0, 65537, 64));
    }

    #[test]
    fn streams_differ_per_prime_and_seed() {
        let seed = [1u8; 32];
        let mut other = seed;
        other[31] ^= 1;
        let q = (1u64 << 50) - 27;
        assert_ne!(expand_row(&seed, 0, q, 32), expand_row(&seed, 1, q, 32));
        assert_ne!(expand_row(&seed, 0, q, 32), expand_row(&other, 0, q, 32));
    }

    #[test]
    fn outputs_are_in_range_and_cover_high_bits() {
        let seed = [7u8; 32];
        let q = (1u64 << 40) + 1 - (1u64 << 20); // forces rejection loop
        let row = expand_row(&seed, 3, q, 4096);
        assert!(row.iter().all(|&x| x < q));
        assert!(row.iter().any(|&x| x > q / 2), "top half of range never hit");
    }

    #[test]
    fn known_answer_is_stable() {
        // Locks the stream definition: any change to the absorber or the
        // scrambler breaks wire compatibility and must fail loudly.
        let seed: [u8; 32] = core::array::from_fn(|i| i as u8);
        let mut s = SeedStream::new(&seed, 2);
        let first: Vec<u64> = (0..4).map(|_| s.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                9347366695214510375,
                18349720289971276793,
                10545084371879311845,
                3970245312971844173
            ]
        );
    }

    #[test]
    fn seed_check_detects_any_single_byte_flip() {
        let seed = [0x5Au8; 32];
        let base = seed_check(&seed);
        for i in 0..32 {
            let mut corrupted = seed;
            corrupted[i] ^= 0x10;
            assert_ne!(seed_check(&corrupted), base, "flip at byte {i} undetected");
        }
    }
}
