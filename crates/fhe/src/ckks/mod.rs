//! RNS-CKKS: approximate homomorphic encryption over the reals.
//!
//! The SIMD-style scheme of Cheon–Kim–Kim–Song, in its residue-number-
//! system variant: a ciphertext packs up to `N/2` real values and supports
//! slot-wise addition and plaintext multiplication — exactly the operation
//! set federated averaging needs.
//!
//! Module layout:
//!
//! * [`modarith`] — scalar arithmetic mod word-sized NTT primes
//! * [`ntt`] — negacyclic number-theoretic transform (+ global table cache)
//! * [`rns`] — domain-tagged RNS polynomials and CRT reconstruction
//! * [`encoder`] — canonical-embedding slot encoder
//! * [`cipher`] — context, keys, ciphertexts, homomorphic ops
//! * [`relin`] — ct×ct multiplication, Galois rotations, slot sums
//! * [`threshold`] — n-out-of-n distributed keygen and decryption
//! * [`seedexp`] — stable seeded expansion for compressed symmetric uploads
//! * [`view`] — borrowed zero-copy views for streaming aggregation
//!
//! Ciphertexts are NTT-resident: fresh encryptions come out in the
//! evaluation domain, the additive pipeline (FedAvg) stays pointwise
//! there, and rows are inverse-transformed only at the decrypt/serialize
//! boundary. See `DESIGN.md` §11 for the domain state machine and the
//! transform-count accounting.

pub mod cipher;
pub mod encoder;
pub mod modarith;
pub mod ntt;
pub mod relin;
pub mod rns;
mod scratch;
pub(crate) mod seedexp;
pub mod threshold;
pub mod view;

pub use cipher::{
    CkksCiphertext, CkksContext, CkksEncryptArena, CkksEncryptNoise, CkksPublicKey, CkksSecretKey,
    CkksSymmetricNoise,
};
pub use encoder::{CkksEncoder, Complex};
pub use relin::{EvalKey, GaloisKey, RelinKey};
pub use view::CtView;
