//! Randomness utilities shared by the FHE schemes: discrete Gaussians,
//! ternary secrets, and uniform ring elements.
//!
//! Implemented in-crate (Box–Muller) to keep the dependency footprint to
//! `rand` alone.

use rand::Rng;

/// Samples a standard normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a discrete Gaussian over Z with standard deviation `sigma`,
/// truncated at ±6σ (standard practice in lattice implementations).
pub fn discrete_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> i64 {
    let bound = (6.0 * sigma).ceil();
    loop {
        let x = (standard_normal(rng) * sigma).round();
        if x.abs() <= bound {
            return x as i64;
        }
    }
}

/// Samples a vector of discrete Gaussian deviates.
pub fn gaussian_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, sigma: f64) -> Vec<i64> {
    let mut out = Vec::new();
    gaussian_fill(rng, n, sigma, &mut out);
    out
}

/// Fills (resizing) `out` with `n` discrete Gaussian deviates, reusing
/// its allocation. Draws the exact RNG stream of [`gaussian_vec`].
pub fn gaussian_fill<R: Rng + ?Sized>(rng: &mut R, n: usize, sigma: f64, out: &mut Vec<i64>) {
    out.resize(n, 0);
    for slot in out.iter_mut() {
        *slot = discrete_gaussian(rng, sigma);
    }
}

/// Samples a uniform ternary vector over {-1, 0, 1}.
pub fn ternary_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<i64> {
    (0..n).map(|_| i64::from(rng.gen_range(-1i8..=1))).collect()
}

/// Samples a uniform binary vector over {0, 1}.
pub fn binary_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u64> {
    (0..n).map(|_| u64::from(rng.gen::<bool>())).collect()
}

/// Samples a uniform residue vector modulo `q`.
pub fn uniform_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, q: u64) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn discrete_gaussian_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = 3.2;
        for _ in 0..10_000 {
            let x = discrete_gaussian(&mut rng, sigma);
            assert!(x.abs() as f64 <= (6.0 * sigma).ceil());
        }
    }

    #[test]
    fn discrete_gaussian_std_close_to_sigma() {
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = 3.2;
        let n = 50_000;
        let var: f64 =
            (0..n).map(|_| discrete_gaussian(&mut rng, sigma) as f64).map(|x| x * x).sum::<f64>()
                / n as f64;
        assert!((var.sqrt() - sigma).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn ternary_values_in_range_and_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = ternary_vec(&mut rng, 30_000);
        assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        let zeros = v.iter().filter(|&&x| x == 0).count() as f64 / v.len() as f64;
        assert!((zeros - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn uniform_values_below_modulus() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = 12_289;
        let v = uniform_vec(&mut rng, 10_000, q);
        assert!(v.iter().all(|&x| x < q));
        let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!((mean - q as f64 / 2.0).abs() < q as f64 * 0.02);
    }

    #[test]
    fn binary_vec_is_zero_one() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = binary_vec(&mut rng, 1000);
        assert!(v.iter().all(|&x| x <= 1));
        assert!(v.contains(&0) && v.contains(&1));
    }
}
