//! Error type shared by all homomorphic-encryption schemes in this crate.

use std::fmt;

/// Errors produced by FHE parameter validation and homomorphic operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FheError {
    /// A parameter set failed validation (ring degree, prime sizes, …).
    InvalidParams(String),
    /// Two ciphertexts have incompatible levels for the requested operation.
    LevelMismatch { lhs: usize, rhs: usize },
    /// Two ciphertexts have incompatible scales for the requested operation.
    ScaleMismatch { lhs: f64, rhs: f64 },
    /// No modulus level remains to drop (rescale at the bottom of the chain).
    LevelExhausted,
    /// The plaintext does not fit the available slots or message modulus.
    PlaintextTooLarge { len: usize, capacity: usize },
    /// A plaintext value exceeds the scheme's message modulus.
    MessageOutOfRange { value: i64, modulus: u64 },
    /// A ciphertext cannot be encoded in the requested wire format.
    Serialize(String),
    /// A serialized ciphertext could not be parsed.
    Deserialize(String),
    /// The noise budget is insufficient for the requested operation count.
    NoiseBudgetExceeded(String),
}

impl fmt::Display for FheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FheError::InvalidParams(msg) => write!(f, "invalid FHE parameters: {msg}"),
            FheError::LevelMismatch { lhs, rhs } => {
                write!(f, "ciphertext level mismatch: {lhs} vs {rhs}")
            }
            FheError::ScaleMismatch { lhs, rhs } => {
                write!(f, "ciphertext scale mismatch: {lhs} vs {rhs}")
            }
            FheError::LevelExhausted => write!(f, "no modulus level left to rescale"),
            FheError::PlaintextTooLarge { len, capacity } => {
                write!(f, "plaintext of {len} values exceeds capacity {capacity}")
            }
            FheError::MessageOutOfRange { value, modulus } => {
                write!(f, "message {value} outside plaintext modulus {modulus}")
            }
            FheError::Serialize(msg) => write!(f, "ciphertext serialization failed: {msg}"),
            FheError::Deserialize(msg) => write!(f, "ciphertext deserialization failed: {msg}"),
            FheError::NoiseBudgetExceeded(msg) => write!(f, "noise budget exceeded: {msg}"),
        }
    }
}

impl std::error::Error for FheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FheError::LevelMismatch { lhs: 2, rhs: 1 };
        assert!(e.to_string().contains("2 vs 1"));
        let e = FheError::ScaleMismatch { lhs: 1024.0, rhs: 2048.0 };
        assert!(e.to_string().contains("scale"));
        let e = FheError::InvalidParams("n must be a power of two".into());
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FheError>();
    }
}
